#!/usr/bin/env python3
"""Desiccant on a Lambda-style platform: the library unmap pays off (§5.4).

AWS Lambda does not share container images between function deployments,
so each instance privately maps its runtime libraries -- they land in USS.
Desiccant's §4.6 optimization finds those private, unmodified, file-backed
ranges via smaps and unmaps them; the next invocation refaults the pages
from disk (a cheap minor-fault cost, §5.6).

Run:  python examples/lambda_unmap.py
"""

from repro import ProfileStore, reclaim_instance
from repro.faas.instance import FunctionInstance
from repro.mem.layout import fmt_bytes
from repro.mem.smaps import smaps_report
from repro.workloads import get_definition


def main() -> None:
    spec = get_definition("fft").stages[0]
    # shared_files=None == Lambda: private library copies per instance.
    instance = FunctionInstance(spec, shared_files=None)
    instance.boot()

    print("Running fft 40 times on a Lambda-style (no-sharing) instance...")
    for _ in range(40):
        instance.invoke()
        instance.freeze()
        instance.thaw()
    instance.freeze()

    print(f"\nUSS while frozen: {fmt_bytes(instance.uss())}")
    print("library mappings (from smaps):")
    for entry in smaps_report(instance.runtime.space):
        if entry.path is not None:
            print(
                f"  {entry.path:<28} private_clean="
                f"{fmt_bytes(entry.report.private_clean)}"
            )

    without = reclaim_instance(
        instance, ProfileStore(), unmap_libraries=False
    )
    print(
        f"\nreclaim without the unmap optimization: "
        f"{fmt_bytes(without.uss_before)} -> {fmt_bytes(without.uss_after)}"
    )

    with_unmap = reclaim_instance(
        instance, ProfileStore(), unmap_libraries=True
    )
    print(
        f"adding the §4.6 library unmap:          "
        f"{fmt_bytes(with_unmap.uss_before)} -> {fmt_bytes(with_unmap.uss_after)}"
        f"  (libraries: {fmt_bytes(with_unmap.library_bytes)})"
    )

    instance.thaw()
    result = instance.invoke()
    print(
        f"\nnext invocation refaults the libraries: "
        f"{result.fault_seconds * 1000:.2f} ms of fault time"
    )
    instance.destroy()


if __name__ == "__main__":
    main()
