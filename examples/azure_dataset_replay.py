#!/usr/bin/env python3
"""Replay the real Azure Functions 2019 dataset (§5.3's source).

Usage:
    python examples/azure_dataset_replay.py INVOCATIONS_CSV DURATIONS_CSV \
        [scale_factor]

The CSVs are the public dataset's ``invocations_per_function_md.anon.dXX``
and ``function_durations_percentiles.anon.dXX`` files
(github.com/Azure/AzurePublicDataset — not redistributable here).  Without
arguments, the example fabricates a small dataset in the same schema so
the pipeline is runnable standalone.

The replay follows the paper's method: for each Table 1 function, pick the
trace function with the closest average duration and drive the Table 1
function with its arrival pattern, under vanilla and Desiccant.
"""

import csv
import random
import sys
import tempfile
from pathlib import Path

from repro.analysis.report import render_table
from repro.core import Desiccant, VanillaManager
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import GIB
from repro.trace.azure_loader import (
    MINUTES_PER_DAY,
    build_replay_arrivals,
    load_average_durations,
    load_invocation_counts,
    select_by_duration,
)


def fabricate_dataset(directory: Path) -> tuple[Path, Path]:
    """A small stand-in dataset with the real schema."""
    rng = random.Random(11)
    inv_path = directory / "invocations.csv"
    dur_path = directory / "durations.csv"
    minute_cols = [str(m) for m in range(1, MINUTES_PER_DAY + 1)]
    with inv_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["HashOwner", "HashApp", "HashFunction", "Trigger"] + minute_cols)
        for k in range(60):
            counts = [0] * MINUTES_PER_DAY
            for m in range(0, 30):  # half an hour of activity
                counts[m] = rng.randint(0, 2 + k % 3)
            writer.writerow(["own", "app", f"fn{k}", "http"] + counts)
    with dur_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["HashOwner", "HashApp", "HashFunction", "Average"])
        for k in range(60):
            writer.writerow(["own", "app", f"fn{k}", round(2 * (1000 ** (k / 59)), 2)])
    return inv_path, dur_path


def main() -> None:
    scale_factor = 15.0
    if len(sys.argv) >= 3:
        inv_path, dur_path = Path(sys.argv[1]), Path(sys.argv[2])
        if len(sys.argv) >= 4:
            scale_factor = float(sys.argv[3])
        print(f"Loading the Azure dataset from {inv_path} / {dur_path}...")
    else:
        tmp = Path(tempfile.mkdtemp(prefix="azure-demo-"))
        inv_path, dur_path = fabricate_dataset(tmp)
        print("No dataset given: fabricated a small stand-in with the same "
              f"schema under {tmp}")

    rows = load_invocation_counts(inv_path)
    durations = load_average_durations(dur_path)
    selection = select_by_duration(rows, durations)
    print(f"\n§5.3 selection: {len(selection)} trace functions matched by "
          "average duration, e.g.:")
    for name in list(selection)[:4]:
        row = selection[name]
        print(f"  {name:<16} <- {row.function} "
              f"(avg {durations[row.key]:.0f} ms, "
              f"{row.total_invocations} invocations/day)")

    arrivals = build_replay_arrivals(
        selection, horizon_seconds=120.0, scale_factor=scale_factor
    )
    print(f"\nReplaying {len(arrivals)} arrivals at scale factor "
          f"{scale_factor:g} (120 s window, 1 GiB cache)...\n")

    table = []
    for factory, label in ((VanillaManager, "vanilla"), (Desiccant, "desiccant")):
        platform = FaasPlatform(
            config=PlatformConfig(capacity_bytes=1 * GIB), manager=factory()
        )
        platform.submit([Request(arrival=t, definition=d) for t, d in arrivals])
        outcomes = platform.run()
        cold = sum(o.cold_boots for o in outcomes)
        latencies = sorted(o.latency for o in outcomes)
        p99 = latencies[max(0, int(len(latencies) * 0.99) - 1)]
        table.append(
            [
                label,
                len(outcomes),
                f"{cold / max(1, len(outcomes)):.3f}",
                platform.evictions,
                f"{p99:.2f}s",
            ]
        )
        for instance in platform.all_instances():
            instance.destroy()
    print(render_table(["manager", "completed", "cold/req", "evictions", "p99"], table))


if __name__ == "__main__":
    main()
