#!/usr/bin/env python3
"""Characterize frozen garbage across the whole Table 1 suite (§3.1).

Reproduces the Figure 1 measurement at example scale: every function runs
repeatedly in its own instance(s); at each exit point (where the platform
freezes) we compare real USS against the ideal (live objects + genuinely
used native memory) and report the average and maximum ratios.

Run:  python examples/characterize_suite.py [iterations]
"""

import sys
from statistics import mean

from repro import all_definitions, run_single
from repro.analysis.report import render_table
from repro.mem.layout import MIB


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    print(f"Characterizing {len(all_definitions())} functions, "
          f"{iterations} iterations each...\n")

    rows = []
    by_language = {"java": [], "javascript": []}
    for definition in all_definitions():
        run = run_single(definition, policy="vanilla", iterations=iterations)
        rows.append(
            [
                definition.display_name(),
                definition.language,
                f"{run.avg_ratio:.2f}x",
                f"{run.max_ratio:.2f}x",
                f"{run.final_uss / MIB:.1f}MiB",
                f"{run.final_ideal / MIB:.1f}MiB",
            ]
        )
        by_language[definition.language].append(run.max_ratio)
        run.destroy()

    print(
        render_table(
            ["function", "language", "avg ratio", "max ratio", "USS", "ideal"],
            rows,
        )
    )
    print()
    for language, ratios in by_language.items():
        frozen_share = 1 - 1 / mean(ratios)
        print(
            f"{language}: mean max ratio {mean(ratios):.2f}x "
            f"(~{frozen_share:.0%} of memory is frozen garbage on average)"
        )
    print("\nPaper reference: Java 2.72x (63.2%), JavaScript 2.15x (53.5%).")


if __name__ == "__main__":
    main()
