#!/usr/bin/env python3
"""Watch Desiccant work: a memory-pressure timeline plus the §2.1 probe.

Part 1 replays a bursty trace with Desiccant attached and records
telemetry: frozen memory climbing under load, the activation threshold
adapting, reclaims deflating the cache before evictions become necessary.
Rendered as ASCII sparklines; full series land in a CSV.

Part 2 runs the paper's §2.1 heartbeat experiment against three platform
configurations and classifies each from the outside, exactly like the
paper did with AWS Lambda / IBM / Alibaba.

Run:  python examples/pressure_timeline.py
"""

from repro.core import Desiccant
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.faas.probe import probe_idle_semantics
from repro.faas.telemetry import TelemetryRecorder, sparkline
from repro.mem.layout import MIB
from repro.trace.generator import TraceGenerator


def timeline() -> None:
    print("=== Part 1: memory-pressure timeline (Desiccant attached) ===\n")
    desiccant = Desiccant()
    platform = FaasPlatform(
        config=PlatformConfig(capacity_bytes=768 * MIB), manager=desiccant
    )
    recorder = TelemetryRecorder(platform, interval=1.0)
    arrivals = TraceGenerator(seed=42).arrivals(90.0, scale_factor=12.0)
    platform.submit([Request(arrival=t, definition=d) for t, d in arrivals])
    platform.run()

    frozen = [b / MIB for b in recorder.series("frozen_bytes")]
    threshold = recorder.series("activation_threshold")
    print(f"frozen memory (MiB, peak {max(frozen):.0f}):")
    print("  " + sparkline(frozen))
    print("activation threshold (0.6 floor, relaxing when quiet):")
    print("  " + sparkline(threshold))
    print(f"\nreclaims: {len(desiccant.reports)}, "
          f"released {desiccant.total_released_bytes / MIB:.0f} MiB total, "
          f"evictions: {platform.evictions}, "
          f"cold boots: {platform.cold_boots}")
    path = recorder.to_csv("benchmarks/results/pressure_timeline.csv")
    print(f"full series: {path}")
    for instance in platform.all_instances():
        instance.destroy()


def probes() -> None:
    print("\n=== Part 2: the §2.1 heartbeat probe ===\n")
    print("Splitting the function into foreground + heartbeat sender and")
    print("watching the heartbeats across a 30 s gap between requests:\n")
    for policy in ("freeze", "destroy", "keep-warm"):
        report = probe_idle_semantics(PlatformConfig(idle_policy=policy))
        windows = ", ".join(
            f"[{w.start:.2f}s..{'now' if w.end is None else f'{w.end:.2f}s'}]"
            for w in report.windows
        )
        print(f"  platform '{policy}': heartbeats {windows}")
        print(f"    -> classified as {report.classification!r}")
    print("\nThe paper observed the 'freeze' signature on AWS Lambda, IBM")
    print("Cloud Functions, and Alibaba Function Compute (§2.1).")


def main() -> None:
    timeline()
    probes()


if __name__ == "__main__":
    main()
