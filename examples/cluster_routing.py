#!/usr/bin/env python3
"""Route a trace across a 4-node cluster and watch policies compose.

Each invoker node runs its own instance cache (and, optionally, its own
Desiccant). Routing decides where a function's warm instances accumulate:
round-robin spreads them thin, warm-affinity concentrates them. Desiccant
shrinks them wherever they land — the two compose.

Run:  python examples/cluster_routing.py
"""

from repro.analysis.report import render_table
from repro.core import Desiccant, VanillaManager
from repro.faas.cluster import Cluster, ClusterConfig
from repro.faas.platform import PlatformConfig
from repro.mem.layout import MIB
from repro.trace.generator import TraceGenerator


def run(scheduler: str, with_desiccant: bool):
    cluster = Cluster(
        ClusterConfig(
            nodes=4,
            scheduler=scheduler,
            node_config=PlatformConfig(capacity_bytes=512 * MIB),
        ),
        manager_factory=Desiccant if with_desiccant else VanillaManager,
    )
    arrivals = TraceGenerator(seed=42).arrivals(45.0, scale_factor=12.0)
    cluster.submit(arrivals)
    stats = cluster.run()
    cluster.destroy()
    return stats


def main() -> None:
    print("4-node cluster, 512 MiB cache per node, SF 12 trace...\n")
    rows = []
    for scheduler in (
        "round-robin",
        "least-assigned",
        "warm-affinity",
        "least-loaded-live",
    ):
        for desiccant in (False, True):
            stats = run(scheduler, desiccant)
            rows.append(
                [
                    scheduler,
                    "desiccant" if desiccant else "vanilla",
                    f"{stats.cold_boot_rate:.3f}",
                    f"{stats.p99_latency:.2f}s",
                    f"{stats.imbalance:.2f}",
                    "/".join(str(n) for n in stats.per_node_requests),
                ]
            )
    print(
        render_table(
            ["scheduler", "manager", "cold/req", "p99", "imbalance",
             "requests per node"],
            rows,
        )
    )
    print(
        "\nWarm-affinity concentrates each function's warm instances on its"
        "\nhome node (fewer cold boots, worse balance); Desiccant then packs"
        "\nevery node's cache denser. least-loaded-live routes against live"
        "\ncluster state -- only possible because all nodes share one event"
        "\nkernel -- matching affinity's cold rate with better balance."
    )


if __name__ == "__main__":
    main()
