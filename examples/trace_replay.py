#!/usr/bin/env python3
"""Replay an Azure-style production trace under each memory policy (§5.3).

Generates a synthetic trace with the paper's arrival shapes (heavy-tailed
popularity; periodic, Poisson, and bursty triggers), warms the platform up,
then measures cold-boot rate, throughput, CPU utilization, and tail latency
for vanilla, eager GC, and Desiccant under a fixed instance-cache budget.

Run:  python examples/trace_replay.py [scale_factor]
"""

import sys

from repro import Desiccant, EagerGcManager, PlatformConfig, VanillaManager
from repro.analysis.report import render_table
from repro.mem.layout import GIB
from repro.trace import ReplayConfig, TraceGenerator, replay


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    config = ReplayConfig(
        scale_factor=scale_factor,
        warmup_seconds=30.0,
        duration_seconds=60.0,
        platform=PlatformConfig(capacity_bytes=1 * GIB),
    )
    generator = TraceGenerator(seed=42)
    print(
        f"Replaying a synthetic Azure trace at scale factor {scale_factor:g} "
        f"({config.duration_seconds:.0f}s window, 1 GiB instance cache)...\n"
    )

    rows = []
    for factory in (VanillaManager, EagerGcManager, Desiccant):
        stats = replay(factory, config, generator).stats
        rows.append(
            [
                stats.policy,
                f"{stats.cold_boot_rate:.3f}",
                f"{stats.throughput_rps:.1f}",
                f"{stats.cpu_utilization:.0%}",
                f"{stats.p90_latency:.2f}s",
                f"{stats.p99_latency:.2f}s",
                stats.evictions,
                f"{stats.reclaim_cpu_fraction:.1%}",
            ]
        )
    print(
        render_table(
            [
                "policy",
                "cold/req",
                "rps",
                "cpu",
                "p90",
                "p99",
                "evictions",
                "reclaim cpu",
            ],
            rows,
        )
    )
    print(
        "\nDesiccant packs reclaimed instances more densely into the cache, "
        "so fewer requests pay a cold boot and tail latency drops (Fig. 9/10)."
    )


if __name__ == "__main__":
    main()
