#!/usr/bin/env python3
"""Apply Desiccant to a CPython-style runtime (the §7 generalization).

CPython's obmalloc only returns a 256 KiB arena to the OS when it is
completely empty, so a frozen Python instance strands free pages inside
partially-occupied arenas.  The paper's §7 recipe -- estimate throughput
from GC time and live bytes, find free regions with the allocator's own
structures, release them with mmap -- is exactly what the
:class:`CPythonRuntime` adapter implements.

Run:  python examples/cpython_runtime.py
"""

from repro import CPythonRuntime, estimated_throughput
from repro.mem.layout import KIB, MIB, fmt_bytes


def main() -> None:
    rt = CPythonRuntime("python-instance")
    rt.boot()

    # A request handler: keeps a little cached state, churns temporaries.
    print("Running 50 invocations of a Python-style handler...")
    cache = None
    for i in range(50):
        rt.begin_invocation()
        if cache is None:
            cache = [rt.alloc(16 * KIB, scope="persistent") for _ in range(8)]
        for _ in range(120):
            rt.alloc(12 * KIB, scope="ephemeral")
        rt.alloc(64 * KIB)  # frame-scoped working set
        rt.end_invocation()

    stats = rt.heap_stats()
    print(f"arenas committed: {fmt_bytes(stats.committed)}, "
          f"used: {fmt_bytes(stats.used)}, live: {fmt_bytes(rt.live_bytes())}")
    print(f"instance USS before reclaim: {fmt_bytes(rt.uss())}")

    # §7: compute the estimated reclamation throughput, then reclaim.
    heap_resident = rt.heap_resident_bytes()
    gc_seconds = rt.collect()
    throughput = estimated_throughput(heap_resident, rt.live_bytes(), gc_seconds)
    print(f"\nestimated reclamation throughput: "
          f"{throughput / MIB:.0f} MiB per CPU-second")

    outcome = rt.reclaim()
    print(f"reclaimed {fmt_bytes(outcome.released_bytes)} of arena pages "
          f"in {outcome.cpu_seconds * 1000:.2f} ms")
    print(f"instance USS after reclaim: {fmt_bytes(outcome.uss_after)}")

    # The cached state is untouched -- thaw-and-run still works.
    rt.begin_invocation()
    rt.alloc(12 * KIB)
    rt.end_invocation()
    print(f"\ncached state still live after reclaim: "
          f"{fmt_bytes(rt.live_bytes())} reachable")
    rt.destroy()


if __name__ == "__main__":
    main()
