#!/usr/bin/env python3
"""Quickstart: see frozen garbage appear and Desiccant reclaim it.

Boots one Java (HotSpot) FaaS instance, runs the ``file-hash`` function a
few dozen times the way OpenWhisk would (invoke, freeze, thaw, repeat),
then shows what each §5.2 policy leaves behind:

* vanilla      -- the freeze semantics strand dead objects and free pages;
* eager GC     -- ``System.gc()`` at every exit shrinks the heap but cannot
                  release free pages inside it (§3.2.1);
* Desiccant    -- GC + resize + release returns the memory to the OS.

Run:  python examples/quickstart.py
"""

from repro import ProfileStore, reclaim_instance, run_single
from repro.mem.layout import fmt_bytes


def main() -> None:
    print("Running file-hash 60 times per policy (256 MiB instance)...\n")

    vanilla = run_single("file-hash", policy="vanilla", iterations=60)
    eager = run_single("file-hash", policy="eager", iterations=60)
    desiccant = run_single("file-hash", policy="desiccant", iterations=60)

    ideal = vanilla.final_ideal
    print(f"{'policy':<12}{'USS after 60 runs':>20}{'vs ideal':>12}")
    print("-" * 44)
    for run in (vanilla, eager, desiccant):
        print(
            f"{run.policy:<12}{fmt_bytes(run.final_uss):>20}"
            f"{run.final_uss / ideal:>11.2f}x"
        )
    print(f"{'(ideal)':<12}{fmt_bytes(ideal):>20}{1.0:>11.2f}x")

    report = desiccant.reclaim_reports[0]
    print(
        f"\nDesiccant's reclamation released {fmt_bytes(report.released_bytes)} "
        f"in {report.cpu_seconds * 1000:.2f} ms of CPU"
    )
    print(
        f"profile recorded: live={fmt_bytes(report.live_bytes)}, "
        f"throughput={report.released_bytes / report.cpu_seconds / 2**20:.0f} MiB/s"
    )

    # The reclaim interface is just a method on a frozen instance -- use it
    # directly on the vanilla run's (still frozen) instance:
    instance = vanilla.instances[0]
    before = instance.uss()
    reclaim_instance(instance, ProfileStore())
    print(
        f"\nReclaiming the vanilla instance directly: "
        f"{fmt_bytes(before)} -> {fmt_bytes(instance.uss())}"
    )

    for run in (vanilla, eager, desiccant):
        run.destroy()


if __name__ == "__main__":
    main()
