"""Parallel benchmark fan-out: independent runs across worker processes.

The evaluation grid is embarrassingly parallel -- every (figure cell,
policy, scale) characterization or replay run builds its own
:class:`~repro.mem.physical.PhysicalMemory`, address spaces, and
deterministic ``RngStream``s (seeded by name, PR 1's kernel), so runs share
no state and their *metrics* are identical whether executed serially or
fanned out.  Only the wall/CPU timings attached to each run vary with the
machine.

Entry points:

* :func:`execute_spec` -- run one :class:`BenchSpec`, returning its metrics
  plus wall/CPU timings (top-level so it pickles into worker processes),
* :func:`run_benchmarks` -- fan a list of specs across a
  ``ProcessPoolExecutor`` (``jobs=1`` degrades to a serial loop),
* :func:`run_vmm_microbench` / :func:`compare_micro` -- the bulk
  touch/discard microbenchmark against the per-page reference oracle, and
  the regression check CI applies against the committed ``BENCH_vmm.json``,
* :func:`build_replay_macro` / :func:`compare_replay` /
  :func:`verify_trace_identity` -- the Azure-scale replay macro suite: each
  size runs the same trace with the fast path on and off, the event-trace
  digests of the two legs must be byte-identical, and CI gates the fast
  leg's wall time against the committed ``BENCH_replay.json``.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import os
import pstats
import re
import shutil
import tempfile
import time
import tracemalloc
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import fastpath, procenv
from repro.mem.layout import MIB, PAGE_SIZE
from repro.memo import toggle as memo_toggle

#: Policies a replay spec accepts (characterize accepts POLICIES as well).
REPLAY_POLICIES = ("vanilla", "eager", "desiccant")

#: The macro replay sizes (§5.3 at increasing Azure-trace scale).  Each
#: size fixes (scale factor, measured duration, warmup, node capacity);
#: the suite runs every size twice -- fast path on and off -- and the two
#: legs must produce byte-identical event traces.
REPLAY_SIZES: Dict[str, Dict[str, float]] = {
    "small": {"scale": 8.0, "duration": 30.0, "warmup": 15.0, "capacity_mib": 768},
    "medium": {"scale": 15.0, "duration": 60.0, "warmup": 30.0, "capacity_mib": 1024},
    "large": {"scale": 40.0, "duration": 120.0, "warmup": 45.0, "capacity_mib": 2048},
}


@dataclass(frozen=True)
class BenchSpec:
    """One independent benchmark cell.

    ``kind`` selects the protocol: ``"characterize"`` runs the §3.1/§5.2
    single-instance loop for function ``name``; ``"replay"`` runs the §5.3
    Azure-style trace (``name`` is unused); ``"micro"`` runs the VMM
    touch/discard microbenchmark.  Frozen so it hashes and pickles cleanly.
    """

    kind: str
    name: str = ""
    policy: str = "vanilla"
    iterations: int = 30
    budget_mib: int = 256
    scale: float = 5.0
    duration: float = 20.0
    warmup: float = 10.0
    capacity_mib: int = 1024
    seed: int = 42
    size_mib: int = 200
    repeats: int = 3
    #: Run with the O(1) fast paths (indexed dispatch, cohort heap,
    #: incremental aggregates) enabled.  ``False`` is the reference leg:
    #: same simulation, linear/scalar code paths.
    fastpath: bool = True
    #: Stream the replay's event trace to a scratch file and report its
    #: SHA-256 -- the equivalence witness between the two legs.
    trace: bool = False
    #: Replay on a cluster of this many nodes (0 = single platform).
    nodes: int = 0
    #: Worker processes for a cluster replay (1 = the in-process serial
    #: twin; the digest gate pins every shard count to it).
    shards: int = 1
    #: Cluster front-end scheduler (cluster replays only).
    scheduler: str = "warm-affinity"
    #: Simulated seconds per conservative epoch (cluster replays only).
    epoch: float = 5.0
    #: Shard wire protocol (cluster replays only): ``"batched"`` is the
    #: default window protocol, ``"unbatched"`` the PR 5 comparison leg
    #: that :func:`verify_coordination` gates against.
    protocol: str = "batched"
    #: Also roll the traced replay into a segmented archive and report
    #: archive metrics (compressed bytes, compression ratio, pack
    #: throughput, windowed-read latency).  Requires ``trace``.
    archive: bool = False
    #: Checkpoint-fork sweep leg (cluster replays only): run the replay
    #: from scratch capturing a ``measure-start`` checkpoint, then run a
    #: forked twin that resumes from it -- skipping the warmup prefix --
    #: and gate the forked leg's merged-trace digest against the
    #: from-scratch run's (docs/CHECKPOINTS.md).
    fork: bool = False
    #: Run with the invocation effect cache (``REPRO_MEMO``) enabled and
    #: report its hit/miss/eviction/bytes counters.  The digest gate pins
    #: a memo leg's trace to its plain twin (same label without
    #: ``:memo``) -- memoization changes speed, never bytes
    #: (docs/MEMOIZATION.md).
    memo: bool = False
    #: Trace-line encoder for the leg: ``"fast"`` (the compiled
    #: per-kind encoders, the default everywhere) or ``"generic"`` --
    #: the reference twin (label suffix ``:enc``) that re-runs the same
    #: workload through the original ``json.dumps`` path with
    #: line-at-a-time I/O.  The digest gate pins the pair byte-identical
    #: (docs/EVENT_TRACE.md).
    encoder: str = "fast"
    #: Digest-only twin (label suffix ``:digest-only``): the sink
    #: computes the stream SHA-256 without storing or writing lines --
    #: pure emission + simulation speed, digest gate still armed against
    #: the plain leg.  Single-platform traced replays only.
    digest_only: bool = False

    @property
    def label(self) -> str:
        if self.kind == "characterize":
            return f"characterize:{self.name}:{self.policy}:i{self.iterations}"
        if self.kind == "replay":
            label = f"replay:{self.policy}:x{self.scale:g}:d{self.duration:g}"
            if self.nodes:
                label += f":n{self.nodes}"
            if self.shards > 1:
                label += f":s{self.shards}"
            if self.nodes and self.protocol == "unbatched":
                label += ":unbatched"
            if self.fork:
                label += ":fork"
            if self.memo:
                label += ":memo"
            if self.encoder == "generic":
                label += ":enc"
            if self.digest_only:
                label += ":digest-only"
            return label if self.fastpath else label + ":base"
        return f"micro:vmm:{self.size_mib}mib"


def _run_characterize(spec: BenchSpec) -> Dict[str, object]:
    from repro.analysis.characterize import run_single

    run = run_single(
        spec.name,
        policy=spec.policy,
        iterations=spec.iterations,
        memory_budget=spec.budget_mib * MIB,
    )
    try:
        return {
            "final_uss": run.final_uss,
            "final_ideal": run.final_ideal,
            "avg_ratio": round(run.avg_ratio, 9),
            "max_ratio": round(run.max_ratio, 9),
            "latency_sum": round(sum(run.latency_series), 9),
        }
    finally:
        run.destroy()


def _archive_metrics(archive_dir: str, flat_path: str) -> Dict[str, object]:
    """Archive-side metrics for one traced replay leg.

    Reads the finished archive's manifest for size/ratio, times a fresh
    :func:`~repro.trace.archive.pack` of the flat twin for pack
    throughput, and times a 1% time-slice windowed read (the archive's
    headline access pattern) including full footer verification.
    """
    from repro.trace.archive import ArchiveReader, pack
    from repro.trace.replay import TraceWindow

    manifest = ArchiveReader(archive_dir).manifest
    compressed = manifest["compressed_bytes"]
    payload = manifest["payload_bytes"]
    metrics: Dict[str, object] = {
        "archive_segments": manifest["segments"],
        "archive_compressed_bytes": compressed,
        "archive_payload_bytes": payload,
        "archive_compression_ratio": (
            round(payload / compressed, 4) if compressed else None
        ),
        "archive_sha256": manifest["sha256"],
    }
    with tempfile.TemporaryDirectory(prefix="repro-pack-") as scratch:
        t0 = time.perf_counter()
        events, _ = pack(
            flat_path,
            Path(scratch) / "arc",
            bucket_seconds=manifest["bucket_seconds"],
        )
        elapsed = time.perf_counter() - t0
    metrics["archive_pack_events_per_sec"] = (
        round(events / elapsed) if elapsed > 0 else None
    )
    t_min, t_max = manifest["t_min"], manifest["t_max"]
    if t_min is not None and t_max is not None and t_max > t_min:
        span = t_max - t_min
        window = TraceWindow(
            t_start=t_min + 0.495 * span, t_end=t_min + 0.505 * span
        )
        t0 = time.perf_counter()
        result = window.read(archive_dir)
        metrics["archive_window_read_ms"] = round(
            (time.perf_counter() - t0) * 1e3, 3
        )
        metrics["archive_window_events"] = result.events
        metrics["archive_window_segments_read"] = len(result.segments_read)
    return metrics


def _memo_metrics(stats: Optional[Dict[str, int]]) -> Dict[str, object]:
    """Flatten a replay's effect-cache counters into leg metrics.

    ``stats`` is the measurement-window counter dict a memoized
    :func:`~repro.trace.replay.replay` / ``cluster_replay`` attaches to
    its result (summed over shards for cluster legs).  The hit rate is
    derived here so the committed baseline carries it directly.
    """
    if stats is None:
        return {}
    lookups = stats["hits"] + stats["misses"]
    return {
        "memo_hits": stats["hits"],
        "memo_misses": stats["misses"],
        "memo_evictions": stats["evictions"],
        "memo_entries": stats["entries"],
        "memo_cached_bytes": stats["cached_bytes"],
        "memo_hit_rate": round(stats["hits"] / lookups, 4) if lookups else 0.0,
    }


def _run_replay(spec: BenchSpec) -> Dict[str, object]:
    from repro.core import Desiccant, EagerGcManager, VanillaManager
    from repro.faas.platform import PlatformConfig
    from repro.trace.generator import TraceGenerator
    from repro.trace.replay import (
        ClusterReplayConfig,
        ReplayConfig,
        cluster_replay,
        replay,
    )

    factories = {
        "vanilla": VanillaManager,
        "eager": EagerGcManager,
        "desiccant": Desiccant,
    }
    if spec.archive and not spec.trace:
        raise ValueError("archive metrics require trace=True")
    if spec.fork and not (spec.nodes and spec.trace):
        raise ValueError("fork legs require a traced cluster replay")
    if spec.digest_only and (spec.trace or spec.archive or spec.nodes):
        raise ValueError(
            "digest-only legs compute the stream digest on a bare "
            "single-platform replay; drop trace/archive/nodes"
        )
    if spec.digest_only:
        config = ReplayConfig(
            scale_factor=spec.scale,
            warmup_seconds=spec.warmup,
            warmup_scale_factor=spec.scale,
            duration_seconds=spec.duration,
            platform=PlatformConfig(capacity_bytes=spec.capacity_mib * MIB),
            digest_only=True,
        )
        result = replay(factories[spec.policy], config, TraceGenerator(seed=spec.seed))
        stats = result.stats
        metrics = {
            "cold_boot_rate": round(stats.cold_boot_rate, 9),
            "throughput_rps": round(stats.throughput_rps, 9),
            "cpu_utilization": round(stats.cpu_utilization, 9),
            "p99_latency": round(stats.p99_latency, 9),
            "evictions": stats.evictions,
            "trace_events": result.trace_events,
            "trace_sha256": result.trace_sha256,
        }
        metrics.update(_memo_metrics(result.memo_stats))
        return metrics
    if spec.nodes:
        with tempfile.TemporaryDirectory(prefix="repro-bench-arc-") as scratch:
            archive_dir = str(Path(scratch) / "archive") if spec.archive else None
            flat_path = str(Path(scratch) / "flat.jsonl") if spec.archive else None
            checkpoint_dir = str(Path(scratch) / "ckpt") if spec.fork else None
            config = ClusterReplayConfig(
                nodes=spec.nodes,
                scheduler=spec.scheduler,
                shards=spec.shards,
                epoch_seconds=spec.epoch,
                protocol=spec.protocol,
                scale_factor=spec.scale,
                warmup_seconds=spec.warmup,
                warmup_scale_factor=spec.scale,
                duration_seconds=spec.duration,
                platform=PlatformConfig(capacity_bytes=spec.capacity_mib * MIB),
                trace=spec.trace,
                event_trace_path=flat_path,
                archive_dir=archive_dir,
                checkpoint_dir=checkpoint_dir,
            )
            scratch_t0 = time.perf_counter()
            result = cluster_replay(
                factories[spec.policy], config, TraceGenerator(seed=spec.seed)
            )
            scratch_wall = time.perf_counter() - scratch_t0
            fork_result = None
            fork_wall = None
            if spec.fork:
                # The forked twin resumes at the warmup/measurement
                # boundary: its wall time covers only the measured
                # suffix, and its merged trace must still equal the
                # from-scratch run's byte for byte.
                from dataclasses import replace as dc_replace

                forked = dc_replace(
                    config,
                    resume_from=str(Path(checkpoint_dir) / "measure-start.ckpt"),
                )
                fork_t0 = time.perf_counter()
                fork_result = cluster_replay(
                    factories[spec.policy], forked, TraceGenerator(seed=spec.seed)
                )
                fork_wall = time.perf_counter() - fork_t0
            stats = result.stats
            metrics = {
                "cold_boot_rate": round(stats.cold_boot_rate, 9),
                "throughput_rps": round(stats.throughput_rps, 9),
                "cpu_utilization": round(stats.cpu_utilization, 9),
                "p99_latency": round(stats.p99_latency, 9),
                "evictions": stats.evictions,
                "epochs": result.epochs,
                # Coordination-cost accounting (docs/BENCHMARKS.md):
                # barrier exchanges, exact framed pipe bytes, and the
                # coordinator wall not covered by worker kernel time.
                "round_trips": result.round_trips,
                "pipe_bytes": result.pipe_bytes,
                "pipe_bytes_per_epoch": (
                    round(result.pipe_bytes / result.epochs, 1)
                    if result.epochs
                    else 0.0
                ),
                "coordination_overhead": round(
                    result.coordination_overhead, 4
                ),
                "worker_busy_seconds": round(result.worker_busy_seconds, 4),
                "coordinator_wall_seconds": round(
                    result.coordinator_wall_seconds, 4
                ),
                "cpu_count": os.cpu_count(),
            }
            if spec.trace:
                metrics["trace_events"] = result.trace_events
                metrics["trace_sha256"] = result.trace_sha256
            metrics.update(_memo_metrics(result.memo_stats))
            if fork_result is not None:
                metrics["scratch_wall_seconds"] = round(scratch_wall, 4)
                metrics["fork_wall_seconds"] = round(fork_wall, 4)
                metrics["fork_warmup_skip_speedup"] = (
                    round(scratch_wall / fork_wall, 2) if fork_wall else None
                )
                metrics["fork_measure_start"] = round(
                    fork_result.measure_start, 6
                )
                metrics["fork_trace_events"] = fork_result.trace_events
                metrics["fork_trace_sha256"] = fork_result.trace_sha256
            if spec.archive:
                metrics.update(_archive_metrics(archive_dir, flat_path))
            return metrics
    trace_path = None
    archive_root = None
    if spec.trace:
        fd, trace_path = tempfile.mkstemp(prefix="repro-trace-", suffix=".jsonl")
        os.close(fd)
    try:
        archive_dir = None
        if spec.archive:
            archive_root = tempfile.mkdtemp(prefix="repro-bench-arc-")
            archive_dir = str(Path(archive_root) / "archive")
        config = ReplayConfig(
            scale_factor=spec.scale,
            warmup_seconds=spec.warmup,
            warmup_scale_factor=spec.scale,
            duration_seconds=spec.duration,
            platform=PlatformConfig(capacity_bytes=spec.capacity_mib * MIB),
            event_trace_path=trace_path,
            archive_dir=archive_dir,
        )
        result = replay(factories[spec.policy], config, TraceGenerator(seed=spec.seed))
        stats = result.stats
        metrics = {
            "cold_boot_rate": round(stats.cold_boot_rate, 9),
            "throughput_rps": round(stats.throughput_rps, 9),
            "cpu_utilization": round(stats.cpu_utilization, 9),
            "p99_latency": round(stats.p99_latency, 9),
            "evictions": stats.evictions,
        }
        if trace_path is not None:
            metrics["trace_events"] = len(result.trace)
            metrics["trace_sha256"] = hashlib.sha256(
                Path(trace_path).read_bytes()
            ).hexdigest()
        metrics.update(_memo_metrics(result.memo_stats))
        if spec.archive:
            metrics.update(_archive_metrics(archive_dir, trace_path))
        return metrics
    finally:
        if trace_path is not None:
            os.unlink(trace_path)
        if archive_root is not None:
            shutil.rmtree(archive_root, ignore_errors=True)


def run_vmm_microbench(size_mib: int = 200, repeats: int = 3) -> Dict[str, float]:
    """Time bulk touch + discard of ``size_mib`` MiB on the run-length VMM
    and on the retained per-page reference; report best-of-``repeats`` in
    milliseconds plus the resulting speedups.
    """
    from repro.mem.physical import PhysicalMemory
    from repro.mem.reference import ReferenceAddressSpace
    from repro.mem.vmm import VirtualAddressSpace

    size = size_mib * MIB
    pages = size // PAGE_SIZE

    def best_of(factory) -> Dict[str, float]:
        touch_s = discard_s = float("inf")
        for _ in range(repeats):
            space = factory()
            mapping = space.mmap(size)
            t0 = time.perf_counter()
            counts = space.touch(mapping.start, size)
            t1 = time.perf_counter()
            released = space.discard(mapping.start, size)
            t2 = time.perf_counter()
            assert counts.minor == pages and released == pages
            space.close()
            touch_s = min(touch_s, t1 - t0)
            discard_s = min(discard_s, t2 - t1)
        return {"touch_ms": touch_s * 1e3, "discard_ms": discard_s * 1e3}

    fast = best_of(lambda: VirtualAddressSpace("bench", PhysicalMemory()))
    ref = best_of(lambda: ReferenceAddressSpace("bench-ref", PhysicalMemory()))
    return {
        "size_mib": size_mib,
        "pages": pages,
        "touch_ms": round(fast["touch_ms"], 4),
        "discard_ms": round(fast["discard_ms"], 4),
        "ref_touch_ms": round(ref["touch_ms"], 4),
        "ref_discard_ms": round(ref["discard_ms"], 4),
        "speedup_touch": round(ref["touch_ms"] / fast["touch_ms"], 2),
        "speedup_discard": round(ref["discard_ms"] / fast["discard_ms"], 2),
    }


def execute_spec(
    spec: BenchSpec, profile_dir: Optional[str] = None
) -> Dict[str, object]:
    """Run one spec; returns its metrics plus wall/CPU timings.

    The spec's ``fastpath``, ``memo``, and ``encoder`` flags are forced
    for the duration of the run (overriding
    ``REPRO_FASTPATH``/``REPRO_MEMO``/``REPRO_TRACE_ENCODER``), so a spec
    names one leg unambiguously.  Traced replay legs additionally report
    ``trace_events_per_second`` -- emitted trace events over the leg's
    wall time, the emission-throughput headline the encoder twins pair
    on.  Every leg also samples its own Python
    allocation high-water mark (``peak_tracemalloc_bytes``): tracemalloc
    runs for *all* legs, memoized or not, so the uniform tracing overhead
    cancels out of every wall-time ratio the suite reports.  With
    ``profile_dir`` the run executes under ``cProfile`` and dumps
    ``<label>.prof`` plus a cumulative-time top-30 listing next to it.
    Top-level (not a closure) so ``ProcessPoolExecutor`` can pickle it.
    """
    # Lazy: repro.trace imports replay -> repro.sim; bench keeps heavy
    # simulation imports out of module import time (matching _run_replay).
    from repro.trace import encode as trace_encode

    profiler = None
    if profile_dir is not None:
        Path(profile_dir).mkdir(parents=True, exist_ok=True)
        profiler = cProfile.Profile()
    tracemalloc.start()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    with fastpath.override(spec.fastpath), (
        memo_toggle.override(True) if spec.memo else nullcontext()
    ), trace_encode.override(spec.encoder):
        if profiler is not None:
            profiler.enable()
        try:
            if spec.kind == "characterize":
                metrics = _run_characterize(spec)
            elif spec.kind == "replay":
                metrics = _run_replay(spec)
            elif spec.kind == "micro":
                metrics = run_vmm_microbench(spec.size_mib, spec.repeats)
            else:
                raise ValueError(f"unknown bench kind {spec.kind!r}")
        finally:
            if profiler is not None:
                profiler.disable()
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    if spec.kind == "replay" and wall > 0 and metrics.get("trace_events"):
        metrics["trace_events_per_second"] = round(
            metrics["trace_events"] / wall
        )
    result = {
        "label": spec.label,
        "spec": asdict(spec),
        "metrics": metrics,
        "wall_seconds": round(wall, 4),
        "cpu_seconds": round(cpu, 4),
        # Coordinator-process peak only: cluster shard workers allocate in
        # their own processes, which this counter does not see.
        "peak_tracemalloc_bytes": peak_bytes,
    }
    if profiler is not None:
        stem = Path(profile_dir) / spec.label.replace(":", "_")
        profiler.dump_stats(f"{stem}.prof")
        with open(f"{stem}.txt", "w") as sink:
            stats = pstats.Stats(profiler, stream=sink)
            stats.sort_stats("cumulative").print_stats(30)
        result["profile"] = f"{stem}.prof"
    return result


def write_profile_diffs(
    profile_dir: str, results: Sequence[Dict[str, object]], top: int = 30
) -> List[str]:
    """Pair each memo leg's profile with its plain twin's and diff them.

    For every profiled ``:memo`` replay leg whose plain twin was also
    profiled in this run, writes ``<memo label>.diff.txt`` next to the
    ``.prof`` dumps: the ``top`` functions ranked by absolute
    cumulative-time delta (negative = the memoized leg spent less time
    there -- the warm path the cache removed; positive = cost the memo
    layer added, e.g. effect capture and fingerprinting).  Returns the
    paths written.  Legs without a profiled twin are simply skipped.
    """
    profiled = {
        r["label"]: r["profile"] for r in results if "profile" in r
    }
    written: List[str] = []
    for label, prof in sorted(profiled.items()):
        if not _MEMO_SUFFIX.search(label):
            continue
        twin = profiled.get(_MEMO_SUFFIX.sub("", label))
        if twin is None:
            continue
        memo_stats = pstats.Stats(str(prof)).stats
        plain_stats = pstats.Stats(str(twin)).stats
        rows = []
        for func in set(memo_stats) | set(plain_stats):
            memo_cum = memo_stats.get(func, (0, 0, 0.0, 0.0, {}))[3]
            plain_cum = plain_stats.get(func, (0, 0, 0.0, 0.0, {}))[3]
            delta = memo_cum - plain_cum
            if memo_cum or plain_cum:
                rows.append((delta, memo_cum, plain_cum, func))
        rows.sort(key=lambda row: (-abs(row[0]), row[3]))
        path = Path(profile_dir) / (label.replace(":", "_") + ".diff.txt")
        with open(path, "w") as sink:
            sink.write(
                f"profile-diff: {label} vs {_MEMO_SUFFIX.sub('', label)}\n"
                f"top {top} functions by |cumulative-time delta| "
                "(negative = memoized leg cheaper)\n\n"
            )
            sink.write(
                f"{'delta_s':>10} {'memo_cum_s':>11} {'plain_cum_s':>12}  "
                "function\n"
            )
            for delta, memo_cum, plain_cum, func in rows[:top]:
                file, line, name = func
                sink.write(
                    f"{delta:>+10.4f} {memo_cum:>11.4f} {plain_cum:>12.4f}  "
                    f"{name} ({file}:{line})\n"
                )
        written.append(str(path))
    return written


def run_benchmarks(
    specs: Sequence[BenchSpec],
    jobs: int = 1,
    profile_dir: Optional[str] = None,
    mp_context=None,
) -> List[Dict[str, object]]:
    """Execute every spec, fanning across ``jobs`` worker processes.

    Results come back in spec order regardless of completion order, and the
    per-run *metrics* are bit-identical to a serial run -- each spec builds
    its own physical memory and seeds its own RNG streams.  Profiling
    (``profile_dir``) composes with fan-out: each worker profiles only its
    own spec's process.

    The parent's effective run flags (``REPRO_FASTPATH``, ``REPRO_CHECK``
    and friends) are re-applied in every worker by an explicit pool
    initializer, so results do not depend on the multiprocessing start
    method -- under ``spawn`` (the macOS/Windows default, injectable here
    via ``mp_context`` for tests) workers would otherwise re-read a stale
    environment instead of the configuration the parent is running with.
    """
    run_one = partial(execute_spec, profile_dir=profile_dir)
    if jobs <= 1 or len(specs) <= 1:
        return [run_one(spec) for spec in specs]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(specs)),
        mp_context=mp_context,
        initializer=procenv.initializer,
        initargs=(procenv.snapshot(),),
    ) as pool:
        return list(pool.map(run_one, specs))


def build_grid(
    functions: Sequence[str],
    policies: Sequence[str],
    scales: Sequence[float],
    iterations: int = 30,
    budget_mib: int = 256,
    duration: float = 20.0,
    warmup: float = 10.0,
    seed: int = 42,
) -> List[BenchSpec]:
    """The default (figure-cell, policy, scale) fan-out grid."""
    specs = [
        BenchSpec(
            kind="characterize",
            name=fn,
            policy=policy,
            iterations=iterations,
            budget_mib=budget_mib,
        )
        for fn in functions
        for policy in policies
    ]
    specs.extend(
        BenchSpec(
            kind="replay",
            policy=policy,
            scale=scale,
            duration=duration,
            warmup=warmup,
            seed=seed,
        )
        for scale in scales
        for policy in policies
    )
    return specs


def build_replay_macro(
    sizes: Sequence[str] = ("small", "medium", "large"),
    policies: Sequence[str] = ("vanilla", "desiccant"),
    seed: int = 42,
    include_base: bool = True,
    nodes: int = 0,
    shard_counts: Sequence[int] = (),
    scheduler: str = "warm-affinity",
    include_unbatched: bool = False,
    include_forked: bool = False,
    include_memo: bool = False,
    memo_policies: Sequence[str] = ("vanilla",),
    memo_sizes: Optional[Sequence[str]] = None,
    include_encoder_twin: bool = False,
    include_digest_only: bool = False,
) -> List[BenchSpec]:
    """The macro replay suite: every (size, policy) as a fast/base leg pair.

    Both legs trace: :func:`verify_trace_identity` requires the pair's
    event-stream digests to match, which pins the fast path's semantics to
    the reference implementation at full Azure-replay scale.  CI smoke runs
    pass ``include_base=False`` to time only the fast leg.

    With ``nodes`` set, every (size, policy) additionally gets cluster
    legs: one serial-twin run (``shards=1``) plus one per entry in
    ``shard_counts``.  All of them trace, and the digest gate pins each
    sharded leg's merged trace to the serial twin's byte for byte --
    the cross-process equivalence witness.  ``include_unbatched`` adds a
    PR 5-protocol twin per sharded leg (label suffix ``:unbatched``):
    same workload, one pipe message per epoch -- the comparison leg
    :func:`verify_coordination` gates round-trips and pipe bytes against.
    ``include_forked`` adds a checkpoint-fork sweep leg per cluster cell
    (label suffix ``:fork``): the from-scratch run captures a
    ``measure-start`` checkpoint, a forked twin resumes from it skipping
    the warmup prefix, and :func:`verify_trace_identity` pins the two
    merged-trace digests to each other.

    ``include_memo`` adds an effect-cache twin (label suffix ``:memo``)
    per ``memo_policies`` cell: same workload with ``REPRO_MEMO`` on,
    digest-gated byte-identical against the plain fast leg, reporting
    hit/miss/bytes counters and the warm-path speedup.  Memo twins trace
    but skip archive metrics (like the ``:unbatched`` comparison legs,
    they time the bare simulation), and default to the vanilla policy:
    desiccant's per-invocation threshold adaptation perturbs the causal
    fingerprint almost every call, so its hit rate is structurally near
    zero (docs/MEMOIZATION.md).  ``memo_sizes`` restricts which sizes get
    the twin (``None`` = all of ``sizes``): the committed baseline keeps
    memo legs on medium/large, where the measurement window is long
    enough for recurring trajectories to dominate -- small's 30-second
    window structurally caps the hit rate around 40%.  With ``nodes``
    set each memo policy also gets cluster memo twins -- the serial twin
    plus one per shard count -- so the digest gate pins memoized merged
    traces across process boundaries too.

    ``include_encoder_twin`` adds a generic-encoder reference leg (label
    suffix ``:enc``) per single-platform (size, policy) cell: the same
    traced workload through the original ``json.dumps`` line-at-a-time
    path, digest-gated byte-identical against the compiled default and
    paired as ``encoder_speedup``.  ``include_digest_only`` adds a
    storeless digest-only leg (label suffix ``:digest-only``) per cell:
    the sink computes the stream SHA-256 without storing or writing
    lines, digest-gated against the plain twin's written trace and
    paired as ``digest_only_speedup``.  Both twins skip archive metrics
    -- like ``:base``, they time the bare workload (docs/EVENT_TRACE.md).
    """
    specs = []
    for size in sizes:
        try:
            shape = REPLAY_SIZES[size]
        except KeyError:
            raise ValueError(
                f"unknown replay size {size!r} (choose from "
                f"{', '.join(REPLAY_SIZES)})"
            ) from None
        for policy in policies:
            for leg_fast in (True, False) if include_base else (True,):
                specs.append(
                    BenchSpec(
                        kind="replay",
                        policy=policy,
                        scale=shape["scale"],
                        duration=shape["duration"],
                        warmup=shape["warmup"],
                        capacity_mib=int(shape["capacity_mib"]),
                        seed=seed,
                        fastpath=leg_fast,
                        trace=True,
                        # Archive metrics ride on the fast leg only; the
                        # :base reference leg times the bare simulation.
                        archive=leg_fast,
                    )
                )
            if include_encoder_twin:
                specs.append(
                    BenchSpec(
                        kind="replay",
                        policy=policy,
                        scale=shape["scale"],
                        duration=shape["duration"],
                        warmup=shape["warmup"],
                        capacity_mib=int(shape["capacity_mib"]),
                        seed=seed,
                        trace=True,
                        encoder="generic",
                    )
                )
            if include_digest_only:
                specs.append(
                    BenchSpec(
                        kind="replay",
                        policy=policy,
                        scale=shape["scale"],
                        duration=shape["duration"],
                        warmup=shape["warmup"],
                        capacity_mib=int(shape["capacity_mib"]),
                        seed=seed,
                        digest_only=True,
                    )
                )
            if (
                include_memo
                and policy in memo_policies
                and (memo_sizes is None or size in memo_sizes)
            ):
                specs.append(
                    BenchSpec(
                        kind="replay",
                        policy=policy,
                        scale=shape["scale"],
                        duration=shape["duration"],
                        warmup=shape["warmup"],
                        capacity_mib=int(shape["capacity_mib"]),
                        seed=seed,
                        trace=True,
                        memo=True,
                    )
                )
                if nodes:
                    for shards in (1, *shard_counts):
                        specs.append(
                            BenchSpec(
                                kind="replay",
                                policy=policy,
                                scale=shape["scale"],
                                duration=shape["duration"],
                                warmup=shape["warmup"],
                                capacity_mib=int(shape["capacity_mib"]),
                                seed=seed,
                                trace=True,
                                nodes=nodes,
                                shards=shards,
                                scheduler=scheduler,
                                epoch=2.0,
                                memo=True,
                            )
                        )
            if nodes:
                for shards in (1, *shard_counts):
                    protocols = ["batched"]
                    if include_unbatched and shards > 1:
                        protocols.append("unbatched")
                    for protocol in protocols:
                        specs.append(
                            BenchSpec(
                                kind="replay",
                                policy=policy,
                                scale=shape["scale"],
                                duration=shape["duration"],
                                warmup=shape["warmup"],
                                capacity_mib=int(shape["capacity_mib"]),
                                seed=seed,
                                trace=True,
                                # Archive metrics ride on the batched
                                # leg; the :unbatched twin times the
                                # bare protocol comparison.
                                archive=protocol == "batched",
                                nodes=nodes,
                                shards=shards,
                                scheduler=scheduler,
                                protocol=protocol,
                                # Fine base grid: adaptive horizons make
                                # it nearly free for the batched leg,
                                # while the per-epoch comparison leg pays
                                # the PR 5 barrier cost it's measuring.
                                epoch=2.0,
                            )
                        )
                    if include_forked:
                        specs.append(
                            BenchSpec(
                                kind="replay",
                                policy=policy,
                                scale=shape["scale"],
                                duration=shape["duration"],
                                warmup=shape["warmup"],
                                capacity_mib=int(shape["capacity_mib"]),
                                seed=seed,
                                trace=True,
                                nodes=nodes,
                                shards=shards,
                                scheduler=scheduler,
                                epoch=2.0,
                                fork=True,
                            )
                        )
    return specs


#: ``:sK`` shard suffix in a replay label (the serial twin has none).
_SHARD_SUFFIX = re.compile(r":s\d+")
#: ``:nK`` cluster-size suffix (single-platform labels have none).
_NODES_SUFFIX = re.compile(r":n\d+")
#: ``:unbatched`` protocol suffix (the batched default has none).
_UNBATCHED_SUFFIX = re.compile(r":unbatched")
#: ``:memo`` effect-cache suffix (the plain twin has none).
_MEMO_SUFFIX = re.compile(r":memo")
#: ``:enc`` generic-encoder reference suffix (compiled default has none).
_ENC_SUFFIX = re.compile(r":enc")
#: ``:digest-only`` storeless-sink suffix (the plain twin has none).
_DIGEST_ONLY_SUFFIX = re.compile(r":digest-only")


def _serial_twin_label(label: str) -> str:
    """The serial-twin label a sharded leg's digest gates against.

    Keeps a ``:memo`` suffix: a sharded memo leg's serial twin is the
    *memoized* single-shard run (its plain pairing is handled separately).
    """
    return _SHARD_SUFFIX.sub("", _UNBATCHED_SUFFIX.sub("", label))


def verify_trace_identity(results: Sequence[Dict[str, object]]) -> List[str]:
    """Check that every replay equivalence pair produced identical traces.

    Two pairings gate:

    * fast leg vs its ``:base`` reference leg (same run, fast path off);
    * every sharded cluster leg (``:sK``) vs its serial twin (the same
      label without the shard suffix) -- the multi-process run must merge
      to the exact bytes of the single-process run;
    * every memoized leg (``:memo``) vs its plain twin (the same label
      without the memo suffix) -- applying recorded effect deltas must
      reproduce the simulated run byte for byte (docs/MEMOIZATION.md);
      sharded memo legs additionally gate against their *memoized*
      serial twin through the shard pairing above;
    * every generic-encoder reference leg (``:enc``) vs its compiled
      twin (the same label without the suffix) -- the per-kind compiled
      encoders must emit the exact bytes of the original ``json.dumps``
      path (docs/EVENT_TRACE.md);
    * every digest-only leg (``:digest-only``) vs its plain twin -- the
      storeless streaming digest must equal the SHA-256 of the twin's
      written trace file;
    * within every archiving leg, the archive's composed per-segment
      digest vs the flat whole-run digest -- the composition rule
      (docs/TRACE_ARCHIVE.md) holding at benchmark scale.

    Returns failure messages; an unpaired leg (CI smoke's fast-only runs)
    or a replay without tracing is simply not checked.
    """
    digests: Dict[str, Dict[str, object]] = {}
    for result in results:
        if result["spec"]["kind"] != "replay":
            continue
        if "trace_sha256" not in result["metrics"]:
            continue
        digests[result["label"]] = result["metrics"]
    failures = []
    for label, metrics in sorted(digests.items()):
        archive_sha = metrics.get("archive_sha256")
        if archive_sha is not None and archive_sha != metrics["trace_sha256"]:
            failures.append(
                f"{label}: composed archive digest diverged from the flat "
                f"trace ({archive_sha[:12]} != "
                f"{metrics['trace_sha256'][:12]})"
            )
        fork_sha = metrics.get("fork_trace_sha256")
        if fork_sha is not None and fork_sha != metrics["trace_sha256"]:
            failures.append(
                f"{label}: forked leg's merged trace diverged from its "
                f"from-scratch twin ({metrics.get('fork_trace_events')} vs "
                f"{metrics['trace_events']} events, {str(fork_sha)[:12]} != "
                f"{metrics['trace_sha256'][:12]})"
            )
        if label.endswith(":base"):
            continue
        base = digests.get(label + ":base")
        if base is not None and metrics["trace_sha256"] != base["trace_sha256"]:
            failures.append(
                f"{label}: fast-path trace diverged from the reference leg "
                f"({metrics['trace_events']} events, "
                f"{metrics['trace_sha256'][:12]} != {base['trace_sha256'][:12]})"
            )
        if _MEMO_SUFFIX.search(label):
            plain = digests.get(_MEMO_SUFFIX.sub("", label))
            if plain is not None and metrics["trace_sha256"] != plain["trace_sha256"]:
                failures.append(
                    f"{label}: memoized trace diverged from the plain twin "
                    f"({metrics['trace_events']} vs "
                    f"{plain['trace_events']} events, "
                    f"{metrics['trace_sha256'][:12]} != "
                    f"{plain['trace_sha256'][:12]})"
                )
        if _ENC_SUFFIX.search(label):
            compiled = digests.get(_ENC_SUFFIX.sub("", label))
            if (
                compiled is not None
                and metrics["trace_sha256"] != compiled["trace_sha256"]
            ):
                failures.append(
                    f"{label}: compiled-encoder trace diverged from the "
                    f"generic reference ({compiled['trace_events']} vs "
                    f"{metrics['trace_events']} events, "
                    f"{compiled['trace_sha256'][:12]} != "
                    f"{metrics['trace_sha256'][:12]})"
                )
        if _DIGEST_ONLY_SUFFIX.search(label):
            plain = digests.get(_DIGEST_ONLY_SUFFIX.sub("", label))
            if plain is not None and metrics["trace_sha256"] != plain["trace_sha256"]:
                failures.append(
                    f"{label}: digest-only stream digest diverged from the "
                    f"written twin ({metrics['trace_events']} vs "
                    f"{plain['trace_events']} events, "
                    f"{metrics['trace_sha256'][:12]} != "
                    f"{plain['trace_sha256'][:12]})"
                )
        if _SHARD_SUFFIX.search(label) or _UNBATCHED_SUFFIX.search(label):
            serial = digests.get(_serial_twin_label(label))
            if serial is None or serial is metrics:
                continue
            if metrics["trace_sha256"] != serial["trace_sha256"]:
                failures.append(
                    f"{label}: sharded merged trace diverged from the serial "
                    f"twin ({metrics['trace_events']} vs "
                    f"{serial['trace_events']} events, "
                    f"{metrics['trace_sha256'][:12]} != "
                    f"{serial['trace_sha256'][:12]})"
                )
    return failures


def verify_coordination(
    results: Sequence[Dict[str, object]],
    min_round_trip_ratio: float = 5.0,
    min_pipe_byte_ratio: float = 10.0,
) -> List[str]:
    """Gate the batched protocol's coordination costs against its twin.

    For every batched sharded replay leg whose ``:unbatched`` twin is
    present (same workload, PR 5 one-message-per-epoch protocol), the
    batched leg must record at least ``min_round_trip_ratio`` times fewer
    coordinator round-trips and ``min_pipe_byte_ratio`` times fewer pipe
    bytes.  Returns failure messages; legs without a twin (or without the
    coordination metrics -- older baselines) are simply not checked.
    """
    metrics_by_label = {
        r["label"]: r["metrics"]
        for r in results
        if r["spec"]["kind"] == "replay" and "round_trips" in r["metrics"]
    }
    failures = []
    for label, batched in sorted(metrics_by_label.items()):
        if _UNBATCHED_SUFFIX.search(label) or label.endswith(":base"):
            continue
        twin = metrics_by_label.get(label + ":unbatched")
        if twin is None:
            continue
        if batched["round_trips"] * min_round_trip_ratio > twin["round_trips"]:
            failures.append(
                f"{label}: {batched['round_trips']} round-trips is not "
                f"{min_round_trip_ratio:g}x fewer than the unbatched twin's "
                f"{twin['round_trips']}"
            )
        if (
            twin["pipe_bytes"] > 0
            and batched["pipe_bytes"] * min_pipe_byte_ratio > twin["pipe_bytes"]
        ):
            failures.append(
                f"{label}: {batched['pipe_bytes']} pipe bytes is not "
                f"{min_pipe_byte_ratio:g}x fewer than the unbatched twin's "
                f"{twin['pipe_bytes']}"
            )
    return failures


def replay_speedups(results: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Wall-clock ratios for every paired replay label.

    Six pairings, one entry per non-reference label that has a partner:

    * fast leg vs ``:base`` leg (the fast-path speedup);
    * ``:memo`` leg vs its plain twin (the warm-path memoization speedup,
      reported as ``memo_speedup``);
    * plain leg vs its ``:enc`` generic-encoder reference twin (the
      compiled-encoder speedup, reported as ``encoder_speedup``);
    * plain leg vs its ``:digest-only`` twin (the storeless-sink gain,
      reported as ``digest_only_speedup``);
    * sharded cluster leg (``:sK``) vs its serial twin (the multi-process
      speedup -- bounded by the machine's core count);
    * sharded cluster leg vs the *single-platform* fast leg of the same
      (policy, size), reported as ``vs_single_speedup`` -- the end-to-end
      gain of splitting one big replay into sharded cluster nodes.
    """
    walls = {
        r["label"]: r["wall_seconds"]
        for r in results
        if r["spec"]["kind"] == "replay"
    }
    speedups = {}
    for label in sorted(walls):
        if label.endswith(":base") or _ENC_SUFFIX.search(label):
            continue
        if _DIGEST_ONLY_SUFFIX.search(label):
            # The digest-only leg's pairing lives on its plain twin.
            continue
        entry = {}
        if label + ":base" in walls:
            fast, base = walls[label], walls[label + ":base"]
            entry.update(
                fast_wall_seconds=fast,
                base_wall_seconds=base,
                speedup=round(base / fast, 2) if fast else None,
            )
        if label + ":enc" in walls:
            compiled, generic = walls[label], walls[label + ":enc"]
            entry.update(
                generic_encoder_wall_seconds=generic,
                encoder_speedup=(
                    round(generic / compiled, 2) if compiled else None
                ),
            )
        if label + ":digest-only" in walls:
            plain, storeless = walls[label], walls[label + ":digest-only"]
            entry.update(
                digest_only_wall_seconds=storeless,
                digest_only_speedup=(
                    round(plain / storeless, 2) if storeless else None
                ),
            )
        if _MEMO_SUFFIX.search(label):
            plain_label = _MEMO_SUFFIX.sub("", label)
            if plain_label in walls:
                memo, plain = walls[label], walls[plain_label]
                entry.update(
                    plain_wall_seconds=plain,
                    memo_wall_seconds=memo,
                    memo_speedup=round(plain / memo, 2) if memo else None,
                )
        if _SHARD_SUFFIX.search(label):
            serial_label = _serial_twin_label(label)
            sharded = walls[label]
            if serial_label in walls:
                serial = walls[serial_label]
                entry.update(
                    serial_wall_seconds=serial,
                    sharded_wall_seconds=sharded,
                    speedup=round(serial / sharded, 2) if sharded else None,
                )
            single_label = _NODES_SUFFIX.sub("", serial_label)
            if single_label in walls:
                entry["vs_single_wall_seconds"] = walls[single_label]
                entry["vs_single_speedup"] = (
                    round(walls[single_label] / sharded, 2) if sharded else None
                )
        if entry:
            speedups[label] = entry
    return speedups


def compare_replay(
    current: Sequence[Dict[str, object]],
    baseline: Sequence[Dict[str, object]],
    factor: float = 2.0,
) -> List[str]:
    """Regression check for the macro suite: returns failure messages.

    Every *fast-leg* replay run present in both result lists gates on wall
    time against ``factor`` times the committed baseline; base legs,
    ``:enc`` generic-encoder reference legs, and unmatched labels are
    informational.  Labels encode (policy, scale, duration), so a matched
    label is the same workload.
    """
    base_walls = {
        r["label"]: r["wall_seconds"]
        for r in baseline
        if r.get("spec", {}).get("kind") == "replay"
    }
    failures = []
    matched = 0
    for result in current:
        label = result["label"]
        if result["spec"]["kind"] != "replay" or label.endswith(":base"):
            continue
        if _ENC_SUFFIX.search(label):
            continue
        base = base_walls.get(label)
        if base is None:
            continue
        matched += 1
        wall = result["wall_seconds"]
        if wall > base * factor:
            failures.append(
                f"{label}: {wall:.2f}s exceeds {factor:g}x baseline "
                f"({base:.2f}s)"
            )
    if not matched:
        failures.append(
            "no fast-leg replay labels matched the baseline "
            "(wrong --sizes, or the baseline lacks replay runs)"
        )
    return failures


def summarize(results: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate a result list into the committed-baseline document shape."""
    document = {
        "schema": "repro-bench/1",
        "total_wall_seconds": round(
            sum(r["wall_seconds"] for r in results), 4
        ),
        "total_cpu_seconds": round(sum(r["cpu_seconds"] for r in results), 4),
        #: Cores on the recording machine -- context for every wall
        #: timing and for the sharded legs' speedups in particular.
        "cpu_count": os.cpu_count(),
        "runs": list(results),
    }
    speedups = replay_speedups(results)
    if speedups:
        document["replay_speedups"] = speedups
    return document


def write_results(path: Path, document: Dict[str, object]) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> Optional[Dict[str, object]]:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def compare_micro(
    current: Dict[str, float],
    baseline: Dict[str, float],
    factor: float = 2.0,
) -> List[str]:
    """Regression check for the microbenchmark: returns failure messages.

    A metric regresses when the current time exceeds ``factor`` times the
    committed baseline time.  Only the run-length timings gate; the
    reference timings are informational.
    """
    failures = []
    for key in ("touch_ms", "discard_ms"):
        cur, base = current.get(key), baseline.get(key)
        if cur is None or base is None:
            failures.append(f"{key}: missing from current or baseline")
            continue
        if cur > base * factor:
            failures.append(
                f"{key}: {cur:.2f} ms exceeds {factor:g}x baseline "
                f"({base:.2f} ms)"
            )
    return failures
