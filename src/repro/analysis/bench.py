"""Parallel benchmark fan-out: independent runs across worker processes.

The evaluation grid is embarrassingly parallel -- every (figure cell,
policy, scale) characterization or replay run builds its own
:class:`~repro.mem.physical.PhysicalMemory`, address spaces, and
deterministic ``RngStream``s (seeded by name, PR 1's kernel), so runs share
no state and their *metrics* are identical whether executed serially or
fanned out.  Only the wall/CPU timings attached to each run vary with the
machine.

Three entry points:

* :func:`execute_spec` -- run one :class:`BenchSpec`, returning its metrics
  plus wall/CPU timings (top-level so it pickles into worker processes),
* :func:`run_benchmarks` -- fan a list of specs across a
  ``ProcessPoolExecutor`` (``jobs=1`` degrades to a serial loop),
* :func:`run_vmm_microbench` / :func:`compare_micro` -- the bulk
  touch/discard microbenchmark against the per-page reference oracle, and
  the regression check CI applies against the committed ``BENCH_vmm.json``.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.mem.layout import MIB, PAGE_SIZE

#: Policies a replay spec accepts (characterize accepts POLICIES as well).
REPLAY_POLICIES = ("vanilla", "eager", "desiccant")


@dataclass(frozen=True)
class BenchSpec:
    """One independent benchmark cell.

    ``kind`` selects the protocol: ``"characterize"`` runs the §3.1/§5.2
    single-instance loop for function ``name``; ``"replay"`` runs the §5.3
    Azure-style trace (``name`` is unused); ``"micro"`` runs the VMM
    touch/discard microbenchmark.  Frozen so it hashes and pickles cleanly.
    """

    kind: str
    name: str = ""
    policy: str = "vanilla"
    iterations: int = 30
    budget_mib: int = 256
    scale: float = 5.0
    duration: float = 20.0
    warmup: float = 10.0
    capacity_mib: int = 1024
    seed: int = 42
    size_mib: int = 200
    repeats: int = 3

    @property
    def label(self) -> str:
        if self.kind == "characterize":
            return f"characterize:{self.name}:{self.policy}:i{self.iterations}"
        if self.kind == "replay":
            return f"replay:{self.policy}:x{self.scale:g}:d{self.duration:g}"
        return f"micro:vmm:{self.size_mib}mib"


def _run_characterize(spec: BenchSpec) -> Dict[str, object]:
    from repro.analysis.characterize import run_single

    run = run_single(
        spec.name,
        policy=spec.policy,
        iterations=spec.iterations,
        memory_budget=spec.budget_mib * MIB,
    )
    try:
        return {
            "final_uss": run.final_uss,
            "final_ideal": run.final_ideal,
            "avg_ratio": round(run.avg_ratio, 9),
            "max_ratio": round(run.max_ratio, 9),
            "latency_sum": round(sum(run.latency_series), 9),
        }
    finally:
        run.destroy()


def _run_replay(spec: BenchSpec) -> Dict[str, object]:
    from repro.core import Desiccant, EagerGcManager, VanillaManager
    from repro.faas.platform import PlatformConfig
    from repro.trace.generator import TraceGenerator
    from repro.trace.replay import ReplayConfig, replay

    factories = {
        "vanilla": VanillaManager,
        "eager": EagerGcManager,
        "desiccant": Desiccant,
    }
    config = ReplayConfig(
        scale_factor=spec.scale,
        warmup_seconds=spec.warmup,
        duration_seconds=spec.duration,
        platform=PlatformConfig(capacity_bytes=spec.capacity_mib * MIB),
    )
    stats = replay(factories[spec.policy], config, TraceGenerator(seed=spec.seed)).stats
    return {
        "cold_boot_rate": round(stats.cold_boot_rate, 9),
        "throughput_rps": round(stats.throughput_rps, 9),
        "cpu_utilization": round(stats.cpu_utilization, 9),
        "p99_latency": round(stats.p99_latency, 9),
        "evictions": stats.evictions,
    }


def run_vmm_microbench(size_mib: int = 200, repeats: int = 3) -> Dict[str, float]:
    """Time bulk touch + discard of ``size_mib`` MiB on the run-length VMM
    and on the retained per-page reference; report best-of-``repeats`` in
    milliseconds plus the resulting speedups.
    """
    from repro.mem.physical import PhysicalMemory
    from repro.mem.reference import ReferenceAddressSpace
    from repro.mem.vmm import VirtualAddressSpace

    size = size_mib * MIB
    pages = size // PAGE_SIZE

    def best_of(factory) -> Dict[str, float]:
        touch_s = discard_s = float("inf")
        for _ in range(repeats):
            space = factory()
            mapping = space.mmap(size)
            t0 = time.perf_counter()
            counts = space.touch(mapping.start, size)
            t1 = time.perf_counter()
            released = space.discard(mapping.start, size)
            t2 = time.perf_counter()
            assert counts.minor == pages and released == pages
            space.close()
            touch_s = min(touch_s, t1 - t0)
            discard_s = min(discard_s, t2 - t1)
        return {"touch_ms": touch_s * 1e3, "discard_ms": discard_s * 1e3}

    fast = best_of(lambda: VirtualAddressSpace("bench", PhysicalMemory()))
    ref = best_of(lambda: ReferenceAddressSpace("bench-ref", PhysicalMemory()))
    return {
        "size_mib": size_mib,
        "pages": pages,
        "touch_ms": round(fast["touch_ms"], 4),
        "discard_ms": round(fast["discard_ms"], 4),
        "ref_touch_ms": round(ref["touch_ms"], 4),
        "ref_discard_ms": round(ref["discard_ms"], 4),
        "speedup_touch": round(ref["touch_ms"] / fast["touch_ms"], 2),
        "speedup_discard": round(ref["discard_ms"] / fast["discard_ms"], 2),
    }


def execute_spec(spec: BenchSpec) -> Dict[str, object]:
    """Run one spec; returns its metrics plus wall/CPU timings.

    Top-level (not a closure) so ``ProcessPoolExecutor`` can pickle it.
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if spec.kind == "characterize":
        metrics = _run_characterize(spec)
    elif spec.kind == "replay":
        metrics = _run_replay(spec)
    elif spec.kind == "micro":
        metrics = run_vmm_microbench(spec.size_mib, spec.repeats)
    else:
        raise ValueError(f"unknown bench kind {spec.kind!r}")
    return {
        "label": spec.label,
        "spec": asdict(spec),
        "metrics": metrics,
        "wall_seconds": round(time.perf_counter() - wall0, 4),
        "cpu_seconds": round(time.process_time() - cpu0, 4),
    }


def run_benchmarks(
    specs: Sequence[BenchSpec], jobs: int = 1
) -> List[Dict[str, object]]:
    """Execute every spec, fanning across ``jobs`` worker processes.

    Results come back in spec order regardless of completion order, and the
    per-run *metrics* are bit-identical to a serial run -- each spec builds
    its own physical memory and seeds its own RNG streams.
    """
    if jobs <= 1 or len(specs) <= 1:
        return [execute_spec(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        return list(pool.map(execute_spec, specs))


def build_grid(
    functions: Sequence[str],
    policies: Sequence[str],
    scales: Sequence[float],
    iterations: int = 30,
    budget_mib: int = 256,
    duration: float = 20.0,
    warmup: float = 10.0,
    seed: int = 42,
) -> List[BenchSpec]:
    """The default (figure-cell, policy, scale) fan-out grid."""
    specs = [
        BenchSpec(
            kind="characterize",
            name=fn,
            policy=policy,
            iterations=iterations,
            budget_mib=budget_mib,
        )
        for fn in functions
        for policy in policies
    ]
    specs.extend(
        BenchSpec(
            kind="replay",
            policy=policy,
            scale=scale,
            duration=duration,
            warmup=warmup,
            seed=seed,
        )
        for scale in scales
        for policy in policies
    )
    return specs


def summarize(results: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate a result list into the ``BENCH_vmm.json`` document shape."""
    return {
        "schema": "repro-bench/1",
        "total_wall_seconds": round(
            sum(r["wall_seconds"] for r in results), 4
        ),
        "total_cpu_seconds": round(sum(r["cpu_seconds"] for r in results), 4),
        "runs": list(results),
    }


def write_results(path: Path, document: Dict[str, object]) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> Optional[Dict[str, object]]:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def compare_micro(
    current: Dict[str, float],
    baseline: Dict[str, float],
    factor: float = 2.0,
) -> List[str]:
    """Regression check for the microbenchmark: returns failure messages.

    A metric regresses when the current time exceeds ``factor`` times the
    committed baseline time.  Only the run-length timings gate; the
    reference timings are informational.
    """
    failures = []
    for key in ("touch_ms", "discard_ms"):
        cur, base = current.get(key), baseline.get(key)
        if cur is None or base is None:
            failures.append(f"{key}: missing from current or baseline")
            continue
        if cur > base * factor:
            failures.append(
                f"{key}: {cur:.2f} ms exceeds {factor:g}x baseline "
                f"({base:.2f} ms)"
            )
    return failures
