"""Minimal table/CSV rendering shared by examples and benchmarks."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (the benches print these)."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> Path:
    """Write rows as CSV (what the artifact's parse.sh emits); returns path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
