"""Characterization harnesses and report rendering for the experiments."""

from repro.analysis.characterize import (
    POLICIES,
    SingleInstanceRun,
    run_concurrent_instances,
    run_overhead_experiment,
    run_single,
)
from repro.analysis.report import render_table, write_csv

__all__ = [
    "POLICIES",
    "SingleInstanceRun",
    "run_concurrent_instances",
    "run_overhead_experiment",
    "run_single",
    "render_table",
    "write_csv",
]
