"""Single-instance characterization harness (§3.1, §5.2, §5.5, §5.6).

Protocol copied from the paper: execute a function 100 times in the same
instance(s), sampling USS at every exit point (where the platform would
freeze).  Chained functions run each stage in its own container and report
accumulated consumption.  Policies:

* ``vanilla``   -- freeze semantics only.
* ``eager``     -- aggressive full GC after every stage exit.
* ``desiccant`` -- vanilla during the run, Desiccant reclaim at the end
  (the §5.2 setting: memory became scarce, the frozen instance is chosen).
* The *ideal* series (live bytes + genuinely-used native memory) is
  recorded alongside every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mem.layout import MIB
from repro.mem.accounting import measure
from repro.mem.physical import PhysicalMemory
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import ReclaimReport, reclaim_instance
from repro.faas.instance import FunctionInstance
from repro.faas.libraries import SharedLibraryPool
from repro.runtime.cpython import CPythonRuntime
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime
from repro.workloads.model import FunctionDefinition
from repro.workloads.registry import get_definition

POLICIES = ("vanilla", "eager", "desiccant")

_RUNTIME_CLASSES = (HotSpotRuntime, V8Runtime, CPythonRuntime)


@dataclass
class SingleInstanceRun:
    """Series and endpoints from one characterization run."""

    definition: FunctionDefinition
    policy: str
    uss_series: List[int] = field(default_factory=list)
    ideal_series: List[int] = field(default_factory=list)
    latency_series: List[float] = field(default_factory=list)
    instances: List[FunctionInstance] = field(default_factory=list)
    reclaim_reports: List[ReclaimReport] = field(default_factory=list)

    @property
    def final_uss(self) -> int:
        return self.uss_series[-1]

    @property
    def final_ideal(self) -> int:
        return self.ideal_series[-1]

    def ratios(self) -> List[float]:
        """Per-iteration USS / ideal (the Figure 1 quantity)."""
        return [u / i for u, i in zip(self.uss_series, self.ideal_series)]

    @property
    def avg_ratio(self) -> float:
        ratios = self.ratios()
        return sum(ratios) / len(ratios)

    @property
    def max_ratio(self) -> float:
        return max(self.ratios())

    def destroy(self) -> None:
        for instance in self.instances:
            instance.destroy()


def _new_instances(
    definition: FunctionDefinition,
    memory_budget: int,
    physical: PhysicalMemory,
    shared_files,
    seed: int,
) -> List[FunctionInstance]:
    instances = []
    for stage in definition.stages:
        instance = FunctionInstance(
            stage,
            memory_budget=memory_budget,
            physical=physical,
            shared_files=shared_files,
            seed=seed,
        )
        instance.boot()
        instances.append(instance)
    return instances


def _run_iteration(
    instances: List[FunctionInstance],
    now: float,
    eager: bool,
) -> Tuple[float, float]:
    """One end-to-end execution across all stages; returns (wall, now)."""
    wall = 0.0
    handoff: Optional[Tuple[FunctionInstance, int]] = None
    for instance in instances:
        if instance.frozen_since is not None:
            wall += instance.thaw(now)
        if handoff is not None:
            producer, oid = handoff
            producer.runtime.free_persistent(oid)
            handoff = None
        result = instance.invoke(now)
        wall += result.cpu_seconds
        if result.handoff_oid is not None:
            handoff = (instance, result.handoff_oid)
        if eager:
            wall += instance.runtime.full_gc(aggressive=True)
        instance.freeze(now + wall)
    return wall, now + wall


def run_single(
    definition: FunctionDefinition | str,
    policy: str = "vanilla",
    iterations: int = 100,
    memory_budget: int = 256 * MIB,
    shared_libraries: bool = True,
    seed: int = 0,
    reclaim_aggressive: bool = False,
    unmap_libraries: bool = True,
) -> SingleInstanceRun:
    """The §3.1 / §5.2 protocol for one function under one policy."""
    if isinstance(definition, str):
        definition = get_definition(definition)
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; pick from {POLICIES}")
    physical = PhysicalMemory()
    shared_files = None
    if shared_libraries:
        pool = SharedLibraryPool(physical, runtime_classes=_RUNTIME_CLASSES)
        shared_files = pool.files
    instances = _new_instances(definition, memory_budget, physical, shared_files, seed)
    run = SingleInstanceRun(definition=definition, policy=policy, instances=instances)

    now = 0.0
    for _ in range(iterations):
        wall, now = _run_iteration(instances, now, eager=(policy == "eager"))
        run.latency_series.append(wall)
        run.uss_series.append(sum(i.uss() for i in instances))
        run.ideal_series.append(sum(i.ideal_uss() for i in instances))
        now += 1.0  # think time between invocations (instances stay frozen)

    if policy == "desiccant":
        profiles = ProfileStore()
        for instance in instances:
            report = reclaim_instance(
                instance,
                profiles,
                aggressive=reclaim_aggressive,
                unmap_libraries=unmap_libraries,
            )
            run.reclaim_reports.append(report)
        run.uss_series.append(sum(i.uss() for i in instances))
        run.ideal_series.append(sum(i.ideal_uss() for i in instances))
    return run


def run_overhead_experiment(
    definition: FunctionDefinition | str,
    reclaimer: str = "desiccant",
    warm_iterations: int = 130,
    probe_iterations: int = 10,
    memory_budget: int = 256 * MIB,
    seed: int = 0,
) -> Tuple[float, float]:
    """The §5.6 protocol: run 130 times, reclaim, run 10 more.

    ``reclaimer`` is ``"desiccant"`` (non-aggressive), ``"aggressive"``
    (the unmodified GC interface, deopting JIT code), or ``"swap"``.
    Returns ``(latency_before, latency_after)`` averaged over the last
    ``probe_iterations`` on each side of the reclamation.
    """
    if isinstance(definition, str):
        definition = get_definition(definition)
    physical = PhysicalMemory()
    pool = SharedLibraryPool(physical, runtime_classes=_RUNTIME_CLASSES)
    instances = _new_instances(definition, memory_budget, physical, pool.files, seed)

    now = 0.0
    latencies: List[float] = []
    for _ in range(warm_iterations):
        wall, now = _run_iteration(instances, now, eager=False)
        latencies.append(wall)
        now += 1.0
    before = sum(latencies[-probe_iterations:]) / probe_iterations

    profiles = ProfileStore()
    for instance in instances:
        if reclaimer == "swap":
            desiccant_like = reclaim_would_release(instance)
            _swap_out_amount(instance, desiccant_like)
        elif reclaimer == "aggressive":
            reclaim_instance(instance, profiles, aggressive=True)
        elif reclaimer == "desiccant":
            reclaim_instance(instance, profiles, aggressive=False)
        else:
            raise ValueError(f"unknown reclaimer {reclaimer!r}")

    after_latencies: List[float] = []
    for _ in range(probe_iterations):
        wall, now = _run_iteration(instances, now, eager=False)
        after_latencies.append(wall)
        now += 1.0
    after = sum(after_latencies) / probe_iterations
    for instance in instances:
        instance.destroy()
    return before, after


def reclaim_would_release(instance: FunctionInstance) -> int:
    """Estimate how much Desiccant would release: resident-but-dead heap
    memory (used for the like-for-like swap comparison in §5.6)."""
    stats = instance.runtime.heap_stats()
    live = instance.runtime.live_bytes()
    return max(0, instance.heap_resident_bytes() - live)


def _swap_out_amount(instance: FunctionInstance, target_bytes: int) -> int:
    """Swap out ~``target_bytes`` of the instance's anonymous pages.

    The swap mechanism has no runtime semantics: it walks mappings in
    address order and pushes private pages out until enough memory has
    actually moved to the swap device, hitting live pages as readily as
    dead ones (dropped clean file pages don't count toward the target --
    they released nothing swap-specific).
    """
    space = instance.runtime.space
    swap = space.physical.swap
    swapped_before = swap.pages
    for mapping in list(space.mappings()):
        if (swap.pages - swapped_before) * 4096 >= target_bytes:
            break
        space.swap_out_range(mapping.start, mapping.length)
    return (swap.pages - swapped_before) * 4096


def run_concurrent_instances(
    definition: FunctionDefinition | str = "fft",
    count: int = 1,
    iterations: int = 30,
    memory_budget: int = 256 * MIB,
    desiccant: bool = True,
    seed: int = 0,
) -> Dict[str, float]:
    """The Figure 8 setup: ``count`` instances of the same function on one
    node sharing library files (no warm overlay cache), measured by
    per-instance RSS and PSS."""
    if isinstance(definition, str):
        definition = get_definition(definition)
    if definition.is_chain:
        raise ValueError("figure 8 uses single-stage functions")
    physical = PhysicalMemory()
    pool = SharedLibraryPool(
        physical, runtime_classes=_RUNTIME_CLASSES, warm_host=False
    )
    spec = definition.stages[0]
    instances = [
        FunctionInstance(
            spec,
            memory_budget=memory_budget,
            physical=physical,
            shared_files=pool.files,
            seed=seed + k,
        )
        for k in range(count)
    ]
    now = 0.0
    for instance in instances:
        instance.boot()
    for _ in range(iterations):
        for instance in instances:
            if instance.frozen_since is not None:
                instance.thaw(now)
            instance.invoke(now)
            instance.freeze(now)
        now += 1.0
    if desiccant:
        profiles = ProfileStore()
        for instance in instances:
            reclaim_instance(instance, profiles)
    reports = [measure(i.runtime.space) for i in instances]
    result = {
        "rss_per_instance": sum(r.rss for r in reports) / count,
        "pss_per_instance": sum(r.pss for r in reports) / count,
        "uss_per_instance": sum(r.uss for r in reports) / count,
    }
    for instance in instances:
        instance.destroy()
    return result
