"""The invariant oracle: whole-simulation checks at a configurable cadence.

An :class:`InvariantOracle` owns a registry of live objects -- address
spaces grouped by their :class:`~repro.mem.physical.PhysicalMemory`,
mapped files, instances, platforms -- and re-checks every invariant in
:mod:`repro.check.invariants` plus three *stateful* cross-event laws:

* **frozen-no-fault** -- a frozen instance's threads are stopped, so its
  space must not fault while frozen (reclaim legitimately faults; the
  oracle re-baselines when ``reclaim_count`` moves).
* **swap-major-parity** -- every page leaving the swap device either paid
  a major fault or was explicitly discarded; ``total_swap_ins`` must
  track the sum of major faults exactly.
* **reclaim-accounting** -- the ``released_bytes`` Desiccant publishes on
  ``reclaim-done`` events must sum to the manager's
  ``total_released_bytes``, and each instance's last reclaim must not
  have grown its USS.

Cadence:

* ``"event"`` -- after every kernel event (via the kernel probe hook).
* ``"step"``  -- on every ``step`` bus event (after each platform event).
* ``"end"``   -- only when :meth:`finish` is called.

``every=N`` additionally samples 1-in-N occasions (always checking the
first), for suites where a full sweep per event is too slow.

``REPRO_CHECK=1`` in the environment makes every
:class:`~repro.faas.platform.FaasPlatform` attach an oracle to itself
(see :func:`maybe_attach_oracle`); ``REPRO_CHECK_CADENCE`` and
``REPRO_CHECK_EVERY`` tune it.  This is how the tier-1 end-to-end tests
run the oracle continuously without knowing about it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.check.invariants import (
    Violation,
    _violate,
    check_file,
    check_instance,
    check_physical,
    check_platform,
    check_runtime,
    check_smaps,
    check_space,
)
from repro.faas.instance import FunctionInstance, InstanceState
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import VirtualAddressSpace

CADENCES = ("event", "step", "end")


@dataclass
class OracleConfig:
    """How often and how thoroughly the oracle sweeps."""

    cadence: str = "step"
    #: Sample 1-in-N check occasions (1 = every occasion).
    every: int = 1

    def __post_init__(self) -> None:
        if self.cadence not in CADENCES:
            raise ValueError(f"unknown cadence {self.cadence!r}; pick from {CADENCES}")
        if self.every < 1:
            raise ValueError("every must be >= 1")


@dataclass
class _SpaceRecord:
    space: VirtualAddressSpace
    major_baseline: int


@dataclass
class _FrozenRecord:
    faults_total: int
    reclaim_count: int
    #: ``len(instance.transitions)`` at baseline time.  Freeze, thaw, and
    #: destroy all append to the transition log, so a changed length means
    #: the instance was not *continuously* frozen since the baseline --
    #: faults from the thawed window are legal and the record is stale.
    transition_count: int = 0


class InvariantOracle:
    """Registry + sweep loop over every conservation law."""

    def __init__(self, config: Optional[OracleConfig] = None) -> None:
        self.config = config or OracleConfig()
        #: id(space) -> record, strong refs kept so closed spaces still
        #: contribute their final major-fault counts to the parity law.
        self._spaces: Dict[int, _SpaceRecord] = {}
        self._files: Dict[int, MappedFile] = {}
        self._physicals: Dict[int, PhysicalMemory] = {}
        self._swap_in_baselines: Dict[int, int] = {}
        self._instances: Dict[int, FunctionInstance] = {}
        self._frozen: Dict[int, _FrozenRecord] = {}
        self._platforms: List[object] = []
        self._released_event_bytes = 0
        self._released_baselines: Dict[int, int] = {}
        self._subscriptions: List[tuple] = []
        self._probed_kernels: List[tuple] = []
        self._occasions = 0
        self.checks_run = 0
        self.last_violation: Optional[Violation] = None

    # ----------------------------------------------------------- checkpoint

    def __getstate__(self) -> dict:
        """Pickle with the ``id()``-keyed registries made portable.

        Object ids are process-local: restoring a checkpoint re-creates
        every object at a new address, so the raw dicts would be keyed by
        stale ids and every lookup (swap parity baselines, released-bytes
        baselines) would silently miss.  Store the registries as
        object-paired lists and re-key them on restore.
        """
        state = dict(self.__dict__)
        state["_spaces"] = list(self._spaces.values())
        state["_files"] = list(self._files.values())
        physicals = list(self._physicals.values())
        state["_physicals"] = physicals
        state["_swap_in_baselines"] = [
            (physical, self._swap_in_baselines[id(physical)])
            for physical in physicals
        ]
        released = []
        for platform in self._platforms:
            manager = platform.manager
            if id(manager) in self._released_baselines:
                released.append((manager, self._released_baselines[id(manager)]))
        state["_released_baselines"] = released
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._spaces = {id(record.space): record for record in state["_spaces"]}
        self._files = {id(file): file for file in state["_files"]}
        self._physicals = {id(physical): physical for physical in state["_physicals"]}
        self._swap_in_baselines = {
            id(physical): baseline
            for physical, baseline in state["_swap_in_baselines"]
        }
        self._released_baselines = {
            id(manager): baseline
            for manager, baseline in state["_released_baselines"]
        }

    # ---------------------------------------------------------- registration

    def register_space(
        self, space: VirtualAddressSpace, baseline_majors: Optional[int] = None
    ) -> None:
        """Track a space (and its physical memory) from now on.

        ``baseline_majors=None`` means the space is brand new (all its
        major faults count toward swap parity); pass its current count to
        adopt a space with pre-oracle history.
        """
        if id(space) in self._spaces:
            return
        majors = space.faults.major if baseline_majors is None else baseline_majors
        self._spaces[id(space)] = _SpaceRecord(space, majors)
        self.register_physical(space.physical)

    def register_physical(self, physical: PhysicalMemory) -> None:
        if id(physical) not in self._physicals:
            self._physicals[id(physical)] = physical
            self._swap_in_baselines[id(physical)] = physical.swap.total_swap_ins

    def register_file(self, file: MappedFile) -> None:
        self._files.setdefault(id(file), file)

    def register_instance(
        self, instance: FunctionInstance, adopted: bool = False
    ) -> None:
        """Track an instance; ``adopted`` marks pre-oracle history (its
        existing faults do not count toward swap parity)."""
        if instance.id in self._instances:
            return
        self._instances[instance.id] = instance
        space = instance.runtime.space
        self.register_space(
            space, baseline_majors=space.faults.major if adopted else None
        )
        if instance.state is InstanceState.FROZEN:
            self._note_frozen(instance)

    def attach_platform(self, platform) -> None:
        """Watch one platform: its instances, physical memory, library
        pool, and bus events."""
        self._platforms.append(platform)
        self.register_physical(platform.physical)
        manager = platform.manager
        if hasattr(manager, "total_released_bytes"):
            self._released_baselines[id(manager)] = manager.total_released_bytes
        for instance in platform.all_instances():
            self.register_instance(instance, adopted=True)
        self._subscribe_bus(platform.bus, platform.node_id)
        if self.config.cadence == "event":
            self._probe_kernel(platform.kernel)

    def note_manager_swap(self, platform, old_manager) -> None:
        """Carry reclaim accounting across a fork's manager swap.

        Bytes the old manager released stay in the published-events sum,
        so the replacement manager's baseline is shifted down by exactly
        that amount -- the reclaim-published law keeps holding over the
        whole run, not just the post-fork suffix.
        """
        carried = 0
        if hasattr(old_manager, "total_released_bytes"):
            carried = old_manager.total_released_bytes - self._released_baselines.pop(
                id(old_manager), 0
            )
        manager = platform.manager
        if hasattr(manager, "total_released_bytes"):
            self._released_baselines[id(manager)] = (
                manager.total_released_bytes - carried
            )

    def attach_world(self, spaces=(), files=(), instances=(), physical=None) -> None:
        """Direct registration for the fuzzer (no platform, no bus)."""
        if physical is not None:
            self.register_physical(physical)
        for space in spaces:
            self.register_space(space)
        for file in files:
            self.register_file(file)
        for instance in instances:
            self.register_instance(instance)

    def detach(self) -> None:
        for bus, subscription in self._subscriptions:
            bus.unsubscribe(subscription)
        self._subscriptions = []
        for kernel, probe in self._probed_kernels:
            kernel.remove_probe(probe)
        self._probed_kernels = []

    # ---------------------------------------------------------------- wiring

    def _subscribe_bus(self, bus, node: Optional[int]) -> None:
        from repro.sim import FREEZE, RECLAIM_DONE, STEP, THAW

        bookkeeping = bus.subscribe(
            self._on_bus_event, kinds=(FREEZE, THAW, RECLAIM_DONE), node=node
        )
        self._subscriptions.append((bus, bookkeeping))
        if self.config.cadence == "step":
            stepper = bus.subscribe(self._on_step, kinds=(STEP,), node=node)
            self._subscriptions.append((bus, stepper))

    def _probe_kernel(self, kernel) -> None:
        probe = kernel.add_probe(self._on_probe)
        self._probed_kernels.append((kernel, probe))

    def _on_bus_event(self, event) -> None:
        from repro.sim import FREEZE, RECLAIM_DONE, THAW

        if event.kind == RECLAIM_DONE:
            self._released_event_bytes += event.get("released_bytes", 0)
            return None
        instance = event.get("instance")
        if instance is None:
            instance = self._instances.get(event.get("instance_id"))
        if instance is None:
            return None
        if event.kind == FREEZE:
            self.register_instance(instance)
            self._note_frozen(instance)
        elif event.kind == THAW:
            self._frozen.pop(instance.id, None)
        return None

    def _on_step(self, _event) -> None:
        self.maybe_check()
        return None

    def _on_probe(self) -> None:
        self.maybe_check()

    def _note_frozen(self, instance: FunctionInstance) -> None:
        self._frozen[instance.id] = _FrozenRecord(
            faults_total=instance.runtime.space.faults.total,
            reclaim_count=instance.reclaim_count,
            transition_count=len(instance.transitions),
        )

    # --------------------------------------------------------------- sweeps

    def maybe_check(self) -> None:
        """One check occasion; honors the 1-in-N sampling."""
        self._occasions += 1
        if (self._occasions - 1) % self.config.every == 0:
            self.check_now()

    def finish(self) -> None:
        """End-of-run sweep (the only sweep under cadence ``"end"``).

        Quiescence also makes the reclaim-published law exact: every
        ``reclaim-done`` event has been delivered, so the published sum
        must equal the manager counters, not merely stay below them.
        """
        self.check_now(final=True)

    def check_now(self, final: bool = False) -> None:
        """Sweep every invariant; raises :class:`Violation` on the first
        broken law (after remembering it in :attr:`last_violation`)."""
        try:
            self._sweep(final)
        except Violation as violation:
            self.last_violation = violation
            raise
        self.checks_run += 1

    def _sweep(self, final: bool = False) -> None:
        self._discover()
        for record in self._spaces.values():
            if not record.space.closed:
                check_space(record.space)
                check_smaps(record.space)
        for file in self._files.values():
            if file.resident_pages() or file._holders:
                check_file(file)
        for physical in self._physicals.values():
            spaces = [
                r.space
                for r in self._spaces.values()
                if r.space.physical is physical
            ]
            files = [f for f in self._files.values() if self._file_on(f, spaces)]
            check_physical(physical, spaces, files)
            self._check_swap_parity(physical)
        for instance in self._instances.values():
            check_instance(instance)
            if instance.state is not InstanceState.DEAD:
                check_runtime(instance.runtime)
        self._check_frozen_quiescence()
        for platform in self._platforms:
            check_platform(platform)
        self._check_reclaim_accounting(final)

    # ------------------------------------------------------------ discovery

    def _discover(self) -> None:
        """Pick up instances/files created since the last sweep."""
        for platform in self._platforms:
            for instance in platform.all_instances():
                self.register_instance(instance)
            pool = getattr(platform, "_library_pool", None)
            if pool is not None:
                for file in pool.files.values():
                    self.register_file(file)
                # The pool's warm host space is what keeps library pages
                # resident; without it the frames-file sum comes up short.
                self.register_space(pool._host)
        for record in list(self._spaces.values()):
            if record.space.closed:
                continue
            for mapping in record.space.mappings():
                if mapping.file is not None:
                    self.register_file(mapping.file)
        for instance in self._instances.values():
            if instance.state is InstanceState.FROZEN:
                if instance.id not in self._frozen:
                    self._note_frozen(instance)
            else:
                self._frozen.pop(instance.id, None)

    @staticmethod
    def _file_on(file: MappedFile, spaces) -> bool:
        """Whether a file's cache frames live on these spaces' physical.

        Files are attributed through the mappings that reference them;
        a file no mapping references anymore must be empty (checked by
        ``frames-file`` summing to the physical counter)."""
        for space in spaces:
            if space.closed:
                continue
            for mapping in space.mappings():
                if mapping.file is file:
                    return True
        return not file.resident_pages()

    # ------------------------------------------------------- stateful laws

    def _check_swap_parity(self, physical: PhysicalMemory) -> None:
        majors = 0
        for record in self._spaces.values():
            if record.space.physical is physical:
                majors += record.space.faults.major - record.major_baseline
        swap_ins = (
            physical.swap.total_swap_ins - self._swap_in_baselines[id(physical)]
        )
        if majors != swap_ins:
            _violate(
                "swap-major-parity",
                "physical",
                f"{swap_ins} swap-ins since attach but {majors} major faults "
                "(a swap-leaving page must pay a major fault or be discarded)",
            )

    def _check_frozen_quiescence(self) -> None:
        for instance_id, record in self._frozen.items():
            instance = self._instances.get(instance_id)
            if instance is None or instance.state is not InstanceState.FROZEN:
                continue
            if instance.reclaim_count != record.reclaim_count:
                # Reclaim runs inside the frozen instance by design (§4.1)
                # and may fault; re-baseline at the new count.
                self._note_frozen(instance)
                continue
            if len(instance.transitions) != record.transition_count:
                # The instance thawed and re-froze entirely between two
                # sweeps (possible under sparse checking): faults from the
                # thawed window are the mutator's, not the frozen period's.
                self._note_frozen(instance)
                continue
            faults = instance.runtime.space.faults.total
            if faults != record.faults_total:
                _violate(
                    "frozen-no-fault",
                    f"instance {instance.id} ({instance.spec.name})",
                    f"faulted while frozen ({record.faults_total} -> {faults}) "
                    "without a reclaim",
                )

    def _check_reclaim_accounting(self, final: bool = False) -> None:
        published = self._released_event_bytes
        counted = 0
        any_manager = False
        for platform in self._platforms:
            manager = platform.manager
            if not hasattr(manager, "total_released_bytes"):
                continue
            any_manager = True
            counted += (
                manager.total_released_bytes
                - self._released_baselines.get(id(manager), 0)
            )
        # Mid-run the counters legitimately lead the events: reclaim-done
        # is published re-entrantly from inside a step dispatch, so the
        # sweep (also a step handler) runs before the bus delivers it.
        # Over-publication is always a bug; equality is required only at
        # quiescence (finish()).
        if any_manager and (published > counted or (final and published != counted)):
            _violate(
                "reclaim-published",
                "manager",
                f"reclaim-done events sum to {published} released bytes, "
                f"manager counters moved {counted}",
            )
        for instance in self._instances.values():
            outcome = instance.last_reclaim
            if outcome is None:
                continue
            label = f"instance {instance.id} ({instance.spec.name})"
            if outcome.released_bytes < 0:
                _violate(
                    "reclaim-released",
                    label,
                    f"negative released_bytes {outcome.released_bytes}",
                )
            # Growth is legal when the heap was paged out before the
            # reclaim (snapshot/swap: uss_before < live bytes) -- the GC
            # must fault live data back in to run.  A resident heap
            # (uss_before >= live bytes) may only grow by what the GC's
            # evacuation materialized (survivors promoted into fresh
            # old-space pages, including unreleasable chunk headers; the
            # vacated young pages are released separately).  Anything
            # beyond that tolerance is a leak.
            evacuated = getattr(outcome, "evacuated_bytes", 0)
            if (
                outcome.uss_after > outcome.uss_before + evacuated
                and outcome.uss_before >= outcome.live_bytes
            ):
                _violate(
                    "reclaim-uss",
                    label,
                    f"reclaim grew USS {outcome.uss_before} -> {outcome.uss_after} "
                    f"(evacuation accounts for {evacuated}) "
                    f"with live bytes {outcome.live_bytes} resident",
                )
            if outcome.released_bytes < outcome.uss_before - outcome.uss_after:
                _violate(
                    "reclaim-conservation",
                    label,
                    f"released_bytes {outcome.released_bytes} < USS drop "
                    f"{outcome.uss_before - outcome.uss_after}",
                )


def maybe_attach_oracle(platform) -> Optional[InvariantOracle]:
    """Attach an oracle to ``platform`` when ``REPRO_CHECK`` asks for it.

    ``REPRO_CHECK`` unset/""/"0" disables; anything else enables.
    ``REPRO_CHECK_CADENCE`` (default ``step``) and ``REPRO_CHECK_EVERY``
    (default 1) tune the sweep rate.
    """
    flag = os.environ.get("REPRO_CHECK", "")
    if flag in ("", "0"):
        return None
    config = OracleConfig(
        cadence=os.environ.get("REPRO_CHECK_CADENCE", "step"),
        every=int(os.environ.get("REPRO_CHECK_EVERY", "1")),
    )
    oracle = InvariantOracle(config)
    oracle.attach_platform(platform)
    return oracle
