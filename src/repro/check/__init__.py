"""repro.check: the invariant-oracle layer and the simulation fuzzer.

The simulator's conclusions (Figures 1/2/4, Desiccant's reclaimed-bytes
accounting) rest on conservation laws the core layers must never violate:
run-list well-formedness, global frame counts, smaps RSS/PSS/USS
consistency, heap live-vs-committed bounds, instance state-machine
legality, and major-fault/swap-in parity.  This package turns those laws
into machine-checked invariants:

* ``invariants`` -- pure check functions over one object each (a
  :class:`~repro.mem.runlist.RunList`, a mapping, an address space, a
  :class:`~repro.mem.physical.PhysicalMemory` with its spaces, a runtime,
  an instance, a platform).  Each raises :class:`Violation` with a stable
  invariant name.
* ``oracle``     -- :class:`InvariantOracle`, which registers the live
  objects of a simulation, subscribes to the :mod:`repro.sim` event bus
  (or the kernel's probe hook), and re-checks everything at a
  configurable cadence.  ``REPRO_CHECK=1`` wires an oracle into every
  :class:`~repro.faas.platform.FaasPlatform` automatically, which is how
  the tier-1 end-to-end tests exercise it continuously.
* ``fuzz``       -- the deterministic fuzz harness behind ``repro fuzz``:
  seeded randomized mmap/touch/GC/freeze/reclaim/evict/replay schedules,
  executed with the oracle enabled, shrunk to a minimal op sequence on
  violation, and written as a replayable ``.jsonl`` case file.
* ``shrink``     -- the ddmin-style sequence shrinker ``fuzz`` uses.

See ``docs/TESTING.md`` for the workflow (including how to add a new
invariant).
"""

from repro.check.invariants import (
    Violation,
    check_archive_writer,
    check_checkpoint,
    check_digest_composition,
    check_file,
    check_shard_conservation,
    check_instance,
    check_mapping,
    check_segment_manifest,
    check_physical,
    check_platform,
    check_runlist,
    check_runtime,
    check_smaps,
    check_space,
    check_trace_archive,
)
from repro.check.oracle import InvariantOracle, OracleConfig, maybe_attach_oracle

__all__ = [
    "InvariantOracle",
    "OracleConfig",
    "Violation",
    "check_archive_writer",
    "check_checkpoint",
    "check_digest_composition",
    "check_file",
    "check_instance",
    "check_mapping",
    "check_physical",
    "check_platform",
    "check_runlist",
    "check_runtime",
    "check_segment_manifest",
    "check_shard_conservation",
    "check_smaps",
    "check_space",
    "check_trace_archive",
    "maybe_attach_oracle",
]
