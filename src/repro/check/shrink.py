"""ddmin-style sequence shrinking for fuzzer counterexamples.

Classic delta debugging (Zeller & Hildebrandt): given a failing op
sequence and a predicate that re-runs a candidate subsequence and says
"still fails the same way", find a small subsequence that still fails.
The result is 1-minimal: removing any single remaining op makes the
failure disappear, which is what turns a 2000-op fuzz schedule into a
readable repro case.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")

Predicate = Callable[[List[T]], bool]


def ddmin(items: Sequence[T], fails: Predicate, max_runs: int = 2000) -> List[T]:
    """Minimize ``items`` such that ``fails(result)`` still holds.

    ``fails`` must be True for the full sequence; the return value is the
    smallest subsequence found within ``max_runs`` predicate evaluations
    (each evaluation re-executes the candidate, so this bounds shrink
    cost on huge schedules).
    """
    current = list(items)
    runs = 0
    granularity = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and runs < max_runs:
            candidate = current[:start] + current[start + chunk:]
            runs += 1
            if candidate and fails(candidate):
                current = candidate
                # Keep the same absolute chunk size but re-derive the
                # granularity for the smaller sequence.
                granularity = max(2, len(current) // chunk)
                reduced = True
                # Re-test from the same offset: the next chunk slid into
                # this position.
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def shrink_ops(ops: Sequence[T], fails: Predicate, max_runs: int = 2000) -> List[T]:
    """Shrink a failing op schedule to a 1-minimal repro.

    A final one-by-one sweep runs after :func:`ddmin` (within the same
    ``max_runs`` budget) so the result is 1-minimal even when ddmin
    stopped at a coarse granularity.
    """
    current = ddmin(ops, fails, max_runs=max_runs)
    runs = 0
    changed = True
    while changed and runs < max_runs:
        changed = False
        for i in range(len(current) - 1, -1, -1):
            if len(current) == 1:
                break
            candidate = current[:i] + current[i + 1:]
            runs += 1
            if fails(candidate):
                current = candidate
                changed = True
            if runs >= max_runs:
                break
    return current
