"""Cross-layer conservation laws as pure check functions.

Every function inspects one live object (plus whatever it aggregates
over) and raises :class:`Violation` on the first broken law.  They are
deliberately *redundant* recomputations: where the production code keeps
an incremental counter, the check recounts from the ground truth (the
run lists) and compares -- that is what catches drift.

Invariant names are stable strings (``runlist-sorted``,
``frames-anon``, ...) so the fuzzer can shrink against "the same
invariant still fails" and regression tests can pin one.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faas.instance import FunctionInstance, InstanceState
from repro.mem.layout import PAGE_SIZE
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.runlist import RunList
from repro.mem.vmm import Mapping, PageState, VirtualAddressSpace


class Violation(AssertionError):
    """One broken invariant.

    ``invariant`` is the stable law name; ``subject`` says which object
    broke it; ``detail`` carries the numbers.
    """

    def __init__(self, invariant: str, subject: str, detail: str) -> None:
        self.invariant = invariant
        self.subject = subject
        self.detail = detail
        super().__init__(f"[{invariant}] {subject}: {detail}")


def _violate(invariant: str, subject: str, detail: str) -> None:
    raise Violation(invariant, subject, detail)


# --------------------------------------------------------------- run lists


def check_runlist(
    runs: RunList, subject: str, lo: int = 0, hi: Optional[int] = None
) -> None:
    """Sorted, positive-length, disjoint, coalesced, inside ``[lo, hi)``."""
    starts, ends, values = runs.starts, runs.ends, runs.values
    if not (len(starts) == len(ends) == len(values)):
        _violate(
            "runlist-shape",
            subject,
            f"parallel lists out of sync: {len(starts)}/{len(ends)}/{len(values)}",
        )
    prev_end = None
    prev_value = None
    for i, (s, e, v) in enumerate(zip(starts, ends, values)):
        if e <= s:
            _violate("runlist-length", subject, f"run {i} [{s},{e}) is empty")
        if s < lo or (hi is not None and e > hi):
            _violate(
                "runlist-bounds",
                subject,
                f"run {i} [{s},{e}) escapes window [{lo},{hi})",
            )
        if prev_end is not None:
            if s < prev_end:
                _violate(
                    "runlist-sorted",
                    subject,
                    f"run {i} starts at {s} before previous end {prev_end}",
                )
            if s == prev_end and v == prev_value:
                _violate(
                    "runlist-coalesced",
                    subject,
                    f"runs {i - 1} and {i} touch at {s} with equal value {v!r}",
                )
        prev_end, prev_value = e, v


# ---------------------------------------------------------------- mappings


def check_mapping(mapping: Mapping, subject: Optional[str] = None) -> None:
    """Run-list well-formedness plus residency counters == run sums."""
    subject = subject or f"mapping {mapping.name}@{mapping.start:#x}"
    check_runlist(mapping._runs, subject, 0, mapping.num_pages)
    counted = {PageState.ANON_DIRTY: 0, PageState.FILE_CLEAN: 0, PageState.SWAPPED: 0}
    for s, e, state in mapping._runs.iter_runs(0, mapping.num_pages):
        if state is PageState.NOT_PRESENT:
            _violate(
                "mapping-not-present-run",
                subject,
                f"explicit NOT_PRESENT run [{s},{e}) (gaps must be gaps)",
            )
        counted[state] += e - s
    expected = {
        PageState.ANON_DIRTY: mapping.n_anon,
        PageState.FILE_CLEAN: mapping.n_file,
        PageState.SWAPPED: mapping.n_swapped,
    }
    for state, have in counted.items():
        if have != expected[state]:
            _violate(
                "mapping-counters",
                subject,
                f"{state.name}: counter says {expected[state]}, runs sum to {have}",
            )
    if mapping.n_file and mapping.file is None:
        _violate("mapping-fileless", subject, f"n_file={mapping.n_file} with no file")


def check_space(space: VirtualAddressSpace, subject: Optional[str] = None) -> None:
    """Mapping index consistency, disjointness, and per-mapping checks."""
    subject = subject or f"space {space.name}"
    if space.closed:
        if space._mappings:
            _violate(
                "space-closed", subject, f"{len(space._mappings)} mappings after close"
            )
        return
    if sorted(space._starts) != space._starts:
        _violate("space-starts-sorted", subject, f"starts unsorted: {space._starts}")
    if sorted(space._mappings) != space._starts:
        _violate(
            "space-starts-index",
            subject,
            "mapping dict keys and sorted starts disagree",
        )
    prev_end = None
    for mapping in space.mappings():
        if prev_end is not None and mapping.start < prev_end:
            _violate(
                "space-disjoint",
                subject,
                f"mapping at {mapping.start:#x} overlaps previous end {prev_end:#x}",
            )
        prev_end = mapping.end
        check_mapping(mapping, f"{subject}/{mapping.name}@{mapping.start:#x}")


# ------------------------------------------------------------ the page cache


def check_file(file: MappedFile, subject: Optional[str] = None) -> None:
    """Sharer-set run list well-formedness and exact PSS conservation.

    Recomputes per-mapping solo counts and proportional shares from the
    holder runs (with :class:`~fractions.Fraction`, so equality is exact)
    and compares against the incrementally-maintained aggregates.  The
    capstone law: the shares of all mappings sum to exactly the resident
    page count -- each cached page is accounted once, split among its
    sharers.
    """
    subject = subject or f"file {file.path}"
    check_runlist(file._holders, subject, 0, file.num_pages)
    resident = 0
    solo: Dict[int, int] = {}
    pss: Dict[int, Fraction] = {}
    for s, e, holders in file._holders.iter_runs(0, file.num_pages):
        n = e - s
        if not holders:
            _violate("file-empty-holders", subject, f"run [{s},{e}) has no holders")
        resident += n
        share = Fraction(n, len(holders))
        for holder in holders:
            pss[holder] = pss.get(holder, Fraction(0)) + share
            if len(holders) == 1:
                solo[holder] = solo.get(holder, 0) + n
    if resident != file._resident:
        _violate(
            "file-resident",
            subject,
            f"resident counter {file._resident} != holder runs {resident}",
        )
    for holder, n in solo.items():
        if file._solo.get(holder, 0) != n:
            _violate(
                "file-solo",
                subject,
                f"mapping {holder}: solo counter {file._solo.get(holder, 0)} != {n}",
            )
    for holder, kept in file._solo.items():
        if kept != solo.get(holder, 0):
            _violate(
                "file-solo",
                subject,
                f"mapping {holder}: solo counter {kept} != {solo.get(holder, 0)}",
            )
    for holder, share in file._pss.items():
        if share != pss.get(holder, Fraction(0)):
            _violate(
                "file-pss",
                subject,
                f"mapping {holder}: share {share} != recomputed "
                f"{pss.get(holder, Fraction(0))}",
            )
    total_share = sum(pss.values(), Fraction(0))
    if total_share != resident:
        _violate(
            "file-pss-sum",
            subject,
            f"shares sum to {total_share}, resident pages {resident}",
        )


# ------------------------------------------------------- physical conservation


def check_physical(
    physical: PhysicalMemory,
    spaces: Iterable[VirtualAddressSpace],
    files: Iterable[MappedFile] = (),
    subject: str = "physical",
) -> None:
    """Global frame counts == sums over every space/file on this machine.

    ``spaces`` must be *all* open address spaces allocated against
    ``physical`` and ``files`` all mapped files whose cache frames it
    holds; the caller (the oracle) owns that bookkeeping.
    """
    if physical._anon_frames < 0 or physical._file_frames < 0:
        _violate(
            "frames-negative",
            subject,
            f"anon={physical._anon_frames} file={physical._file_frames}",
        )
    swap = physical.swap
    if swap.pages < 0:
        _violate("swap-negative", subject, f"swap pages {swap.pages}")
    anon = file_pages = swapped = 0
    for space in spaces:
        if space.closed:
            continue
        for mapping in space.mappings():
            anon += mapping.n_anon
            file_pages += mapping.n_file
            swapped += mapping.n_swapped
    if anon != physical._anon_frames:
        _violate(
            "frames-anon",
            subject,
            f"anon frames {physical._anon_frames} != mapped sum {anon}",
        )
    if swapped != swap.pages:
        _violate(
            "swap-pages",
            subject,
            f"swap device holds {swap.pages} pages, mappings say {swapped}",
        )
    resident = 0
    seen = set()
    for file in files:
        if id(file) in seen:
            continue
        seen.add(id(file))
        resident += file.resident_pages()
    if resident != physical._file_frames:
        _violate(
            "frames-file",
            subject,
            f"file frames {physical._file_frames} != cache sum {resident}",
        )
    balance = swap.total_swap_outs - swap.total_swap_ins - swap.total_discards
    if balance != swap.pages:
        _violate(
            "swap-flow",
            subject,
            f"outs {swap.total_swap_outs} - ins {swap.total_swap_ins} "
            f"- discards {swap.total_discards} != pages {swap.pages}",
        )
    if physical.capacity_bytes is not None and physical.used_bytes > physical.capacity_bytes:
        _violate(
            "frames-capacity",
            subject,
            f"used {physical.used_bytes} > capacity {physical.capacity_bytes}",
        )


# ------------------------------------------------------------------- smaps


def check_smaps(space: VirtualAddressSpace, subject: Optional[str] = None) -> None:
    """RSS/PSS/USS consistency of the accounting layer, per mapping.

    For every mapping: the four smaps buckets recompute exactly from the
    run lists, ``USS <= PSS <= RSS`` (PSS compared as an exact Fraction,
    the float only rendered at the edge), and a mapping with no file has
    ``PSS == RSS``.
    """
    from repro.mem.accounting import measure_mapping  # local: avoid cycle

    subject = subject or f"space {space.name}"
    if space.closed:
        return
    for mapping in space.mappings():
        label = f"{subject}/{mapping.name}@{mapping.start:#x}"
        report = measure_mapping(mapping)
        if report.private_dirty != mapping.n_anon * PAGE_SIZE:
            _violate(
                "smaps-private-dirty",
                label,
                f"{report.private_dirty} != {mapping.n_anon * PAGE_SIZE}",
            )
        if report.swap != mapping.n_swapped * PAGE_SIZE:
            _violate(
                "smaps-swap",
                label,
                f"{report.swap} != {mapping.n_swapped * PAGE_SIZE}",
            )
        clean = report.private_clean + report.shared_clean
        if clean != mapping.n_file * PAGE_SIZE:
            _violate(
                "smaps-file-clean",
                label,
                f"clean {clean} != n_file {mapping.n_file * PAGE_SIZE}",
            )
        if report.rss != (mapping.n_anon + mapping.n_file) * PAGE_SIZE:
            _violate(
                "smaps-rss",
                label,
                f"rss {report.rss} != resident "
                f"{(mapping.n_anon + mapping.n_file) * PAGE_SIZE}",
            )
        pss = Fraction(mapping.n_anon)
        if mapping.file is not None:
            pss += mapping.file._pss.get(mapping.id, Fraction(0))
        pss_bytes = pss * PAGE_SIZE
        if abs(report.pss - float(pss_bytes)) > 1e-6 * max(1.0, float(pss_bytes)):
            _violate(
                "smaps-pss",
                label,
                f"pss {report.pss} != exact {float(pss_bytes)}",
            )
        if not report.uss <= pss_bytes <= report.rss:
            _violate(
                "smaps-uss-pss-rss",
                label,
                f"uss {report.uss} <= pss {float(pss_bytes)} <= rss {report.rss} "
                "does not hold",
            )
        if mapping.file is None and pss_bytes != report.rss:
            _violate(
                "smaps-anon-pss",
                label,
                f"anonymous mapping pss {float(pss_bytes)} != rss {report.rss}",
            )


# ----------------------------------------------------------------- runtimes


def check_runtime(runtime, subject: Optional[str] = None) -> None:
    """Heap conservation: ``used <= committed`` and live estimate bounded.

    ``live_estimate`` is the last GC's live bytes; between collections the
    heap may hold more garbage than that but never *less* committed space
    than the estimate -- a reclaim that released live data would surface
    here.
    """
    subject = subject or f"runtime {runtime.name}"
    if not runtime.booted or runtime.space.closed:
        return
    stats = runtime.heap_stats()
    if stats.committed < 0 or stats.used < 0 or stats.live_estimate < 0:
        _violate(
            "heap-negative",
            subject,
            f"committed={stats.committed} used={stats.used} "
            f"live={stats.live_estimate}",
        )
    if stats.used > stats.committed:
        _violate(
            "heap-used-le-committed",
            subject,
            f"used {stats.used} > committed {stats.committed}",
        )
    if stats.live_estimate > stats.committed:
        _violate(
            "heap-live-le-committed",
            subject,
            f"live estimate {stats.live_estimate} > committed {stats.committed}",
        )
    if runtime.total_gc_seconds < 0:
        _violate("gc-seconds", subject, f"negative GC time {runtime.total_gc_seconds}")


# ---------------------------------------------------------------- instances

#: Legal (from, to) state transitions; boot appends the initial IDLE.
_LEGAL_TRANSITIONS = {
    (InstanceState.IDLE, InstanceState.FROZEN),
    (InstanceState.FROZEN, InstanceState.IDLE),
    (InstanceState.IDLE, InstanceState.DEAD),
    (InstanceState.FROZEN, InstanceState.DEAD),
}


def check_instance(instance: FunctionInstance, subject: Optional[str] = None) -> None:
    """State-machine legality and freeze bookkeeping."""
    subject = subject or f"instance {instance.id} ({instance.spec.name})"
    state = instance.state
    if state is InstanceState.FROZEN and instance.frozen_since is None:
        _violate("instance-frozen-since", subject, "FROZEN without frozen_since")
    if state is not InstanceState.FROZEN and instance.frozen_since is not None:
        _violate(
            "instance-frozen-since",
            subject,
            f"{state.value} with frozen_since={instance.frozen_since}",
        )
    if state is InstanceState.DEAD and not instance.runtime.space.closed:
        _violate("instance-dead-space", subject, "DEAD with an open address space")
    if state is not InstanceState.DEAD and instance.runtime.space.closed:
        _violate(
            "instance-closed-space", subject, f"{state.value} with a closed space"
        )
    log = instance.transitions
    for i in range(1, len(log)):
        prev, cur = log[i - 1][1], log[i][1]
        if (prev, cur) not in _LEGAL_TRANSITIONS:
            _violate(
                "instance-transition",
                subject,
                f"illegal transition {prev.value} -> {cur.value} at index {i}",
            )
        if log[i][0] < log[i - 1][0]:
            _violate(
                "instance-transition-time",
                subject,
                f"transition {i} goes back in time ({log[i - 1][0]} -> {log[i][0]})",
            )


# ----------------------------------------------------------------- platform


def check_platform(platform, subject: Optional[str] = None) -> None:
    """Cache/cgroup bookkeeping: capacity respected (or the overcommit
    explicitly counted), concurrency within bounds, no dead instances in
    the pools, CPU charges non-negative."""
    subject = subject or f"platform node {platform.node_id}"
    used = platform.used_bytes()
    if used > platform.capacity_bytes and platform.overcommits == 0:
        _violate(
            "cgroup-capacity",
            subject,
            f"used {used} > capacity {platform.capacity_bytes} "
            "with no overcommit recorded",
        )
    if not 0 <= platform._running <= platform.max_concurrency:
        _violate(
            "platform-concurrency",
            subject,
            f"running {platform._running} outside [0, {platform.max_concurrency}]",
        )
    for name, pool in platform._instances.items():
        for instance in pool:
            if instance.state is InstanceState.DEAD:
                _violate(
                    "platform-dead-pooled",
                    subject,
                    f"dead instance {instance.id} still pooled under {name!r}",
                )
    for category, seconds in platform.cpu.busy.items():
        if seconds < 0:
            _violate(
                "cgroup-cpu",
                subject,
                f"negative busy time {seconds} in category {category!r}",
            )
    # Aggregate parity: recompute the platform's totals from the address
    # spaces directly, bypassing every cache layer (the runtime USS caches
    # and the platform's incremental totals), so drift anywhere in the
    # fast-path stack surfaces here.  Skipped for reduced platform stubs
    # (unit tests drive this checker with partial doubles).
    if not hasattr(platform, "all_instances"):
        return
    from repro.mem.accounting import measure

    true_used = 0
    true_frozen = 0
    true_frozen_ids = set()
    for instance in platform.all_instances():
        uss = measure(instance.runtime.space).uss
        true_used += uss
        if instance.state is InstanceState.FROZEN:
            true_frozen += uss
            true_frozen_ids.add(instance.id)
    if true_used != platform.used_bytes():
        _violate(
            "platform-used-aggregate",
            subject,
            f"used_bytes() = {platform.used_bytes()} but ground truth "
            f"is {true_used}",
        )
    if true_frozen != platform.frozen_bytes():
        _violate(
            "platform-frozen-aggregate",
            subject,
            f"frozen_bytes() = {platform.frozen_bytes()} but ground truth "
            f"is {true_frozen}",
        )
    listed_ids = {i.id for i in platform.frozen_instances()}
    if listed_ids != true_frozen_ids:
        _violate(
            "platform-frozen-membership",
            subject,
            f"frozen_instances() ids {sorted(listed_ids)} != "
            f"state-derived {sorted(true_frozen_ids)}",
        )


# ------------------------------------------------------ cross-shard sweeps


def check_shard_conservation(
    reports: Iterable[dict], horizon: Optional[float] = None
) -> None:
    """Cross-shard conservation sweep at an epoch barrier.

    ``reports`` are the per-shard epoch reports of a sharded cluster run
    (:mod:`repro.sim.shard`): plain dicts so the coordinator can check
    workers' claims without holding any live objects.  Each must carry a
    ``conservation`` dict (summed over the shard's physical memories)
    with ``swap_pages``, ``swap_outs``, ``swap_ins``, ``swap_discards``,
    ``frames_used_bytes`` and a ``clock``.  Laws:

    * **shard-swap-flow** -- globally, pages that ever left DRAM either
      came back, were discarded, or still sit in swap:
      ``sum(outs) - sum(ins) - sum(discards) == sum(pages)``.  Each
      worker's physicals satisfy this locally (the per-physical oracle
      law); the global re-check catches aggregation and transport bugs.
    * **shard-frame-nonneg** -- no shard reports negative resident bytes
      or swap counters.
    * **shard-clock-horizon** -- a conservative epoch never runs past
      its horizon: every shard's clock must be ``<= horizon`` (within
      an exact comparison; the kernel dispatches events *at* the
      horizon, never beyond it).
    """
    outs = ins = discards = pages = 0
    for report in reports:
        shard = f"shard {report.get('shard', '?')}"
        conservation = report["conservation"]
        for key in (
            "frames_used_bytes",
            "swap_pages",
            "swap_outs",
            "swap_ins",
            "swap_discards",
        ):
            if conservation[key] < 0:
                _violate(
                    "shard-frame-nonneg",
                    shard,
                    f"{key} = {conservation[key]} is negative",
                )
        outs += conservation["swap_outs"]
        ins += conservation["swap_ins"]
        discards += conservation["swap_discards"]
        pages += conservation["swap_pages"]
        clock = report.get("clock")
        if horizon is not None and clock is not None and clock > horizon:
            _violate(
                "shard-clock-horizon",
                shard,
                f"clock {clock} ran past the epoch horizon {horizon}",
            )
    if outs - ins - discards != pages:
        _violate(
            "shard-swap-flow",
            "cluster",
            f"global swap flow broken: {outs} outs - {ins} ins - "
            f"{discards} discards != {pages} pages resident in swap",
        )


# ------------------------------------------------------------- checkpoints


def check_checkpoint(path) -> dict:
    """Verify a checkpoint file end to end; return its header.

    Delegates to :func:`repro.sim.checkpoint.check_checkpoint` (lazy
    import: the checkpoint module imports :class:`Violation` from here).
    Raises :class:`~repro.sim.checkpoint.CheckpointError` -- a
    :class:`Violation` -- named ``checkpoint-magic``,
    ``checkpoint-schema``, ``checkpoint-truncated`` or
    ``checkpoint-digest`` on the first problem found.
    """
    from repro.sim import checkpoint

    return checkpoint.check_checkpoint(path)


# ---------------------------------------------------------------- archive


def check_archive_writer(writer) -> None:
    """Writer-side half of the digest-composition invariant.

    Swept at every epoch barrier of an archiving sharded run
    (:class:`~repro.faas.cluster.ClusterShardHost.epoch_report`): the
    live :class:`~repro.trace.archive.ArchiveWriter` must agree with its
    own bookkeeping -- open segments non-empty, time ranges inside the
    bucket the filename addresses, closed-plus-open event counts summing
    to the writer's global count.  Cheap (no I/O), so it runs whenever
    the platform oracle is enabled.

    * **archive-writer** -- any :meth:`ArchiveWriter.self_check` problem.
    """
    problems = writer.self_check()
    if problems:
        _violate(
            "archive-writer",
            f"archive {writer.root}",
            "; ".join(problems),
        )


def check_trace_archive(root, against_sha256: Optional[str] = None) -> None:
    """Full archive integrity sweep (reads every segment).

    * **archive-verify** -- a segment footer lies (digest, count, time
      range, addressing), or the composed digest disagrees with the
      manifest or with ``against_sha256`` (the flat-file twin's digest).
    """
    from repro.trace.archive import ArchiveReader

    problems = ArchiveReader(root).verify(against_sha256=against_sha256)
    if problems:
        _violate("archive-verify", f"archive {root}", "; ".join(problems))


def check_segment_manifest(
    footers: Iterable[dict], composed_events: Optional[int] = None
) -> None:
    """Validate a worker-shipped segment manifest before trusting it.

    Under the out-of-pipe trace protocol shard workers write archive
    segments directly into the shared root and ship only per-segment
    footers (name, event count, payload sha256, time range); the
    coordinator finalizes the archive from these claims.  This sweep
    checks the claims are even self-consistent:

    * **segment-manifest** -- duplicate ``(bucket, node)`` cells (two
      writers claimed the same segment: the partitioning broke),
      non-positive event counts or negative payload sizes, a time range
      outside the bucket the segment name addresses, an inverted time
      range, or -- with ``composed_events`` given -- footers whose event
      counts do not sum to what the composed archive actually streamed.
    """
    from repro.trace.archive import bucket_of, parse_segment_name

    problems = []
    seen = set()
    total = 0
    for footer in footers:
        name = str(footer.get("name", "?"))
        cell = (footer["bucket"], footer["node"])
        if cell in seen:
            problems.append(f"{name}: duplicate segment for (bucket, node) {cell}")
        seen.add(cell)
        if footer["events"] <= 0:
            problems.append(f"{name}: claims {footer['events']} events")
        if footer.get("payload_bytes", 0) < 0:
            problems.append(f"{name}: negative payload_bytes")
        total += footer["events"]
        parsed = parse_segment_name(name)
        if parsed is not None and parsed[:2] != cell:
            problems.append(f"{name}: footer addresses {cell}")
        t_min, t_max = footer.get("t_min"), footer.get("t_max")
        if t_min is not None and t_max is not None:
            if t_min > t_max:
                problems.append(f"{name}: t_min {t_min} > t_max {t_max}")
            width = float(footer["bucket_seconds"])
            for bound in (t_min, t_max):
                if bucket_of(bound, width) != footer["bucket"]:
                    problems.append(
                        f"{name}: t={bound} outside bucket {footer['bucket']} "
                        f"(width {width})"
                    )
    if composed_events is not None and total != composed_events:
        problems.append(
            f"footers claim {total} events but the archive composed "
            f"{composed_events}"
        )
    if problems:
        _violate("segment-manifest", "trace archive", "; ".join(problems))


def check_digest_composition(
    flat_events: int,
    flat_sha256: str,
    archive_events: int,
    archive_sha256: str,
) -> None:
    """The composition rule itself: the archive's composed per-segment
    digest must equal the flat whole-run witness, event for event.

    * **archive-digest-composition** -- counts or digests diverge
      between the flat JSONL merge and the composed archive.
    """
    if flat_events != archive_events:
        _violate(
            "archive-digest-composition",
            "trace",
            f"flat merge saw {flat_events} events but the archive "
            f"composed {archive_events}",
        )
    if flat_sha256 != archive_sha256:
        _violate(
            "archive-digest-composition",
            "trace",
            f"flat sha256 {flat_sha256[:12]} != composed archive "
            f"sha256 {archive_sha256[:12]}",
        )
