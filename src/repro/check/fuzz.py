"""Deterministic simulation fuzzer: randomized schedules under the oracle.

``repro fuzz --seed N --ops M`` generates a schedule of M concrete
operations -- VMM ops (mmap / touch / swap-out / discard / uncommit /
munmap, anonymous and file-backed) interleaved with instance lifecycle
ops (boot / invoke / freeze / thaw / reclaim / snapshot / evict / GC) --
from a :class:`~repro.sim.rng.RngStream`, then executes them against a
fresh world with an :class:`~repro.check.InvariantOracle` sweeping every
``--check-every`` ops.

Every op is a plain JSON dict whose references are *indices* (region k =
the k-th mmap op, slot k = the k-th boot op), so a schedule replays and
shrinks without any RNG: ops whose target does not exist (e.g. after the
shrinker removed its mmap) or whose precondition fails are skipped, which
keeps every subsequence of a schedule executable.  On a violation the
harness truncates to the failing prefix, shrinks it with
:func:`repro.check.shrink.shrink_ops`, and writes a replayable ``.jsonl``
case file that ``repro fuzz --replay case.jsonl`` re-executes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.check.invariants import Violation
from repro.check.oracle import InvariantOracle, OracleConfig
from repro.check.shrink import shrink_ops
from repro.faas.instance import FunctionInstance, InstanceState
from repro.mem.layout import KIB, MIB, PAGE_SIZE, PROT_RW, PROT_RX
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import VirtualAddressSpace
from repro.sim.rng import RngStream
from repro.workloads.model import FunctionSpec

CASE_FORMAT = "repro-fuzz-case"
CASE_VERSION = 1

#: Tiny function specs (one per supported runtime) so lifecycle ops cost
#: microseconds, not the MiB-scale volumes of the Table 1 suite.
FUZZ_SPECS: Tuple[FunctionSpec, ...] = (
    FunctionSpec(
        name="fz-py", language="python", description="fuzz python",
        base_exec_seconds=0.004, ephemeral_bytes=192 * KIB,
        frame_bytes=96 * KIB, persistent_bytes=64 * KIB,
        init_ephemeral_bytes=64 * KIB, object_size=16 * KIB,
        code_size=64 * KIB, warm_units=2,
    ),
    FunctionSpec(
        name="fz-js", language="javascript", description="fuzz js",
        base_exec_seconds=0.004, ephemeral_bytes=256 * KIB,
        frame_bytes=64 * KIB, persistent_bytes=96 * KIB,
        object_size=16 * KIB, code_size=96 * KIB, warm_units=3,
    ),
    FunctionSpec(
        name="fz-java", language="java", description="fuzz java",
        base_exec_seconds=0.005, ephemeral_bytes=384 * KIB,
        frame_bytes=128 * KIB, persistent_bytes=128 * KIB,
        init_ephemeral_bytes=128 * KIB, object_size=32 * KIB,
        code_size=128 * KIB, warm_units=3,
    ),
    FunctionSpec(
        name="fz-go", language="go", description="fuzz go",
        base_exec_seconds=0.004, ephemeral_bytes=192 * KIB,
        frame_bytes=96 * KIB, persistent_bytes=64 * KIB,
        object_size=16 * KIB, code_size=64 * KIB, warm_units=2,
    ),
)

_INSTANCE_BUDGET = 32 * MIB

#: (op name, weight).  Generation picks by weight; execution skips ops
#: whose target is gone or whose precondition fails.
_OP_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("mmap", 8),
    ("mmap_file", 4),
    ("touch", 26),
    ("swap_out", 8),
    ("discard", 6),
    ("uncommit", 3),
    ("munmap", 4),
    ("boot", 4),
    ("invoke", 10),
    ("alloc_cohort", 5),
    ("freeze", 6),
    ("thaw", 6),
    ("reclaim", 5),
    ("snapshot", 2),
    ("evict", 3),
    ("gc", 4),
)


# ------------------------------------------------------------- generation


def generate_ops(seed: int, n_ops: int) -> List[dict]:
    """The deterministic schedule for one seed: concrete JSON-able ops."""
    rng = RngStream(seed, "fuzz")
    names = [name for name, _ in _OP_WEIGHTS]
    weights = [weight for _, weight in _OP_WEIGHTS]
    ops: List[dict] = []
    region_pages: List[int] = []  # size of each region ever mmapped
    file_pages: List[int] = []  # size of each file ever created
    slots = 0  # instances ever booted
    for _ in range(n_ops):
        name = rng.choices(names, weights=weights, k=1)[0]
        op: Optional[dict] = None
        if name == "mmap":
            pages = rng.randint(1, 64) if rng.random() < 0.9 else rng.randint(65, 512)
            region_pages.append(pages)
            op = {"op": "mmap", "pages": pages}
        elif name == "mmap_file":
            if file_pages and rng.random() < 0.6:
                file_id = rng.randrange(len(file_pages))
                pages = rng.randint(1, file_pages[file_id])
            else:
                file_id = len(file_pages)
                pages = rng.randint(1, 128)
                file_pages.append(pages)
            region_pages.append(pages)
            op = {
                "op": "mmap_file",
                "file": file_id,
                "pages": pages,
                # COW-private half the time, read-only-execute otherwise.
                "writable": int(rng.random() < 0.5),
            }
        elif name in ("touch", "swap_out", "discard", "uncommit"):
            if not region_pages:
                continue
            region = rng.randrange(len(region_pages))
            pages = region_pages[region]
            lo = rng.randrange(pages)
            hi = rng.randint(lo + 1, pages)
            op = {"op": name, "region": region, "lo": lo, "hi": hi}
            if name == "touch":
                op["write"] = int(rng.random() < 0.7)
        elif name == "munmap":
            if not region_pages:
                continue
            op = {"op": "munmap", "region": rng.randrange(len(region_pages))}
        elif name == "boot":
            op = {
                "op": "boot",
                "spec": rng.randrange(len(FUZZ_SPECS)),
                "seed": rng.randrange(1 << 16),
            }
            slots += 1
        elif name == "alloc_cohort":
            if not slots:
                continue
            scope = ("ephemeral", "ephemeral", "persistent", "weak")[rng.randrange(4)]
            if scope == "ephemeral":
                count, unit = rng.randint(2, 32), rng.randint(1, 16) * KIB
            else:
                # Surviving scopes stay small: they accumulate across ops
                # against the 32 MiB instance budget.
                count, unit = rng.randint(2, 8), rng.randint(1, 8) * KIB
            op = {
                "op": "alloc_cohort",
                "slot": rng.randrange(slots),
                "count": count,
                "unit": unit,
                "scope": scope,
            }
        elif name in ("invoke", "freeze", "thaw", "snapshot", "evict"):
            if not slots:
                continue
            op = {"op": name, "slot": rng.randrange(slots)}
        elif name in ("reclaim", "gc"):
            if not slots:
                continue
            op = {
                "op": name,
                "slot": rng.randrange(slots),
                "aggressive": int(rng.random() < 0.3),
            }
        if op is not None:
            ops.append(op)
    return ops


# -------------------------------------------------------------- execution


@dataclass
class _Region:
    start: int
    pages: int
    alive: bool = True
    writable: bool = True
    file_id: Optional[int] = None
    #: Page intervals returned to PROT_NONE by uncommit; touches that
    #: intersect one are skipped (they would legitimately segfault).
    none_ranges: List[Tuple[int, int]] = field(default_factory=list)


class FuzzWorld:
    """The mutable world one schedule runs against.

    One unlimited :class:`PhysicalMemory` shared by a scratch address
    space (the VMM ops) and every booted instance (the lifecycle ops),
    with each created object registered with the oracle on the spot.
    """

    def __init__(self, oracle: InvariantOracle) -> None:
        self.oracle = oracle
        self.physical = PhysicalMemory()  # unlimited: ops never OOM mid-splice
        self.space = VirtualAddressSpace("[fuzz-scratch]", self.physical)
        self.regions: List[_Region] = []
        self.files: List[MappedFile] = []
        self.instances: List[FunctionInstance] = []
        self.clock = 0.0
        self.skipped = 0
        oracle.attach_world(spaces=[self.space], physical=self.physical)

    # Each op advances time a little so transition logs stay ordered.
    def tick(self) -> float:
        self.clock += 0.01
        return self.clock

    def apply(self, op: dict) -> None:
        handler = getattr(self, "_op_" + op["op"])
        handler(op)

    # ------------------------------------------------------------- VMM ops

    def _op_mmap(self, op: dict) -> None:
        mapping = self.space.mmap(op["pages"] * PAGE_SIZE, name="[fuzz-anon]")
        self.regions.append(_Region(mapping.start, op["pages"]))

    def _op_mmap_file(self, op: dict) -> None:
        file_id = op["file"]
        while file_id >= len(self.files):
            index = len(self.files)
            size = (op["pages"] if index == file_id else 1) * PAGE_SIZE
            file = MappedFile(f"/fuzz/lib{index}.so", size)
            self.files.append(file)
            self.oracle.register_file(file)
        file = self.files[file_id]
        pages = min(op["pages"], file.num_pages)
        writable = bool(op["writable"])
        mapping = self.space.mmap(
            pages * PAGE_SIZE,
            prot=PROT_RW if writable else PROT_RX,
            file=file,
            name=f"[fuzz-file{file_id}]",
        )
        self.regions.append(
            _Region(mapping.start, pages, writable=writable, file_id=file_id)
        )

    def _live_range(self, op: dict) -> Optional[Tuple[_Region, int, int]]:
        if op["region"] >= len(self.regions):
            return None
        region = self.regions[op["region"]]
        if not region.alive:
            return None
        lo, hi = min(op["lo"], region.pages - 1), min(op["hi"], region.pages)
        if hi <= lo:
            return None
        return region, lo, hi

    def _op_touch(self, op: dict) -> None:
        found = self._live_range(op)
        if found is None:
            return self._skip()
        region, lo, hi = found
        if any(lo < n_hi and n_lo < hi for n_lo, n_hi in region.none_ranges):
            return self._skip()
        write = bool(op["write"]) and region.writable
        self.space.touch(
            region.start + lo * PAGE_SIZE, (hi - lo) * PAGE_SIZE, write=write
        )

    def _op_swap_out(self, op: dict) -> None:
        found = self._live_range(op)
        if found is None:
            return self._skip()
        region, lo, hi = found
        self.space.swap_out_range(
            region.start + lo * PAGE_SIZE, (hi - lo) * PAGE_SIZE
        )

    def _op_discard(self, op: dict) -> None:
        found = self._live_range(op)
        if found is None:
            return self._skip()
        region, lo, hi = found
        self.space.discard(region.start + lo * PAGE_SIZE, (hi - lo) * PAGE_SIZE)

    def _op_uncommit(self, op: dict) -> None:
        found = self._live_range(op)
        if found is None:
            return self._skip()
        region, lo, hi = found
        self.space.uncommit(region.start + lo * PAGE_SIZE, (hi - lo) * PAGE_SIZE)
        region.none_ranges.append((lo, hi))

    def _op_munmap(self, op: dict) -> None:
        if op["region"] >= len(self.regions):
            return self._skip()
        region = self.regions[op["region"]]
        if not region.alive:
            return self._skip()
        self.space.munmap(region.start, region.pages * PAGE_SIZE)
        region.alive = False

    # ------------------------------------------------------- lifecycle ops

    def _op_boot(self, op: dict) -> None:
        instance = FunctionInstance(
            FUZZ_SPECS[op["spec"]],
            memory_budget=_INSTANCE_BUDGET,
            physical=self.physical,
            seed=op["seed"],
        )
        instance.boot(self.tick())
        self.instances.append(instance)
        self.oracle.register_instance(instance)

    def _slot(self, op: dict, *states: InstanceState) -> Optional[FunctionInstance]:
        if op["slot"] >= len(self.instances):
            return None
        instance = self.instances[op["slot"]]
        if states and instance.state not in states:
            return None
        return instance

    def _op_invoke(self, op: dict) -> None:
        instance = self._slot(op, InstanceState.IDLE)
        if instance is None:
            return self._skip()
        instance.invoke(self.tick())

    def _op_alloc_cohort(self, op: dict) -> None:
        instance = self._slot(op, InstanceState.IDLE)
        if instance is None or not instance.runtime.booted:
            return self._skip()
        runtime = instance.runtime
        volume = op["count"] * op["unit"]
        if op["scope"] != "ephemeral":
            # Persistent/weak cohorts outlive the op; cap accumulation so
            # the schedule cannot legitimately run the tiny heap out.
            if runtime.live_bytes() + volume > runtime.config.max_heap // 4:
                return self._skip()
        runtime.alloc_cohort(op["count"], op["unit"], scope=op["scope"])

    def _op_freeze(self, op: dict) -> None:
        instance = self._slot(op, InstanceState.IDLE)
        if instance is None:
            return self._skip()
        instance.freeze(self.tick())

    def _op_thaw(self, op: dict) -> None:
        instance = self._slot(op, InstanceState.FROZEN)
        if instance is None:
            return self._skip()
        instance.thaw(self.tick())

    def _op_reclaim(self, op: dict) -> None:
        instance = self._slot(op, InstanceState.FROZEN)
        if instance is None:
            return self._skip()
        instance.reclaim(aggressive=bool(op["aggressive"]))

    def _op_snapshot(self, op: dict) -> None:
        instance = self._slot(op, InstanceState.IDLE)
        if instance is None:
            return self._skip()
        instance.snapshot(self.tick())

    def _op_evict(self, op: dict) -> None:
        instance = self._slot(op)
        if instance is None or instance.state is InstanceState.DEAD:
            return self._skip()
        instance.destroy(self.tick())

    def _op_gc(self, op: dict) -> None:
        instance = self._slot(op, InstanceState.IDLE)
        if instance is None or not instance.runtime.booted:
            return self._skip()
        instance.runtime.full_gc(aggressive=bool(op["aggressive"]))

    def _skip(self) -> None:
        self.skipped += 1


# ---------------------------------------------------------------- running


@dataclass
class FuzzFailure:
    """Why (and where) a schedule failed."""

    #: The oracle invariant name, or ``crash:<ExceptionType>`` for an
    #: unexpected exception out of the layers themselves.
    kind: str
    detail: str
    op_index: int


@dataclass
class FuzzReport:
    """Outcome of one seed."""

    seed: int
    ops_requested: int
    ops_executed: int
    checks_run: int
    failure: Optional[FuzzFailure] = None
    shrunk_ops: Optional[List[dict]] = None
    case_path: Optional[str] = None
    #: Op index of the snapshot the shrinker restarted from (``None``
    #: when shrinking replayed from scratch).
    snapshot_index: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def run_ops(
    ops: List[dict],
    check_every: int = 1,
    checkpoint_every: Optional[int] = None,
    snapshot_log: Optional[List[Tuple[int, bytes]]] = None,
    resume: Optional[bytes] = None,
    start_index: int = 0,
) -> Tuple[Optional[FuzzFailure], InvariantOracle]:
    """Execute one schedule under a fresh world + oracle.

    Returns ``(failure, oracle)``; ``failure`` is None when every op and
    every sweep (including the final one) passed.

    ``checkpoint_every=N`` snapshots the whole world+oracle pair
    (:func:`repro.sim.checkpoint.snapshot_world`) after every N executed
    ops, appending ``(next_op_index, blob)`` to ``snapshot_log`` -- the
    shrinker restarts candidates from the last snapshot before the
    failure instead of replaying the whole prefix.  ``resume`` runs
    ``ops`` against a restored snapshot blob instead of a fresh world;
    ``start_index`` only offsets the reported failure index so it still
    names a position in the *full* schedule.
    """
    if resume is not None:
        from repro.sim import checkpoint

        world = checkpoint.restore_world(resume)
        oracle = world.oracle
    else:
        oracle = InvariantOracle(OracleConfig(cadence="end", every=check_every))
        world = FuzzWorld(oracle)
    index = start_index - 1
    try:
        for offset, op in enumerate(ops):
            index = start_index + offset
            world.apply(op)
            oracle.maybe_check()
            if (
                checkpoint_every is not None
                and snapshot_log is not None
                and (offset + 1) % checkpoint_every == 0
            ):
                from repro.sim import checkpoint

                snapshot_log.append((index + 1, checkpoint.snapshot_world(world)))
        index += 1
        oracle.finish()
    except Violation as violation:
        return FuzzFailure(violation.invariant, str(violation), index), oracle
    except Exception as exc:  # noqa: BLE001 - a crash IS a finding
        kind = f"crash:{type(exc).__name__}"
        return FuzzFailure(kind, f"{type(exc).__name__}: {exc}", index), oracle
    return None, oracle


def _fails_like(ops: List[dict], kind: str, check_every: int) -> bool:
    failure, _ = run_ops(ops, check_every)
    return failure is not None and failure.kind == kind


def _fails_like_from(
    blob: bytes, suffix: List[dict], kind: str, check_every: int
) -> bool:
    """Does ``suffix``, run from a restored snapshot, fail the same way?

    Each candidate gets its own restore (the blob is immutable bytes),
    so shrink probes never contaminate one another.
    """
    failure, _ = run_ops(suffix, check_every, resume=blob)
    return failure is not None and failure.kind == kind


def fuzz_seed(
    seed: int,
    n_ops: int,
    check_every: int = 1,
    case_dir: Optional[str] = None,
    shrink: bool = True,
    max_shrink_runs: int = 600,
    checkpoint_every: Optional[int] = None,
) -> FuzzReport:
    """Fuzz one seed end to end: generate, run, shrink, write the case.

    ``checkpoint_every=N`` snapshots the world every N ops during the
    initial run; on a failure, only the suffix past the last snapshot is
    shrunk (candidates restart from the restored snapshot), and the
    stitched prefix+suffix case is re-verified *from scratch* before it
    is trusted -- the written case file stays standalone-replayable.
    """
    ops = generate_ops(seed, n_ops)
    snapshots: List[Tuple[int, bytes]] = []
    failure, oracle = run_ops(
        ops,
        check_every,
        checkpoint_every=checkpoint_every,
        snapshot_log=snapshots if checkpoint_every else None,
    )
    report = FuzzReport(
        seed=seed,
        ops_requested=n_ops,
        ops_executed=len(ops),
        checks_run=oracle.checks_run,
    )
    if failure is None:
        return report
    report.failure = failure
    # Ops past the failure point are noise; drop them before shrinking.
    prefix = ops[: failure.op_index + 1]
    shrunk = prefix
    if shrink:
        base: Optional[Tuple[int, bytes]] = None
        for snap_index, blob in snapshots:
            if snap_index <= failure.op_index:
                base = (snap_index, blob)
        shrunk = None
        if base is not None and base[0] > 0:
            # Shrink only the suffix past the snapshot: each candidate
            # restores the blob instead of re-executing the prefix.
            snap_index, blob = base
            suffix = shrink_ops(
                prefix[snap_index:],
                lambda candidate: _fails_like_from(
                    blob, candidate, failure.kind, check_every
                ),
                max_runs=max_shrink_runs,
            )
            stitched = prefix[:snap_index] + suffix
            # The case file must reproduce without any snapshot.
            if _fails_like(stitched, failure.kind, check_every):
                shrunk = stitched
                report.snapshot_index = snap_index
        if shrunk is None:
            shrunk = shrink_ops(
                prefix,
                lambda candidate: _fails_like(candidate, failure.kind, check_every),
                max_runs=max_shrink_runs,
            )
        # Re-run the shrunk schedule so the recorded detail matches it.
        final_failure, _ = run_ops(shrunk, check_every)
        if final_failure is not None:
            report.failure = final_failure
    report.shrunk_ops = shrunk
    if case_dir is not None:
        path = Path(case_dir) / f"fuzz-seed{seed}-{report.failure.kind.replace(':', '-')}.jsonl"
        write_case(path, seed, n_ops, check_every, report.failure, shrunk)
        report.case_path = str(path)
    return report


# -------------------------------------------------------------- case files


def write_case(
    path: Path,
    seed: int,
    n_ops: int,
    check_every: int,
    failure: FuzzFailure,
    ops: List[dict],
) -> None:
    """One JSONL file: a header line, then one line per op."""
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": CASE_FORMAT,
        "version": CASE_VERSION,
        "seed": seed,
        "ops_requested": n_ops,
        "check_every": check_every,
        "kind": failure.kind,
        "detail": failure.detail,
        "op_index": failure.op_index,
    }
    with path.open("w", encoding="utf-8") as sink:
        sink.write(json.dumps(header) + "\n")
        for op in ops:
            sink.write(json.dumps(op) + "\n")


def read_case(path: "Path | str") -> Tuple[dict, List[dict]]:
    path = Path(path)
    with path.open("r", encoding="utf-8") as source:
        lines = [line for line in source if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty case file")
    header = json.loads(lines[0])
    if header.get("format") != CASE_FORMAT:
        raise ValueError(f"{path}: not a {CASE_FORMAT} file")
    return header, [json.loads(line) for line in lines[1:]]


def replay_case(path: Path) -> Tuple[Optional[FuzzFailure], dict]:
    """Re-execute a case file; returns ``(failure, header)``."""
    header, ops = read_case(path)
    failure, _ = run_ops(ops, header.get("check_every", 1))
    return failure, header


# ----------------------------------------------------------------- fan-out


def _fuzz_worker(args: Tuple[int, int, int, Optional[str], Optional[int]]) -> dict:
    """Top-level (picklable) worker for the process pool."""
    seed, n_ops, check_every, case_dir, checkpoint_every = args
    report = fuzz_seed(
        seed, n_ops, check_every, case_dir, checkpoint_every=checkpoint_every
    )
    summary = {
        "seed": report.seed,
        "ops": report.ops_executed,
        "checks": report.checks_run,
        "ok": report.ok,
    }
    if report.failure is not None:
        summary["kind"] = report.failure.kind
        summary["detail"] = report.failure.detail
        summary["op_index"] = report.failure.op_index
        summary["shrunk_len"] = len(report.shrunk_ops or [])
        summary["case_path"] = report.case_path
        summary["snapshot_index"] = report.snapshot_index
    return summary


def run_fuzz(
    seeds: List[int],
    n_ops: int,
    check_every: int = 1,
    jobs: int = 1,
    case_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> List[dict]:
    """Fan seeds across a process pool (benchmarks/runner.py style)."""
    work = [
        (seed, n_ops, check_every, case_dir, checkpoint_every) for seed in seeds
    ]
    if jobs <= 1 or len(work) <= 1:
        return [_fuzz_worker(item) for item in work]
    from concurrent.futures import ProcessPoolExecutor

    from repro import procenv

    # Explicitly re-apply the parent's effective run flags in every
    # worker (start-method-proof; see repro.procenv).
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=procenv.initializer,
        initargs=(procenv.snapshot(),),
    ) as pool:
        return list(pool.map(_fuzz_worker, work))


def parse_seed_spec(spec: str) -> List[int]:
    """``"7"``, ``"0..63"`` (inclusive), or ``"1,5,9"``."""
    seeds: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if ".." in part:
            lo, hi = part.split("..", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        elif part:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"empty seed spec {spec!r}")
    return seeds
