"""The AWS-Lambda-like platform variant (§5.4, Figure 11).

Differences from the OpenWhisk model that matter to the paper:

* **No page sharing between function deployments.**  Every function ships
  its own container image, so runtime libraries are private mappings and
  count toward USS -- which is why the §4.6 unmap optimization is *more*
  effective on Lambda.
* The platform itself cannot be modified; Desiccant runs via a special
  reclaim invocation sent to the (modified-runtime) image, which the bench
  reproduces by calling ``reclaim`` on the instance directly.
"""

from __future__ import annotations

from repro.faas.platform import FaasPlatform, PlatformConfig


class LambdaPlatform(FaasPlatform):
    """OpenWhisk event loop with Lambda's no-sharing memory layout."""

    def __init__(self, config: PlatformConfig | None = None, **kwargs) -> None:
        config = config or PlatformConfig()
        config.shared_libraries = False
        super().__init__(config, **kwargs)
