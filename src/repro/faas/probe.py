"""The §2.1 investigation: detect a platform's idle semantics from outside.

The paper splits an uploaded function into a foreground task and a
background heartbeat sender, then watches the heartbeats: on AWS Lambda
they continue ~100 ms past the foreground's end, stop, and *resume with
the same function id* on the next request -- the instance was frozen, not
destroyed.  IBM Cloud Functions and Alibaba Function Compute behave the
same way.

:func:`probe_idle_semantics` reproduces that methodology against a
simulated platform: submit two requests separated by a gap, reconstruct
heartbeat windows from instance state transitions, and classify the
platform as ``"freeze"``, ``"destroy"``, or ``"keep-running"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faas.instance import InstanceState
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.workloads.model import FunctionDefinition
from repro.workloads.registry import get_definition


@dataclass
class HeartbeatWindow:
    """One contiguous period during which an instance's threads ran."""

    instance_id: int
    start: float
    end: Optional[float]  # None == still running at observation end


@dataclass
class ProbeReport:
    """What the heartbeat server observed."""

    classification: str  # "freeze" | "destroy" | "keep-running"
    windows: List[HeartbeatWindow]
    same_instance_resumed: bool


def heartbeat_windows(instance) -> List[HeartbeatWindow]:
    """Derive heartbeat windows from an instance's transition log.

    Threads run (heartbeats flow) whenever the instance is not FROZEN and
    not DEAD.
    """
    windows: List[HeartbeatWindow] = []
    open_start: Optional[float] = None
    for time, state in instance.transitions:
        running = state not in (InstanceState.FROZEN, InstanceState.DEAD)
        if running and open_start is None:
            open_start = time
        elif not running and open_start is not None:
            windows.append(HeartbeatWindow(instance.id, open_start, time))
            open_start = None
    if open_start is not None:
        windows.append(HeartbeatWindow(instance.id, open_start, None))
    return windows


def probe_idle_semantics(
    config: Optional[PlatformConfig] = None,
    function: FunctionDefinition | str = "web-server",
    gap_seconds: float = 30.0,
) -> ProbeReport:
    """Run the two-request experiment and classify the platform."""
    if isinstance(function, str):
        function = get_definition(function)
    platform = FaasPlatform(config=config)
    platform.submit(
        [
            Request(arrival=0.0, definition=function),
            Request(arrival=gap_seconds, definition=function),
        ]
    )
    platform.run()

    instances = [
        i
        for pool in platform._instances.values()
        for i in pool
    ]
    # Include destroyed instances: under the destroy policy the pool is
    # emptied, so recover them from the transition-bearing outcomes.
    windows: List[HeartbeatWindow] = []
    for instance in instances:
        windows.extend(heartbeat_windows(instance))
    windows.sort(key=lambda w: (w.start, w.instance_id))

    ids = {w.instance_id for w in windows}
    same_instance_resumed = False
    classification = "keep-running"
    if len(ids) >= 2 or not instances:
        classification = "destroy"
    else:
        instance_windows = [w for w in windows]
        if len(instance_windows) >= 2:
            # Heartbeats stopped between requests and resumed later, from
            # the same instance: the freeze signature.
            classification = "freeze"
            same_instance_resumed = True
        else:
            classification = "keep-running"
            same_instance_resumed = True

    for instance in instances:
        instance.destroy()
    return ProbeReport(
        classification=classification,
        windows=windows,
        same_instance_resumed=same_instance_resumed,
    )
