"""A lazy-deletion priority queue for eviction policies.

Keep-alive policies rank the frozen set by a priority formula and
repeatedly ask for the minimum.  Scanning the whole set per query is
O(F); this heap makes the common cases cheap:

* a *removal* (thaw, eviction) costs nothing -- the entry simply stops
  validating and is skipped when it reaches the top;
* a *re-key* pushes a fresh entry and invalidates the old one by key
  mismatch;
* a *peek* pops stale entries lazily, so its amortized cost is bounded
  by the pushes that created them.

Entries are ``(key, ident)`` pairs; keys are tuples ending in the
instance id, so ordering is total and deterministic.  ``valid`` is the
policy's membership predicate (normally "still frozen"): it is what
lets removals be free.  The heap compacts itself when stale entries
outnumber live ones, so memory stays proportional to the live set.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple


class LazyHeap:
    """Min-heap over ``(key, ident)`` with lazy deletion.

    ``ident`` is any hashable identity (instance id); ``member`` is the
    payload returned by :meth:`peek`.  An entry is live while its key
    matches the last :meth:`set` for its ident *and* ``valid(member)``
    holds.
    """

    def __init__(self, valid: Callable[[Any], bool]) -> None:
        self._valid = valid
        self._heap: List[Tuple[Any, Any]] = []
        self._keys: Dict[Any, Any] = {}
        self._members: Dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def set(self, ident: Any, key: Any, member: Any) -> None:
        """Insert or re-key a member (a no-op when the key is unchanged)."""
        if self._keys.get(ident) == key:
            return
        self._keys[ident] = key
        self._members[ident] = member
        heapq.heappush(self._heap, (key, ident))
        self._maybe_compact()

    def remove(self, ident: Any) -> None:
        """Forget a member eagerly (lazy removal via ``valid`` also works)."""
        self._keys.pop(ident, None)
        self._members.pop(ident, None)

    def peek(self) -> Optional[Tuple[Any, Any]]:
        """The smallest live ``(key, member)``, or None when empty."""
        heap = self._heap
        while heap:
            key, ident = heap[0]
            member = self._members.get(ident)
            current = member is not None and self._keys.get(ident) == key
            if current and self._valid(member):
                return key, member
            heapq.heappop(heap)
            if current:
                # The entry was this member's current key but the member
                # itself left the tracked population: purge it.
                del self._keys[ident]
                del self._members[ident]
        return None

    def pop(self) -> Optional[Tuple[Any, Any]]:
        """Remove and return the smallest live ``(key, member)``."""
        entry = self.peek()
        if entry is None:
            return None
        key, ident = self._heap[0]
        heapq.heappop(self._heap)
        del self._keys[ident]
        del self._members[ident]
        return entry

    def _maybe_compact(self) -> None:
        if len(self._heap) <= 4 * len(self._keys) + 64:
            return
        for ident, member in list(self._members.items()):
            if not self._valid(member):
                del self._members[ident]
                del self._keys[ident]
        self._heap = [(key, ident) for ident, key in self._keys.items()]
        heapq.heapify(self._heap)
