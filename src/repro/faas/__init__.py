"""FaaS platform substrate: instances, freeze/thaw, caching, eviction.

* ``libraries`` -- the machine-wide shared page cache for language runtime
  libraries (OpenWhisk-style container image sharing).
* ``cgroup``    -- CPU-time accounting, including the §4.5.2 share-weighted
  accumulation Desiccant uses for reclamation profiles.
* ``instance``  -- one container: a managed runtime plus freeze semantics.
* ``platform``  -- the OpenWhisk-like platform: routing, instance cache,
  memory-pressure eviction, cold/warm boots, and policy hooks.
* ``lambda_platform`` -- the AWS-Lambda-like variant (no page sharing).
* ``keepalive`` -- §6.1 keep-alive/eviction policies (LRU, FaasCache-style
  greedy-dual, Shahrad-style hybrid histogram).
* ``cluster``   -- a multi-node front-end router over invoker nodes,
  time-interleaved over one shared :mod:`repro.sim` kernel.
* ``probe``     -- the §2.1 heartbeat experiment detecting idle semantics.
* ``telemetry`` -- time-series recording of cache pressure and reclaims.

Platform, managers, keep-alive policies, and telemetry all communicate
through the kernel's event bus; see :mod:`repro.sim`.
"""

from repro.faas.cgroup import CpuAccountant, weighted_cpu_seconds
from repro.faas.instance import FunctionInstance, InstanceState, runtime_for
from repro.faas.libraries import SharedLibraryPool
from repro.faas.platform import (
    FaasPlatform,
    ManagerBridge,
    PlatformConfig,
    RequestOutcome,
)
from repro.faas.lambda_platform import LambdaPlatform
from repro.faas.cluster import Cluster, ClusterConfig, ClusterStats
from repro.faas.keepalive import (
    GreedyDualSizeFrequency,
    HybridHistogramKeepAlive,
    LruEviction,
    subscribe_policy,
)
from repro.faas.probe import ProbeReport, probe_idle_semantics
from repro.faas.telemetry import TelemetryRecorder, bucket_means, sparkline

__all__ = [
    "CpuAccountant",
    "weighted_cpu_seconds",
    "FunctionInstance",
    "InstanceState",
    "runtime_for",
    "SharedLibraryPool",
    "FaasPlatform",
    "ManagerBridge",
    "PlatformConfig",
    "RequestOutcome",
    "LambdaPlatform",
    "Cluster",
    "ClusterConfig",
    "ClusterStats",
    "GreedyDualSizeFrequency",
    "HybridHistogramKeepAlive",
    "LruEviction",
    "subscribe_policy",
    "ProbeReport",
    "probe_idle_semantics",
    "TelemetryRecorder",
    "bucket_means",
    "sparkline",
]
