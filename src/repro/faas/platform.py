"""The OpenWhisk-like FaaS platform (§2.1, Figure 5).

A discrete-event simulator hosted on the shared :mod:`repro.sim` kernel:
requests arrive, the platform routes each to a warm frozen instance
(thaw) or cold-boots a new container, executes the function (chains run
stage by stage, each stage in its own instance), and freezes the
instance again.  Memory is managed against an instance-cache capacity:
launching needs the instance's full budget free, and the platform evicts
least-recently-used frozen instances to make room -- each eviction is a
future cold boot, which is the end-to-end cost Figures 9/10 quantify.

The platform owns no private loop, clock, or observer list.  It
*schedules* its handlers on a :class:`~repro.sim.kernel.SimKernel`
(possibly shared with other nodes of a cluster) and *publishes*
structured events -- ``request-arrival``, ``cold-boot``, ``thaw``,
``freeze``, ``eviction``, ``request-done``, plus an internal ``step``
after every event -- on the kernel's bus.  A pluggable
:class:`~repro.core.baselines.MemoryManager` (vanilla / eager / swap /
Desiccant) attaches through :class:`ManagerBridge`, a bus subscriber
that forwards events to the manager's hooks and reports the CPU seconds
they consume back to the platform's accountant.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro import fastpath
from repro.mem.layout import GIB, MIB
from repro.mem.physical import PhysicalMemory
from repro.faas.cgroup import CpuAccountant
from repro.sim import (
    COLD_BOOT,
    EVICTION,
    Event,
    FREEZE,
    GC,
    INVOCATION_END,
    RECLAIM_DONE,
    RECLAIM_START,
    REQUEST_ARRIVAL,
    REQUEST_DONE,
    STEP,
    THAW,
    SimKernel,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.core.baselines import MemoryManager
from repro.faas.instance import FunctionInstance, InstanceState
from repro.faas.libraries import SharedLibraryPool
from repro.runtime.cpython import CPythonRuntime
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime
from repro.workloads.model import FunctionDefinition, FunctionSpec

_request_ids = itertools.count(1)


@dataclass
class PlatformConfig:
    """Capacity and scheduling knobs (defaults follow the paper's setup)."""

    #: Instance-cache capacity (the §5.3 experiments use 2 GiB).
    capacity_bytes: int = 2 * GIB
    #: Per-instance memory budget (OpenWhisk default).
    instance_memory: int = 256 * MIB
    #: CPUs available to function execution.
    cpus: float = 8.0
    #: CPU share per running instance (commercial configuration, §5.2).
    cpu_share: float = 0.14
    #: Share library pages between instances (OpenWhisk yes, Lambda no).
    shared_libraries: bool = True
    #: Seed offsetting every instance's workload jitter.
    seed: int = 0
    #: Keep-alive/eviction policy; None selects LRU (OpenWhisk's default).
    #: See :mod:`repro.faas.keepalive` for FaasCache- and histogram-style
    #: alternatives.
    eviction_policy: object | None = None
    #: What happens to an instance after its invocation completes (§2.1 /
    #: §5.2's alternative solutions):
    #:   "freeze"    -- docker pause (the platforms the paper studies);
    #:   "destroy"   -- no caching at all, every request cold-boots;
    #:   "keep-warm" -- never pause: background threads keep burning CPU
    #:                  and an idle-time GC may run after a quiet period;
    #:   "snapshot"  -- checkpoint to disk (SnapStart-style): near-zero
    #:                  cached memory, but every reuse pays the restore
    #:                  latency plus page-in faults.
    idle_policy: str = "freeze"
    #: keep-warm only: CPU share each idle instance's background threads
    #: consume (heartbeats, JIT threads -- the §2.1 motivation to freeze).
    idle_background_cpu: float = 0.01
    #: keep-warm only: idle seconds before a background full GC runs.
    idle_gc_delay: float = 10.0
    #: Instances to pre-boot per function at startup (AWS provisioned
    #: concurrency, §2.1); they are booted frozen, ready to thaw.
    provisioned: dict | None = None


@dataclass
class Request:
    """One user invocation of a (possibly chained) function."""

    arrival: float
    definition: FunctionDefinition
    id: int = field(default_factory=lambda: next(_request_ids))


@dataclass
class RequestOutcome:
    """Completed request: timing plus cold-boot exposure."""

    request: Request
    started: float
    finished: float
    cold_boots: int
    queue_seconds: float

    @property
    def latency(self) -> float:
        return self.finished - self.request.arrival


class VersionedList(list):
    """A list with explicit change counters so consumers can cache.

    ``version`` counts membership changes (an instance entering or
    leaving the frozen set); ``adds`` counts only the entries (lazy
    consumers handle removals for free by validating members, so they
    resync on ``adds`` alone); ``state_version`` additionally counts
    in-place changes to members' memory state (a frozen instance's
    address space going dirty, which moves its USS and hence any
    size-dependent eviction priority).  The platform bumps all three
    manually; otherwise this is a plain list, so existing policy code
    that only iterates keeps working unchanged.
    """

    __slots__ = ("version", "adds", "state_version")

    def __init__(self) -> None:
        super().__init__()
        self.version = 0
        self.adds = 0
        self.state_version = 0

    def __reduce__(self):
        # Explicit reduction: the default list-subclass protocol trips
        # over the no-arg ``__init__`` + ``__slots__`` combination, and a
        # checkpoint restore must bring the counters back exactly (stale
        # counters would let cached policy indexes skip a resync).
        return (
            _rebuild_versioned_list,
            (list(self), self.version, self.adds, self.state_version),
        )


def _rebuild_versioned_list(
    items: list, version: int, adds: int, state_version: int
) -> "VersionedList":
    rebuilt = VersionedList()
    rebuilt.extend(items)
    rebuilt.version = version
    rebuilt.adds = adds
    rebuilt.state_version = state_version
    return rebuilt


@dataclass
class _InFlight:
    request: Request
    stage_idx: int = 0
    started: Optional[float] = None
    queue_seconds: float = 0.0
    cold_boots: int = 0
    ready_since: float = 0.0
    #: (instance, handoff oid) from the previous stage, if any.
    handoff: Optional[Tuple[FunctionInstance, int]] = None
    current_instance: Optional[FunctionInstance] = None


class _SpaceDirtier:
    """Picklable address-space change listener.

    Replaces the closure ``_space_dirtier`` used to return: closures
    cannot ride in a checkpoint (repro.sim.checkpoint), while this pair
    of references pickles with the rest of the platform graph.
    """

    __slots__ = ("platform", "instance")

    def __init__(self, platform: "FaasPlatform", instance: FunctionInstance) -> None:
        self.platform = platform
        self.instance = instance

    def __call__(self) -> None:
        self.platform._mark_dirty(self.instance)


class ManagerBridge:
    """Subscribes a :class:`MemoryManager`'s hooks to the platform's bus.

    The managers themselves stay bus-unaware (they are plain policy
    objects, also driven directly by unit tests); the bridge is the only
    place that translates structured events into hook calls.  Each hook's
    CPU cost is returned to :meth:`EventBus.publish`, so the publishing
    platform charges exactly what the old direct calls charged:

    * ``invocation-end`` -> ``on_invocation_end`` (charged as eager-GC
      time and added to the stage's wall clock),
    * ``freeze``         -> ``on_freeze``,
    * ``eviction``       -> ``on_eviction``,
    * ``step``           -> ``step`` (the background sweep; Desiccant's
      activation/selection/reclamation loop lives here).

    When a sweep does work, the bridge publishes ``reclaim-start`` /
    ``reclaim-done`` so traces and telemetry see reclamation without
    knowing the manager's type; an ``invocation-end`` hook that burned
    CPU likewise publishes a ``gc`` event (that is what the eager
    baseline's forced collection is).
    """

    def __init__(self, platform: "FaasPlatform", manager: "MemoryManager") -> None:
        self.platform = platform
        self.manager = manager
        bus, node = platform.bus, platform.node_id
        self._subscriptions = [
            bus.subscribe(self._on_invocation_end, kinds=(INVOCATION_END,), node=node),
            bus.subscribe(self._on_freeze, kinds=(FREEZE,), node=node),
            bus.subscribe(self._on_eviction, kinds=(EVICTION,), node=node),
            bus.subscribe(self._on_step, kinds=(STEP,), node=node),
        ]

    def detach(self) -> None:
        for subscription in self._subscriptions:
            self.platform.bus.unsubscribe(subscription)
        self._subscriptions = []

    # ---------------------------------------------------------------- hooks

    def _on_invocation_end(self, event: Event) -> float:
        instance = event.data["instance"]
        cpu = self.manager.on_invocation_end(instance, event.time)
        if cpu > 0:
            self.platform.bus.publish(
                Event(
                    GC,
                    event.time,
                    event.node,
                    {
                        "instance_id": instance.id,
                        "function": instance.spec.name,
                        "cpu_seconds": cpu,
                        "reason": "invocation-end",
                    },
                )
            )
        return cpu

    def _on_freeze(self, event: Event) -> float:
        return self.manager.on_freeze(event.data["instance"], event.time)

    def _on_eviction(self, event: Event) -> None:
        self.manager.on_eviction(event.data["instance"], event.time)
        return None

    def _on_step(self, event: Event) -> float:
        released_before = getattr(self.manager, "total_released_bytes", 0)
        frozen_before = self.platform.frozen_bytes()
        cpu = self.manager.step(event.time, self.platform)
        if cpu > 0:
            released = getattr(self.manager, "total_released_bytes", 0) - released_before
            bus = self.platform.bus
            bus.publish(
                Event(
                    RECLAIM_START,
                    event.time,
                    event.node,
                    {"frozen_bytes": frozen_before},
                )
            )
            bus.publish(
                Event(
                    RECLAIM_DONE,
                    event.time,
                    event.node,
                    {"cpu_seconds": cpu, "released_bytes": released},
                )
            )
        return cpu


class FaasPlatform:
    """Event-driven FaaS platform with a pluggable memory manager.

    When ``kernel`` is omitted the platform creates a private
    :class:`SimKernel`; a cluster passes one shared kernel (and a
    distinct ``node_id``) to every node so all node timelines merge into
    a single globally ordered execution.
    """

    def __init__(
        self,
        config: PlatformConfig | None = None,
        manager: "MemoryManager | None" = None,
        physical: Optional[PhysicalMemory] = None,
        kernel: Optional[SimKernel] = None,
        node_id: int = 0,
    ) -> None:
        from repro.core.baselines import VanillaManager
        from repro.faas.keepalive import LruEviction, subscribe_policy

        self.config = config or PlatformConfig()
        self.kernel = kernel if kernel is not None else SimKernel(seed=self.config.seed)
        self.bus = self.kernel.bus
        self.node_id = node_id
        self.manager = manager or VanillaManager()
        self.eviction_policy = self.config.eviction_policy or LruEviction()
        self.physical = physical if physical is not None else PhysicalMemory()
        self._library_pool: Optional[SharedLibraryPool] = None
        if self.config.shared_libraries:
            self._library_pool = SharedLibraryPool(
                self.physical,
                runtime_classes=(HotSpotRuntime, V8Runtime, CPythonRuntime),
            )
        self._instances: Dict[str, List[FunctionInstance]] = {}
        self._wait_queue: List[_InFlight] = []
        self._running = 0
        self.cpu = CpuAccountant(cpus=self.config.cpus)
        self.outcomes: List[RequestOutcome] = []
        self.cold_boots = 0
        self.warm_starts = 0
        self.evictions = 0
        self.overcommits = 0
        self._last_event_time = 0.0
        #: Incremental bookkeeping (fast path).  Instead of summing every
        #: instance's USS on each query -- the dominant cost of macro-scale
        #: replays, paid before *every* manager step -- the platform keeps
        #: running integer totals and a dirty set of instances whose memory
        #: changed since they were last folded in.  Integer adds/subtracts
        #: are exact and order-independent, so the totals match the slow
        #: path's fresh sums bit for bit.
        self._fastpath = fastpath.enabled()
        #: Platform-shape token stamped onto every instance so memo entries
        #: recorded under one manager/policy/config never hit in another.
        self._memo_context = zlib.crc32(
            "|".join(
                (
                    type(self.manager).__name__,
                    type(self.eviction_policy).__name__,
                    self.config.idle_policy,
                    str(int(bool(self.config.shared_libraries))),
                    str(self.config.instance_memory),
                )
            ).encode()
        )
        self._tracked: Dict[int, FunctionInstance] = {}
        self._uss_cache: Dict[int, int] = {}
        self._uss_total = 0
        self._frozen_uss_total = 0
        self._frozen_ids: Dict[int, None] = {}
        self._frozen_list = VersionedList()
        self._dirty: Dict[int, FunctionInstance] = {}
        #: Monotone counter over every bookkeeping change; cached consumers
        #: (Desiccant's ranked candidate index) fold it into fingerprints.
        self.change_epoch = 0
        #: Bus plumbing: the eviction policy's request bookkeeping and the
        #: memory manager's hooks both attach as subscribers -- nothing
        #: calls them directly.
        self._policy_subscription = subscribe_policy(
            self.eviction_policy, self.bus, node=self.node_id
        )
        self._manager_bridge = ManagerBridge(self, self.manager)
        self._provision()
        if self.config.idle_policy not in (
            "freeze", "destroy", "keep-warm", "snapshot"
        ):
            raise ValueError(f"unknown idle policy {self.config.idle_policy!r}")
        from repro.check.oracle import maybe_attach_oracle

        #: Non-None only when REPRO_CHECK=1: the invariant oracle watching
        #: this platform (see repro.check).
        self.oracle = maybe_attach_oracle(self)

    # ----------------------------------------------------------------- time

    @property
    def now(self) -> float:
        return self.kernel.clock.now

    @now.setter
    def now(self, value: float) -> None:
        self.kernel.clock.reset(value)

    # ------------------------------------------------- incremental tracking

    def _register_instance(self, instance: FunctionInstance) -> None:
        """Hook a new instance into the incremental aggregates: watch its
        state transitions (frozen-set membership) and its address space's
        change counter (USS drift), and queue it for the first fold-in."""
        instance.memo_context = self._memo_context
        if not self._fastpath:
            return
        self._tracked[instance.id] = instance
        instance.state_listener = self._on_instance_state
        instance.runtime.space.change_listener = self._space_dirtier(instance)
        self._mark_dirty(instance)

    def _unregister_instance(self, instance: FunctionInstance) -> None:
        if not self._fastpath:
            return
        self._tracked.pop(instance.id, None)
        instance.state_listener = None
        instance.runtime.space.change_listener = None
        # The next flush sees the id untracked and drops its cached USS.
        self._dirty[instance.id] = instance
        self.change_epoch += 1

    def _space_dirtier(self, instance: FunctionInstance) -> "_SpaceDirtier":
        return _SpaceDirtier(self, instance)

    def _mark_dirty(self, instance: FunctionInstance) -> None:
        self._dirty[instance.id] = instance
        if instance.id in self._frozen_ids:
            # A frozen member's USS moved: size-keyed eviction priorities
            # are stale even though membership is unchanged.
            self._frozen_list.state_version += 1
        self.change_epoch += 1

    def _on_instance_state(
        self,
        instance: FunctionInstance,
        previous: InstanceState,
        value: InstanceState,
    ) -> None:
        cached = self._uss_cache.get(instance.id, 0)
        if previous is InstanceState.FROZEN and instance.id in self._frozen_ids:
            del self._frozen_ids[instance.id]
            self._frozen_list.remove(instance)
            self._frozen_list.version += 1
            self._frozen_uss_total -= cached
        if value is InstanceState.FROZEN:
            self._frozen_ids[instance.id] = None
            self._frozen_list.append(instance)
            self._frozen_list.version += 1
            self._frozen_list.adds += 1
            self._frozen_uss_total += cached
        self._dirty[instance.id] = instance
        self.change_epoch += 1

    def _flush_dirty(self) -> None:
        """Fold dirty instances into the totals: subtract each one's USS
        as last counted, re-measure, add back (unless untracked)."""
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, {}
        for iid, instance in dirty.items():
            previous = self._uss_cache.pop(iid, 0)
            self._uss_total -= previous
            frozen = iid in self._frozen_ids
            if frozen:
                self._frozen_uss_total -= previous
            if iid in self._tracked:
                current = instance.uss()
                self._uss_cache[iid] = current
                self._uss_total += current
                if frozen:
                    self._frozen_uss_total += current

    # ----------------------------------------------------------- accounting

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    def all_instances(self) -> List[FunctionInstance]:
        return [i for pool in self._instances.values() for i in pool]

    def frozen_instances(self) -> List[FunctionInstance]:
        if self._fastpath:
            # The maintained membership list (live, versioned).  Its order
            # is freeze order, not pool order; every consumer breaks ties
            # by instance id, so the two orders are indistinguishable.
            return self._frozen_list
        return [
            i for i in self.all_instances() if i.state is InstanceState.FROZEN
        ]

    def frozen_bytes(self) -> int:
        """Accumulated USS of frozen instances (what Desiccant watches)."""
        if self._fastpath:
            self._flush_dirty()
            return self._frozen_uss_total
        return sum(i.uss() for i in self.frozen_instances())

    def evictable_instances(self) -> List[FunctionInstance]:
        """Instances the cache may destroy: frozen ones always; under the
        keep-warm policy, idle (unpaused but not running) ones too."""
        frozen = self.frozen_instances()
        if self.config.idle_policy != "keep-warm":
            return frozen
        evictable = list(frozen)
        evictable += [
            i
            for i in self.all_instances()
            if i.state is InstanceState.IDLE and i.invocation_count > 0
        ]
        return evictable

    def active_instances(self) -> List[FunctionInstance]:
        return [
            i
            for i in self.all_instances()
            if i.state in (InstanceState.RUNNING, InstanceState.IDLE)
        ]

    def used_bytes(self) -> int:
        """Actual consumption of every cached instance, active or frozen.

        The paper's modified OpenWhisk accounts instances by their real
        memory consumption -- that is what lets reclaimed instances pack
        more densely into the cache.
        """
        if self._fastpath:
            self._flush_dirty()
            return self._uss_total
        return sum(i.uss() for i in self.all_instances())

    def available_for_launch(self) -> int:
        return self.capacity_bytes - self.used_bytes()

    def frozen_capacity_bytes(self) -> int:
        """Memory the cache can devote to *frozen* instances: the total,
        minus what running instances use, minus one launch budget of
        headroom.  Desiccant's activation fraction is measured against
        this, so it engages before eviction pressure does."""
        if self._fastpath:
            self._flush_dirty()
            active = self._uss_total - self._frozen_uss_total
        else:
            active = sum(i.uss() for i in self.active_instances())
        return max(1, self.capacity_bytes - self.config.instance_memory - active)

    def idle_cpu_share(self) -> float:
        """Fraction of machine CPU not claimed by running instances."""
        claimed = self._running * self.config.cpu_share
        return max(0.0, (self.config.cpus - claimed) / self.config.cpus)

    @property
    def max_concurrency(self) -> int:
        return max(1, int(self.config.cpus / self.config.cpu_share))

    def _provision(self) -> None:
        """Pre-boot the configured provisioned concurrency (§2.1)."""
        from repro.workloads.registry import get_definition

        for name, count in (self.config.provisioned or {}).items():
            definition = get_definition(name)
            for stage in definition.stages:
                pool = self._instances.setdefault(stage.name, [])
                for k in range(count):
                    instance = FunctionInstance(
                        stage,
                        memory_budget=self.config.instance_memory,
                        physical=self.physical,
                        shared_files=(
                            self._library_pool.files if self._library_pool else None
                        ),
                        seed=self.config.seed + k,
                    )
                    self._register_instance(instance)
                    self.cpu.charge("cold_boot", instance.boot(0.0))
                    instance.freeze(0.0)
                    pool.append(instance)

    # ------------------------------------------------------------- running

    def submit(self, requests: List[Request]) -> None:
        """Schedule arrival events for a batch of requests."""
        for request in requests:
            self.kernel.schedule(
                request.arrival, self._handle_arrival, _InFlight(request=request)
            )

    def run(self, until: Optional[float] = None) -> List[RequestOutcome]:
        """Drive the kernel until its queue drains (or ``until`` passes).

        With a shared kernel this advances *every* attached component --
        a cluster calls it once, not once per node.
        """
        self.kernel.run(until)
        return self.outcomes

    def _emit(self, kind: str, **data) -> float:
        """Publish a structured event for this node; returns the summed
        CPU seconds the subscribers reported.

        On the fast path the bus skips constructing and dispatching
        events nobody subscribed to (it still consumes a sequence
        number, so traces that attach mid-run see identical seqs)."""
        if self._fastpath:
            return self.bus.publish_lazy(
                kind, self.now, self.node_id, lambda: data
            )
        return self.bus.publish(Event(kind, self.now, self.node_id, data))

    # --------------------------------------------------------------- events

    def _handle_arrival(self, flight: _InFlight) -> None:
        self._account_idle_background(self.now)
        self._on_arrival(flight)
        self._post_event()

    def _handle_complete(self, flight: _InFlight) -> None:
        self._account_idle_background(self.now)
        self._on_complete(flight)
        self._post_event()

    def _post_event(self) -> None:
        """The per-event hook cadence: one ``step`` on the bus (manager
        background sweep, telemetry sampling)."""
        self.cpu.charge("reclaim", self._emit(STEP))

    def _on_arrival(self, flight: _InFlight) -> None:
        flight.ready_since = self.now
        self._emit(
            REQUEST_ARRIVAL,
            request_id=flight.request.id,
            function=flight.request.definition.name,
        )
        self._evict_proactively()
        self._try_dispatch(flight)

    def _evict_proactively(self) -> None:
        for victim in self.eviction_policy.proactive_victims(
            self.frozen_instances(), self.now
        ):
            self.evict(victim)

    def _try_dispatch(self, flight: Optional[_InFlight] = None) -> None:
        if flight is not None:
            self._wait_queue.append(flight)
        while self._wait_queue and self._running < self.max_concurrency:
            next_flight = self._wait_queue.pop(0)
            next_flight.queue_seconds += self.now - next_flight.ready_since
            self._start_stage(next_flight)

    def _start_stage(self, flight: _InFlight) -> None:
        spec = flight.request.definition.stages[flight.stage_idx]
        if flight.started is None:
            flight.started = self.now
        instance, cold, setup_wall = self._acquire(spec)
        if cold:
            flight.cold_boots += 1
        if flight.handoff is not None:
            self._consume_handoff(flight)
        instance.state = InstanceState.RUNNING
        self._running += 1
        result = instance.invoke(self.now)
        instance.state = InstanceState.RUNNING  # stays busy until completion
        self.cpu.charge("invocation", result.cpu_seconds)
        mgr_cpu = self._emit(
            INVOCATION_END,
            instance=instance,
            instance_id=instance.id,
            function=instance.spec.name,
            request_id=flight.request.id,
            cpu_seconds=result.cpu_seconds,
        )
        self.cpu.charge("eager_gc", mgr_cpu)
        flight.current_instance = instance
        if result.handoff_oid is not None:
            flight.handoff = (instance, result.handoff_oid)
        wall = setup_wall + result.cpu_seconds + mgr_cpu
        self.kernel.schedule(self.now + wall, self._handle_complete, flight)

    def _on_complete(self, flight: _InFlight) -> None:
        instance = flight.current_instance
        self._running -= 1
        if instance is not None and instance.state is InstanceState.RUNNING:
            instance.state = InstanceState.IDLE
            instance.last_used_at = self.now
            if self.config.idle_policy == "freeze":
                instance.freeze(self.now)
                self.cpu.charge(
                    "invocation",
                    self._emit(
                        FREEZE,
                        instance=instance,
                        instance_id=instance.id,
                        function=instance.spec.name,
                    ),
                )
            elif self.config.idle_policy == "destroy":
                instance.destroy(self.now)
                self._instances[instance.spec.name].remove(instance)
                self._unregister_instance(instance)
            elif self.config.idle_policy == "snapshot":
                instance.snapshot(self.now)
            # keep-warm: the instance simply stays IDLE (threads running).
        flight.current_instance = None
        if flight.stage_idx + 1 < len(flight.request.definition.stages):
            flight.stage_idx += 1
            flight.ready_since = self.now
            self._try_dispatch(flight)
        else:
            outcome = RequestOutcome(
                request=flight.request,
                started=flight.started if flight.started is not None else self.now,
                finished=self.now,
                cold_boots=flight.cold_boots,
                queue_seconds=flight.queue_seconds,
            )
            self.outcomes.append(outcome)
            self._emit(
                REQUEST_DONE,
                outcome=outcome,
                request_id=flight.request.id,
                function=flight.request.definition.name,
                latency=outcome.latency,
                cold_boots=outcome.cold_boots,
            )
            self._try_dispatch()

    def _consume_handoff(self, flight: _InFlight) -> None:
        """The next stage has picked the intermediate data up: the producer
        may let go of it (it becomes ordinary garbage)."""
        producer, oid = flight.handoff
        flight.handoff = None
        if producer.state is not InstanceState.DEAD:
            producer.runtime.free_persistent(oid)

    # ------------------------------------------------------------ instances

    def _acquire(self, spec: FunctionSpec) -> Tuple[FunctionInstance, bool, float]:
        """Find or create an instance for ``spec``.

        Returns ``(instance, was_cold, setup_wall_seconds)``.
        """
        pool = self._instances.setdefault(spec.name, [])
        frozen = [i for i in pool if i.state is InstanceState.FROZEN]
        if frozen:
            instance = max(frozen, key=lambda i: i.last_used_at)
            wall = instance.thaw(self.now)
            self.warm_starts += 1
            self._emit(
                THAW,
                instance=instance,
                instance_id=instance.id,
                function=instance.spec.name,
                thaw_seconds=wall,
            )
            return instance, False, wall
        if self.config.idle_policy == "keep-warm":
            # Warm instances are reusable directly (no unpause needed).
            idle = [i for i in pool if i.state is InstanceState.IDLE]
            if idle:
                instance = max(idle, key=lambda i: i.last_used_at)
                self.warm_starts += 1
                return instance, False, 0.0
        self._make_room()
        instance = FunctionInstance(
            spec,
            memory_budget=self.config.instance_memory,
            physical=self.physical,
            shared_files=self._library_pool.files if self._library_pool else None,
            seed=self.config.seed,
        )
        self._register_instance(instance)
        boot_cpu = instance.boot(self.now)
        self.cpu.charge("cold_boot", boot_cpu)
        pool.append(instance)
        self.cold_boots += 1
        self._emit(
            COLD_BOOT,
            instance=instance,
            instance_id=instance.id,
            function=instance.spec.name,
            boot_cpu_seconds=boot_cpu,
        )
        return instance, True, boot_cpu

    def _account_idle_background(self, until: float) -> None:
        """keep-warm: idle instances' background threads consume CPU
        between events, and a quiet instance runs an idle-time GC."""
        if self.config.idle_policy != "keep-warm":
            self._last_event_time = until
            return
        dt = max(0.0, until - self._last_event_time)
        self._last_event_time = until
        if dt == 0.0:
            return
        idle = [
            i
            for i in self.all_instances()
            if i.state is InstanceState.IDLE and i.invocation_count > 0
        ]
        if idle:
            self.cpu.charge(
                "idle_background", dt * self.config.idle_background_cpu * len(idle)
            )
        for instance in idle:
            if until - instance.last_used_at >= self.config.idle_gc_delay:
                if getattr(instance, "_idle_gc_done_at", None) != instance.last_used_at:
                    gc_cpu = instance.runtime.full_gc(aggressive=False)
                    self.cpu.charge("idle_background", gc_cpu)
                    instance._idle_gc_done_at = instance.last_used_at
                    self._emit(
                        GC,
                        instance=instance,
                        instance_id=instance.id,
                        function=instance.spec.name,
                        cpu_seconds=gc_cpu,
                        reason="idle",
                    )

    def _make_room(self) -> None:
        """Evict LRU frozen instances until one budget fits."""
        while self.available_for_launch() < self.config.instance_memory:
            victim = self._eviction_victim()
            if victim is None:
                # Nothing evictable: proceed overcommitted (the machine has
                # headroom beyond the cache budget; count it for analysis).
                self.overcommits += 1
                return
            self.evict(victim)

    def _eviction_victim(self) -> Optional[FunctionInstance]:
        return self.eviction_policy.choose_victim(
            self.evictable_instances(), self.now
        )

    def evict(self, instance: FunctionInstance) -> None:
        """Destroy a frozen instance (the §4.2 race with reclamation is
        harmless: instances are stateless)."""
        self._emit(
            EVICTION,
            instance=instance,
            instance_id=instance.id,
            function=instance.spec.name,
            freed_bytes=instance.uss(),
        )
        instance.destroy(self.now)
        self._instances[instance.spec.name].remove(instance)
        self._unregister_instance(instance)
        self.evictions += 1

    # -------------------------------------------------------------- helpers

    def reset_metrics(self) -> None:
        """Zero the meters after warmup, keeping instance state (and every
        bus subscription) warm."""
        self.cpu = CpuAccountant(cpus=self.config.cpus)
        self.outcomes = []
        self.cold_boots = 0
        self.warm_starts = 0
        self.evictions = 0
        self.overcommits = 0
        self._last_event_time = 0.0

    def set_manager(self, manager: "MemoryManager") -> None:
        """Swap the memory manager in place (the fork-and-explore hook).

        Detaches the old manager's bus bridge and installs the new
        manager's, so from the next dispatched event on every hook call
        reaches the replacement.  Instance and cache state carry over
        untouched -- exactly what a what-if fork at a checkpoint barrier
        wants.  With an oracle attached, the old manager's accumulated
        reclaim accounting is carried so the reclaim-published law keeps
        holding across the swap.
        """
        old = self.manager
        self._manager_bridge.detach()
        self.manager = manager
        self._manager_bridge = ManagerBridge(self, manager)
        if self.oracle is not None:
            self.oracle.note_manager_swap(self, old)

    def cold_boot_rate(self) -> float:
        """Cold boots per completed request (across all stages)."""
        if not self.outcomes:
            return 0.0
        return sum(o.cold_boots for o in self.outcomes) / len(self.outcomes)
