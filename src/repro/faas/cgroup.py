"""CPU-time accounting.

Two pieces:

* :func:`weighted_cpu_seconds` -- the §4.5.2 accumulation: a reclamation
  that runs 10 ms wall-clock with 0.5 CPUs for 3 ms and 0.25 CPUs for the
  remaining 7 ms consumed 0.5*3 + 0.25*7 = 3.25 ms of CPU.
* :class:`CpuAccountant` -- per-category busy-time counters the platform
  uses to reproduce Figure 9c (overall utilization, cold-boot share,
  eager-GC share, and Desiccant's own reclamation overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple


def weighted_cpu_seconds(segments: Sequence[Tuple[float, float]]) -> float:
    """Accumulate CPU time over ``(wall_seconds, cpu_share)`` segments."""
    total = 0.0
    for wall, share in segments:
        if wall < 0 or share < 0:
            raise ValueError(f"negative segment ({wall}, {share})")
        total += wall * share
    return total


@dataclass
class CpuAccountant:
    """Busy CPU seconds bucketed by activity."""

    cpus: float = 8.0
    busy: Dict[str, float] = field(default_factory=dict)

    CATEGORIES = ("invocation", "cold_boot", "eager_gc", "reclaim", "swap")

    def charge(self, category: str, cpu_seconds: float) -> None:
        """Add busy time to a category (categories are free-form but the
        platform sticks to :attr:`CATEGORIES`)."""
        if cpu_seconds < 0:
            raise ValueError(f"negative charge {cpu_seconds}")
        self.busy[category] = self.busy.get(category, 0.0) + cpu_seconds

    def total_busy(self) -> float:
        return sum(self.busy.values())

    def utilization(self, wall_seconds: float) -> float:
        """Average utilization over a window, in [0, 1] (clamped)."""
        if wall_seconds <= 0:
            raise ValueError("window must be positive")
        return min(1.0, self.total_busy() / (wall_seconds * self.cpus))

    def category_fraction(self, category: str) -> float:
        """Share of busy time spent in ``category``."""
        total = self.total_busy()
        if total == 0:
            return 0.0
        return self.busy.get(category, 0.0) / total
