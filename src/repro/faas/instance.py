"""One FaaS instance: a container wrapping a managed runtime.

Lifecycle mirrors OpenWhisk's (§2.1): the platform cold-boots a container,
runs an invocation, then immediately *freezes* it (``docker pause``) -- all
threads stop, so no GC can run until the instance is thawed for the next
request or destroyed by eviction.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, Optional

from repro.mem.layout import MIB, PAGE_SIZE
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.memo import digest as memo_digest
from repro.memo import effects as memo_effects
from repro.runtime.base import ManagedRuntime, ReclaimOutcome
from repro.runtime.cpython import CPythonConfig, CPythonRuntime
from repro.runtime.golang import GoConfig, GoRuntime
from repro.runtime.hotspot import HotSpotConfig, HotSpotRuntime
from repro.runtime.v8 import V8Config, V8Runtime
from repro.workloads.model import FunctionModel, FunctionSpec, InvocationResult

_instance_ids = itertools.count(1)

#: Wall-clock cost of thawing a frozen container (docker unpause).
THAW_SECONDS = 0.004
#: Wall-clock cost of freezing (docker pause).
FREEZE_SECONDS = 0.002
#: Wall-clock cost of restoring a snapshot before the page-ins (§2.1: AWS
#: SnapStart takes over 100 ms for a Java instance).
SNAPSHOT_RESTORE_SECONDS = 0.1


class InstanceState(enum.Enum):
    IDLE = "idle"  # booted, never frozen yet / just thawed
    RUNNING = "running"
    FROZEN = "frozen"
    DEAD = "dead"


def runtime_for(
    spec: FunctionSpec,
    memory_budget: int,
    physical: Optional[PhysicalMemory] = None,
    shared_files: Optional[Dict[str, MappedFile]] = None,
    name: Optional[str] = None,
) -> ManagedRuntime:
    """Build the right runtime simulator for a function's language."""
    name = name or f"{spec.name}-rt"
    if spec.language == "java":
        return HotSpotRuntime(
            name,
            HotSpotConfig(memory_budget=memory_budget),
            physical=physical,
            shared_files=shared_files,
        )
    if spec.language == "javascript":
        return V8Runtime(
            name,
            V8Config(memory_budget=memory_budget),
            physical=physical,
            shared_files=shared_files,
        )
    if spec.language == "python":
        return CPythonRuntime(
            name,
            CPythonConfig(memory_budget=memory_budget),
            physical=physical,
            shared_files=shared_files,
        )
    if spec.language == "go":
        return GoRuntime(
            name,
            GoConfig(memory_budget=memory_budget),
            physical=physical,
            shared_files=shared_files,
        )
    raise ValueError(f"unsupported language {spec.language!r}")


class FunctionInstance:
    """A container executing one function stage, with freeze semantics."""

    def __init__(
        self,
        spec: FunctionSpec,
        memory_budget: int = 256 * MIB,
        physical: Optional[PhysicalMemory] = None,
        shared_files: Optional[Dict[str, MappedFile]] = None,
        seed: int = 0,
    ) -> None:
        self.id = next(_instance_ids)
        self.spec = spec
        self.memory_budget = memory_budget
        self.runtime = runtime_for(
            spec,
            memory_budget,
            physical=physical,
            shared_files=shared_files,
            name=f"{spec.name}#{self.id}",
        )
        self.model = FunctionModel(spec, seed=seed)
        #: Platform-configuration token folded into memo fingerprints so
        #: entries recorded under one platform shape never hit in another.
        self.memo_context = 0
        self._state = InstanceState.IDLE
        #: Optional ``(instance, previous, new)`` callback fired on every
        #: state change, however it happens (method or direct assignment);
        #: the platform's incremental bookkeeping hangs off it.
        self.state_listener: Optional[
            Callable[["FunctionInstance", InstanceState, InstanceState], None]
        ] = None
        self.frozen_since: Optional[float] = None
        self.last_used_at: float = 0.0
        self.invocation_count = 0
        self.reclaim_count = 0
        self.last_reclaim: Optional[ReclaimOutcome] = None
        #: Set when Desiccant reclaims during the current freeze; a second
        #: pass would release nothing, so selection skips such instances.
        self.reclaimed_this_freeze = False
        #: Ditto for the swap baseline.
        self.swapped_this_freeze = False
        #: (time, state) transition log; drives the §2.1 heartbeat probe.
        self.transitions: list = []
        #: Set while the instance lives as an on-disk snapshot.
        self.snapshotted = False
        #: Cumulative bytes the snapshots wrote to storage (private pages)
        #: and dropped from the page cache (clean file pages).
        self.snapshot_swapped_bytes = 0
        self.snapshot_dropped_bytes = 0

    @property
    def state(self) -> InstanceState:
        return self._state

    @state.setter
    def state(self, value: InstanceState) -> None:
        previous = self._state
        if value is previous:
            return
        self._state = value
        if self.state_listener is not None:
            self.state_listener(self, previous, value)

    # ------------------------------------------------------------ lifecycle

    def boot(self, now: float = 0.0) -> float:
        """Cold-boot the container; returns CPU seconds consumed."""
        seconds = self.runtime.boot()
        self.transitions.append((now, InstanceState.IDLE))
        return seconds

    def invoke(self, now: float = 0.0) -> InvocationResult:
        """Run one invocation (the instance must not be frozen)."""
        if self.state is InstanceState.FROZEN:
            raise RuntimeError(f"instance {self.id} is frozen; thaw it first")
        if self.state is InstanceState.DEAD:
            raise RuntimeError(f"instance {self.id} is dead")
        self.state = InstanceState.RUNNING
        result = memo_effects.invoke(self)
        self.state = InstanceState.IDLE
        self.invocation_count += 1
        self.last_used_at = now
        return result

    def freeze(self, now: float = 0.0) -> float:
        """Pause the container (threads stop; GC can no longer run)."""
        if self.state is not InstanceState.IDLE:
            raise RuntimeError(f"cannot freeze instance in state {self.state}")
        self.state = InstanceState.FROZEN
        self.frozen_since = now
        self.transitions.append((now, InstanceState.FROZEN))
        return FREEZE_SECONDS

    def thaw(self, now: float = 0.0) -> float:
        """Unpause for the next request (restoring a snapshot if needed).

        A snapshotted instance pays the §2.1 restore latency here; the
        page-ins themselves surface as major faults when the next
        invocation touches its working set."""
        if self.state is not InstanceState.FROZEN:
            raise RuntimeError(f"cannot thaw instance in state {self.state}")
        self.state = InstanceState.IDLE
        self.frozen_since = None
        self.reclaimed_this_freeze = False
        self.swapped_this_freeze = False
        self.transitions.append((now, InstanceState.IDLE))
        if self.snapshotted:
            self.snapshotted = False
            return SNAPSHOT_RESTORE_SECONDS
        return THAW_SECONDS

    def snapshot(self, now: float = 0.0) -> float:
        """Checkpoint the instance to disk (§2.1's SnapStart-style
        alternative): every private page moves to storage, so the cached
        instance costs (almost) no memory while frozen."""
        seconds = self.freeze(now)
        space = self.runtime.space
        for mapping in list(space.mappings()):
            moved = space.swap_out_range(mapping.start, mapping.length)
            self.snapshot_swapped_bytes += moved.swapped * PAGE_SIZE
            self.snapshot_dropped_bytes += moved.dropped * PAGE_SIZE
        self.snapshotted = True
        return seconds

    def destroy(self, now: float = 0.0) -> None:
        """Evict: tear down the container and all its memory."""
        if self.state is InstanceState.DEAD:
            return
        self.runtime.destroy()
        self.state = InstanceState.DEAD
        self.frozen_since = None
        self.transitions.append((now, InstanceState.DEAD))

    # -------------------------------------------------------------- reclaim

    def reclaim(self, aggressive: bool = False) -> ReclaimOutcome:
        """Run Desiccant's reclaim inside the (frozen) instance.

        The platform briefly schedules the runtime's reclaim thread; the
        instance stays frozen from the user's perspective, and the CPU time
        is billed to the platform, not the function (§4.1).
        """
        if self.state is not InstanceState.FROZEN:
            raise RuntimeError("reclaim targets frozen instances only")
        self.runtime._memo_materialize()
        self.runtime.memo_note(memo_digest.OP_RECLAIM, int(aggressive))
        outcome = self.runtime.reclaim(aggressive=aggressive)
        self.reclaim_count += 1
        self.last_reclaim = outcome
        return outcome

    def frozen_for(self, now: float) -> float:
        """Seconds this instance has been frozen (0 when not frozen)."""
        if self.frozen_since is None:
            return 0.0
        return max(0.0, now - self.frozen_since)

    # -------------------------------------------------------------- metrics

    def uss(self) -> int:
        return self.runtime.uss()

    def ideal_uss(self) -> int:
        return self.runtime.ideal_uss()

    def heap_resident_bytes(self) -> int:
        return self.runtime.heap_resident_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInstance({self.id}, {self.spec.name}, {self.state.value})"
