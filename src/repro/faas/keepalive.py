"""Keep-alive and eviction policies (§6.1's related systems).

The paper positions Desiccant as *orthogonal* to instance-keeping policies:

* plain **LRU** eviction (OpenWhisk's default behaviour here),
* **greedy-dual-size-frequency** (FaasCache): victims minimize
  ``clock + frequency * cold_cost / size`` -- cheap-to-rebuild, rarely-used,
  memory-hungry instances go first,
* a **hybrid-histogram keep-alive** (Shahrad et al.): per-function
  inter-arrival histograms size an idle window; instances idle past their
  function's window are evicted proactively, and a pre-warm can be
  scheduled just before the predicted next arrival.

Each policy implements :class:`EvictionPolicy`; the platform consults it
for victims and (for the histogram policy) for proactive timeouts.  The
per-request bookkeeping (frequencies, inter-arrival histograms) arrives
through the simulation bus: :func:`subscribe_policy` wires a policy's
``on_request`` to its node's ``request-arrival`` events, so policies are
ordinary observers -- the platform never calls them per request.
Desiccant keeps working underneath any of them -- reclaimed instances are
simply smaller, whichever order they leave the cache in.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.faas.instance import FunctionInstance
from repro.sim import REQUEST_ARRIVAL
from repro.sim.bus import EventBus, Subscription


def subscribe_policy(
    policy: "EvictionPolicy", bus: EventBus, node: Optional[int] = None
) -> Subscription:
    """Attach a policy's request bookkeeping to a node's arrival events.

    Returns the subscription (unsubscribe to detach the policy).  The
    policy still serves victim queries synchronously -- only the
    *observation* path rides the bus.
    """

    def _on_arrival(event) -> None:
        policy.on_request(event.data["function"], event.time)

    return bus.subscribe(_on_arrival, kinds=(REQUEST_ARRIVAL,), node=node)


@runtime_checkable
class EvictionPolicy(Protocol):
    """Chooses which frozen instance leaves the cache."""

    name: str

    def on_request(self, function: str, now: float) -> None:
        """Observe a request for bookkeeping (frequencies, histograms)."""

    def choose_victim(
        self, frozen: List[FunctionInstance], now: float
    ) -> Optional[FunctionInstance]:
        """Pick the instance to evict (None when nothing is evictable)."""

    def proactive_victims(
        self, frozen: List[FunctionInstance], now: float
    ) -> List[FunctionInstance]:
        """Instances to evict even without memory pressure."""


class LruEviction:
    """OpenWhisk-style least-recently-used eviction."""

    name = "lru"

    def on_request(self, function: str, now: float) -> None:
        return None

    def choose_victim(self, frozen, now):
        if not frozen:
            return None
        return min(frozen, key=lambda i: i.last_used_at)

    def proactive_victims(self, frozen, now):
        return []


@dataclass
class GreedyDualSizeFrequency:
    """FaasCache's priority: ``clock + freq * cost / size``.

    ``cost`` is the cold-boot latency the eviction would re-impose;
    ``size`` is the instance's actual memory footprint -- so Desiccant's
    reclamation *raises* a reclaimed instance's priority (smaller size,
    same rebuild cost), keeping cheaply-cached instances around longer.
    """

    name: str = "greedy-dual"
    clock: float = 0.0
    _frequency: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def on_request(self, function: str, now: float) -> None:
        self._frequency[function] += 1

    def priority(self, instance: FunctionInstance) -> float:
        size = max(instance.uss(), 1)
        cost = instance.runtime.config.boot_seconds
        freq = max(self._frequency.get(instance.spec.name, 1), 1)
        return self.clock + freq * cost / size

    def choose_victim(self, frozen, now):
        if not frozen:
            return None
        victim = min(frozen, key=self.priority)
        # The greedy-dual aging step: the clock rises to the evicted
        # priority, so long-cached entries eventually become evictable.
        self.clock = self.priority(victim)
        return victim

    def proactive_victims(self, frozen, now):
        return []


@dataclass
class HybridHistogramKeepAlive:
    """Shahrad et al.'s histogram policy, reduced to its keep-alive core.

    Tracks per-function inter-arrival times; a function's idle window is
    the ``percentile``-th inter-arrival observed (bounded).  Frozen
    instances idle past their window are evicted proactively -- they are
    unlikely to be reused soon, so their memory serves the cache better
    elsewhere.  Under memory pressure it falls back to evicting the
    instance with the *most* expired window (LRU-like but window-aware).
    """

    name: str = "hybrid-histogram"
    percentile: float = 0.95
    min_window: float = 10.0
    max_window: float = 600.0
    _last_arrival: Dict[str, float] = field(default_factory=dict)
    _intervals: Dict[str, List[float]] = field(default_factory=dict)

    def on_request(self, function: str, now: float) -> None:
        last = self._last_arrival.get(function)
        if last is not None and now > last:
            bisect.insort(self._intervals.setdefault(function, []), now - last)
            if len(self._intervals[function]) > 512:
                self._intervals[function] = self._intervals[function][-512:]
        self._last_arrival[function] = now

    def window(self, function: str) -> float:
        """The keep-alive window for a function."""
        intervals = self._intervals.get(function)
        if not intervals:
            return self.max_window  # out-of-histogram: keep conservatively
        rank = min(len(intervals) - 1, int(len(intervals) * self.percentile))
        return min(self.max_window, max(self.min_window, intervals[rank]))

    def _expiry(self, instance: FunctionInstance, now: float) -> float:
        """Seconds past the window (negative while still inside it)."""
        base = instance.spec.name.split(".")[0]
        return instance.frozen_for(now) - self.window(base)

    def choose_victim(self, frozen, now):
        if not frozen:
            return None
        return max(frozen, key=lambda i: self._expiry(i, now))

    def proactive_victims(self, frozen, now):
        return [i for i in frozen if self._expiry(i, now) > 0]
