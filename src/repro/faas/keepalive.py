"""Keep-alive and eviction policies (§6.1's related systems).

The paper positions Desiccant as *orthogonal* to instance-keeping policies:

* plain **LRU** eviction (OpenWhisk's default behaviour here),
* **greedy-dual-size-frequency** (FaasCache): victims minimize
  ``clock + frequency * cold_cost / size`` -- cheap-to-rebuild, rarely-used,
  memory-hungry instances go first,
* a **hybrid-histogram keep-alive** (Shahrad et al.): per-function
  inter-arrival histograms size an idle window; instances idle past their
  function's window are evicted proactively, and a pre-warm can be
  scheduled just before the predicted next arrival.

Each policy implements :class:`EvictionPolicy`; the platform consults it
for victims and (for the histogram policy) for proactive timeouts.  The
per-request bookkeeping (frequencies, inter-arrival histograms) arrives
through the simulation bus: :func:`subscribe_policy` wires a policy's
``on_request`` to its node's ``request-arrival`` events, so policies are
ordinary observers -- the platform never calls them per request.
Desiccant keeps working underneath any of them -- reclaimed instances are
simply smaller, whichever order they leave the cache in.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro import fastpath
from repro.faas.instance import FunctionInstance, InstanceState
from repro.faas.lazyheap import LazyHeap
from repro.sim import REQUEST_ARRIVAL
from repro.sim.bus import EventBus, Subscription


def _is_frozen(instance: FunctionInstance) -> bool:
    """The heaps' membership predicate: the platform's frozen list and
    the FROZEN state are kept in lockstep (the oracle asserts it), so a
    state check is an O(1) membership test."""
    return instance.state is InstanceState.FROZEN


def _use_heap(policy, frozen) -> bool:
    """Heap path only for the platform's versioned frozen list; plain
    lists (unit tests, keep-warm evictable sets) take the linear scan."""
    return policy._fastpath and hasattr(frozen, "adds")


class _PolicyArrivalHandler:
    """Picklable bus handler forwarding arrivals to a policy.

    A module-level class rather than a closure so the subscription can
    ride in a checkpoint (repro.sim.checkpoint) with the rest of the
    simulation graph.
    """

    __slots__ = ("policy",)

    def __init__(self, policy: "EvictionPolicy") -> None:
        self.policy = policy

    def __call__(self, event) -> None:
        self.policy.on_request(event.data["function"], event.time)


def subscribe_policy(
    policy: "EvictionPolicy", bus: EventBus, node: Optional[int] = None
) -> Subscription:
    """Attach a policy's request bookkeeping to a node's arrival events.

    Returns the subscription (unsubscribe to detach the policy).  The
    policy still serves victim queries synchronously -- only the
    *observation* path rides the bus.
    """
    handler = _PolicyArrivalHandler(policy)
    return bus.subscribe(handler, kinds=(REQUEST_ARRIVAL,), node=node)


@runtime_checkable
class EvictionPolicy(Protocol):
    """Chooses which frozen instance leaves the cache."""

    name: str

    def on_request(self, function: str, now: float) -> None:
        """Observe a request for bookkeeping (frequencies, histograms)."""

    def choose_victim(
        self, frozen: List[FunctionInstance], now: float
    ) -> Optional[FunctionInstance]:
        """Pick the instance to evict (None when nothing is evictable)."""

    def proactive_victims(
        self, frozen: List[FunctionInstance], now: float
    ) -> List[FunctionInstance]:
        """Instances to evict even without memory pressure."""


class LruEviction:
    """OpenWhisk-style least-recently-used eviction.

    Victim order is ``(last_used_at, id)`` -- the id tie-break makes the
    choice independent of the candidate list's ordering, which is what
    lets the heap and the linear scan agree bit for bit.
    """

    name = "lru"

    def __init__(self) -> None:
        self._fastpath = fastpath.enabled()
        self._heap = LazyHeap(_is_frozen)
        self._synced: Optional[int] = None

    def on_request(self, function: str, now: float) -> None:
        return None

    def _sync(self, frozen) -> None:
        if self._synced == frozen.adds:
            return
        for i in frozen:
            self._heap.set(i.id, (i.last_used_at, i.id), i)
        self._synced = frozen.adds

    def choose_victim(self, frozen, now):
        if not frozen:
            return None
        if _use_heap(self, frozen):
            self._sync(frozen)
            entry = self._heap.peek()
            return entry[1] if entry is not None else None
        return min(frozen, key=lambda i: (i.last_used_at, i.id))

    def proactive_victims(self, frozen, now):
        return []


@dataclass
class GreedyDualSizeFrequency:
    """FaasCache's priority: ``clock + freq * cost / size``.

    ``cost`` is the cold-boot latency the eviction would re-impose;
    ``size`` is the instance's actual memory footprint -- so Desiccant's
    reclamation *raises* a reclaimed instance's priority (smaller size,
    same rebuild cost), keeping cheaply-cached instances around longer.
    """

    name: str = "greedy-dual"
    clock: float = 0.0
    _frequency: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    _fastpath: bool = field(default_factory=fastpath.enabled)
    _heap: LazyHeap = field(default_factory=lambda: LazyHeap(_is_frozen))
    _synced: Optional[tuple] = None
    _requests: int = 0

    def on_request(self, function: str, now: float) -> None:
        self._frequency[function] += 1
        # Frequencies feed the priorities, so any arrival invalidates the
        # heap's keys (cheap: the resync scan skips unchanged keys).
        self._requests += 1

    def _base_priority(self, instance: FunctionInstance) -> float:
        """``freq * cost / size`` without the clock.  The clock is the
        same additive constant for every candidate of one decision, so
        both selection paths rank by this clock-free base: it preserves
        the greedy-dual ordering while keeping heap keys valid across
        aging steps (and avoids float-absorption ties the two paths
        could break differently)."""
        size = max(instance.uss(), 1)
        cost = instance.runtime.config.boot_seconds
        freq = max(self._frequency.get(instance.spec.name, 1), 1)
        return freq * cost / size

    def priority(self, instance: FunctionInstance) -> float:
        return self.clock + self._base_priority(instance)

    def _sync(self, frozen) -> None:
        fingerprint = (frozen.adds, frozen.state_version, self._requests)
        if self._synced == fingerprint:
            return
        for i in frozen:
            self._heap.set(i.id, (self._base_priority(i), i.id), i)
        self._synced = fingerprint

    def choose_victim(self, frozen, now):
        if not frozen:
            return None
        if _use_heap(self, frozen):
            self._sync(frozen)
            entry = self._heap.peek()
            victim = entry[1] if entry is not None else None
        else:
            victim = min(frozen, key=lambda i: (self._base_priority(i), i.id))
        if victim is not None:
            # The greedy-dual aging step: the clock rises to the evicted
            # priority, so long-cached entries eventually become evictable.
            self.clock = self.priority(victim)
        return victim

    def proactive_victims(self, frozen, now):
        return []


@dataclass
class HybridHistogramKeepAlive:
    """Shahrad et al.'s histogram policy, reduced to its keep-alive core.

    Tracks per-function inter-arrival times; a function's idle window is
    the ``percentile``-th inter-arrival observed (bounded).  Frozen
    instances idle past their window are evicted proactively -- they are
    unlikely to be reused soon, so their memory serves the cache better
    elsewhere.  Under memory pressure it falls back to evicting the
    instance with the *most* expired window (LRU-like but window-aware).
    """

    name: str = "hybrid-histogram"
    percentile: float = 0.95
    min_window: float = 10.0
    max_window: float = 600.0
    _last_arrival: Dict[str, float] = field(default_factory=dict)
    _intervals: Dict[str, List[float]] = field(default_factory=dict)
    _fastpath: bool = field(default_factory=fastpath.enabled)
    _heap: LazyHeap = field(default_factory=lambda: LazyHeap(_is_frozen))
    _synced: Optional[int] = None
    #: base function name -> frozen members last keyed under that base,
    #: so a request (which may resize that function's window) re-keys
    #: exactly the affected members instead of invalidating the heap.
    _by_base: Dict[str, Dict[int, FunctionInstance]] = field(default_factory=dict)

    def on_request(self, function: str, now: float) -> None:
        last = self._last_arrival.get(function)
        if last is not None and now > last:
            bisect.insort(self._intervals.setdefault(function, []), now - last)
            if len(self._intervals[function]) > 512:
                self._intervals[function] = self._intervals[function][-512:]
        self._last_arrival[function] = now
        members = self._by_base.get(function)
        if members:
            stale = []
            for iid, instance in members.items():
                if instance.state is InstanceState.FROZEN:
                    self._heap.set(iid, self._deadline_key(instance), instance)
                else:
                    stale.append(iid)
            for iid in stale:
                del members[iid]

    def window(self, function: str) -> float:
        """The keep-alive window for a function."""
        intervals = self._intervals.get(function)
        if not intervals:
            return self.max_window  # out-of-histogram: keep conservatively
        rank = min(len(intervals) - 1, int(len(intervals) * self.percentile))
        return min(self.max_window, max(self.min_window, intervals[rank]))

    def _expiry(self, instance: FunctionInstance, now: float) -> float:
        """Seconds past the window (negative while still inside it)."""
        base = instance.spec.name.split(".")[0]
        return instance.frozen_for(now) - self.window(base)

    def _deadline(self, instance: FunctionInstance, now: float) -> float:
        """When the instance's keep-alive window expires.  Both selection
        paths rank by this (not by :meth:`_expiry`) so they cannot break
        float-rounding ties differently; for frozen instances it is also
        ``now``-free, which is what makes it heap-cacheable."""
        base = instance.spec.name.split(".")[0]
        if instance.frozen_since is None:
            return now + self.window(base)  # not frozen: never expired
        return instance.frozen_since + self.window(base)

    def _deadline_key(self, instance: FunctionInstance) -> tuple:
        return (self._deadline(instance, 0.0), instance.id)

    def _sync(self, frozen) -> None:
        if self._synced == frozen.adds:
            return
        for i in frozen:
            base = i.spec.name.split(".")[0]
            self._by_base.setdefault(base, {})[i.id] = i
            self._heap.set(i.id, self._deadline_key(i), i)
        self._synced = frozen.adds

    def choose_victim(self, frozen, now):
        if not frozen:
            return None
        if _use_heap(self, frozen):
            self._sync(frozen)
            entry = self._heap.peek()
            return entry[1] if entry is not None else None
        # Earliest deadline = most expired window (now is a common offset).
        return min(frozen, key=lambda i: (self._deadline(i, now), i.id))

    def proactive_victims(self, frozen, now):
        if _use_heap(self, frozen):
            self._sync(frozen)
            victims = []
            popped = []
            while True:
                entry = self._heap.peek()
                if entry is None or entry[0][0] >= now:
                    break
                popped.append(self._heap.pop())
            for key, instance in popped:
                self._heap.set(instance.id, key, instance)
                victims.append(instance)
            victims.sort(key=lambda i: i.id)
            return victims
        return sorted(
            (i for i in frozen if self._deadline(i, now) < now),
            key=lambda i: i.id,
        )
