"""Machine-wide shared library pool.

OpenWhisk runs every function of a language on the same runtime image, so
``libjvm.so`` / the node binary are file-backed mappings whose pages all
containers share (§3.1 measures USS precisely to exclude them).  The pool
holds the :class:`MappedFile` objects and a host address space (the overlay
page cache) that keeps the library pages warm, so a lone instance's library
pages still count as shared -- matching a node that constantly runs other
functions of the same language.

AWS Lambda (Figure 11) does not share images between function deployments;
passing ``shared_files=None`` to a runtime gives it private copies instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Type

from repro.mem.layout import PROT_RX
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import VirtualAddressSpace
from repro.runtime.base import LibrarySpec, ManagedRuntime


class SharedLibraryPool:
    """Registry of shared library files plus a host space keeping them warm."""

    def __init__(
        self,
        physical: Optional[PhysicalMemory] = None,
        runtime_classes: Iterable[Type[ManagedRuntime]] = (),
        warm_host: bool = True,
    ) -> None:
        """``warm_host=False`` registers the files for sharing without
        keeping a warm cache -- sharing then only happens between live
        instances (the Figure 8 setup, where a single fft container's
        library pages are genuinely private)."""
        self.physical = physical if physical is not None else PhysicalMemory()
        self.files: Dict[str, MappedFile] = {}
        self.warm_host = warm_host
        self._host = VirtualAddressSpace("[library-host]", self.physical)
        for cls in runtime_classes:
            for spec in cls.default_libraries:
                self.register(spec)

    def register(self, spec: LibrarySpec) -> MappedFile:
        """Add a library to the pool and (optionally) page its hot region in."""
        if spec.path in self.files:
            return self.files[spec.path]
        file = MappedFile(spec.path, spec.size)
        self.files[spec.path] = file
        if self.warm_host:
            mapping = self._host.mmap(
                spec.size, prot=PROT_RX, file=file, name=spec.path
            )
            self._host.touch(
                mapping.start, int(spec.size * spec.touched_fraction), write=False
            )
        return file

    def host_cache_bytes(self) -> int:
        """Bytes the warm cache itself holds (shared across all users)."""
        from repro.mem.accounting import measure

        return measure(self._host).rss
