"""Multi-node FaaS cluster: a front-end router over invoker nodes.

The paper's single-server experiments extend naturally to a cluster: each
invoker node runs its own instance cache (and its own Desiccant), and a
front-end assigns requests to nodes.  Warm starts only happen on a node
that already caches the function, so the routing policy interacts directly
with the frozen-garbage economics:

* ``round-robin``       -- spreads every function across all nodes: maximum
  balance, minimum warm locality;
* ``least-assigned``    -- balances by assigned request count;
* ``warm-affinity``     -- hashes each function to a home node (consistent
  assignment), concentrating its warm instances;
* ``least-loaded-live`` -- routes on *live* state at arrival time: prefer
  a node already caching the function warm, break ties (and the cold
  case) by current cache pressure.  Only possible because the cluster is
  a true time-interleaved simulation.

Serially, all nodes share one :class:`~repro.sim.kernel.SimKernel`, so
:meth:`Cluster.run` drives a single globally time-ordered event timeline
across the whole cluster and collects outcomes in completion order from
the bus.  The static schedulers route at submit time (their decisions
depend only on the arrival sequence); ``least-loaded-live`` defers each
routing decision into the simulation so it observes current node state.

Sharded execution
-----------------
``Cluster.run(shards=N)`` (and :func:`repro.trace.replay.cluster_replay`)
instead partitions the nodes across ``N`` worker processes via
:mod:`repro.sim.shard`.  Each shard is a :class:`ClusterShardHost`: its
nodes share one private kernel, and the only cross-node interaction --
front-end routing -- stays in the coordinator
(:class:`ShardedClusterSession`), which feeds routed arrivals to shards
in conservative time epochs.  Node simulations are state-independent
(each node owns its physical memory, library pool, and instances), so
partitioning changes nothing observable: per-node canonical event traces
are byte-identical to the serial run's and merge back into the same
global order.  ``least-loaded-live`` is the exception -- sharded, it
routes from epoch-boundary load digests rather than live arrival-time
state, which is deterministic and shard-count-invariant but *not* the
serial policy; the digest gate therefore runs on static schedulers.

The session speaks the *batched* window protocol by default: epoch
horizons are computed adaptively from the submission log's arrival
density (:func:`repro.sim.shard.adaptive_horizons`), multiple epochs are
granted per framed pipe message, function definitions are interned
per shard (names travel per arrival, each definition's body ships
once), and load digests are shipped only when a deferred scheduler
actually consumes them -- reduced worker-side to fixed-size summaries
(``used_bytes`` plus sorted crc32s of the warm function names).
``protocol="unbatched"`` reproduces the PR 5 wire behaviour (fixed
grid, one epoch per message, full definitions per arrival, loads every
epoch) as the comparison leg for the coordination-cost benchmarks.
"""

from __future__ import annotations

import copy
import hashlib
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import procenv
from repro.faas.instance import InstanceState
from repro.memo import cache as memo_cache
from repro.memo import toggle as memo_toggle
from repro.faas.platform import FaasPlatform, PlatformConfig, Request, RequestOutcome
from repro.sim import Event, EventTraceSink, REQUEST_DONE, SimKernel
from repro.sim.shard import adaptive_horizons, epoch_horizons, make_pool
from repro.workloads.model import FunctionDefinition

SCHEDULERS = ("round-robin", "least-assigned", "warm-affinity", "least-loaded-live")

#: Schedulers whose decisions read live simulation state, so routing must
#: happen *inside* the timeline (at each request's arrival time).
DEFERRED_SCHEDULERS = ("least-loaded-live",)

#: Wire protocols a sharded session can speak (see the module docstring).
SHARD_PROTOCOLS = ("batched", "unbatched")


def warm_name_digest(name: str) -> int:
    """The fixed-size stand-in for a warm function name in load digests.

    ``zlib.crc32`` of the utf-8 name: stable across processes (unlike
    builtin ``hash``), 4 bytes on the wire instead of an arbitrary
    string.  Routing compares digests for membership only, so a crc
    collision could at worst mark one extra node warm -- deterministic
    and identical at every shard count either way.
    """
    return zlib.crc32(name.encode("utf-8"))


@dataclass
class ClusterConfig:
    """Cluster shape and routing."""

    nodes: int = 4
    scheduler: str = "warm-affinity"
    node_config: PlatformConfig = field(default_factory=PlatformConfig)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; pick from {SCHEDULERS}"
            )


@dataclass
class ClusterStats:
    """Aggregated outcome of one cluster run."""

    completed: int
    cold_boots: int
    cold_boot_rate: float
    evictions: int
    p50_latency: float
    p99_latency: float
    per_node_requests: List[int]

    @property
    def imbalance(self) -> float:
        """max/mean assigned requests (1.0 == perfectly balanced)."""
        if not self.per_node_requests or sum(self.per_node_requests) == 0:
            return 1.0
        mean = sum(self.per_node_requests) / len(self.per_node_requests)
        return max(self.per_node_requests) / mean if mean else 1.0


class FrontEndRouter:
    """Arrival-order routing state, shared by serial and sharded front-ends.

    The static schedulers' decisions are a pure function of the arrival
    sequence and this object's counters, which is exactly why a sharded
    coordinator can replay them without any live node state.  For
    ``least-loaded-live`` the router offers :meth:`route_from_loads`, the
    digest-fed variant used at epoch boundaries.
    """

    def __init__(self, nodes: int, scheduler: str) -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}"
            )
        self.node_count = nodes
        self.scheduler = scheduler
        #: Requests assigned per node so far (routing state and statistic).
        self.assigned: List[int] = [0] * nodes
        self._rr_next = 0

    def note(self, node: int) -> None:
        """Record an assignment decided elsewhere (live routing)."""
        self.assigned[node] += 1

    def route_static(self, definition: FunctionDefinition) -> int:
        """One static routing decision; advances the router's state."""
        scheduler = self.scheduler
        if scheduler == "round-robin":
            node = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.node_count
        elif scheduler == "least-assigned":
            node = min(range(self.node_count), key=lambda i: self.assigned[i])
        elif scheduler == "warm-affinity":
            node = zlib.crc32(definition.name.encode()) % self.node_count
        else:
            raise ValueError(
                f"{scheduler!r} routes on live state; use route_from_loads "
                "(sharded) or Cluster.route (serial)"
            )
        self.assigned[node] += 1
        return node

    def route_from_loads(
        self, definition: FunctionDefinition, loads: Optional[Dict[int, dict]]
    ) -> int:
        """``least-loaded-live`` against epoch-boundary load digests.

        ``loads`` maps node id to the last epoch report's digest:
        ``used_bytes`` plus ``warm``, the sorted ``zlib.crc32`` values of
        the node's warm function names (:func:`warm_name_digest`) -- a
        fixed-size summary reduced worker-side instead of a per-node
        name dump.  The decision depends only on the digests and the
        router's own counters -- the same for every shard count -- but
        it observes node state one epoch stale, so it is a deliberate
        approximation of the serial policy, not a replica of it.
        """
        stages = {warm_name_digest(stage.name) for stage in definition.stages}
        if loads:
            warm = [
                index
                for index in range(self.node_count)
                if stages.intersection(loads[index]["warm"])
            ]
            candidates = warm or range(self.node_count)
            node = min(
                candidates,
                key=lambda i: (loads[i]["used_bytes"], self.assigned[i], i),
            )
        else:
            node = min(range(self.node_count), key=lambda i: (self.assigned[i], i))
        self.assigned[node] += 1
        return node


class Cluster:
    """A set of invoker nodes behind a routing front-end.

    Every node is constructed over the cluster's shared kernel with a
    *deep copy* of the node config, so stateful knobs (a keep-alive
    policy's histograms, the provisioned map) never leak between nodes.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        manager_factory: Optional[Callable[[], object]] = None,
        kernel: Optional[SimKernel] = None,
    ) -> None:
        from repro.core.baselines import VanillaManager  # avoids module cycle

        self.config = config or ClusterConfig()
        self.kernel = kernel if kernel is not None else SimKernel(
            seed=self.config.node_config.seed
        )
        self._manager_factory = manager_factory or VanillaManager
        self.nodes: List[FaasPlatform] = []
        for index in range(self.config.nodes):
            node_config = copy.deepcopy(self.config.node_config)
            node_config.seed = self.config.node_config.seed + index
            self.nodes.append(
                FaasPlatform(
                    config=node_config,
                    manager=self._manager_factory(),
                    kernel=self.kernel,
                    node_id=index,
                )
            )
        self._router = FrontEndRouter(self.config.nodes, self.config.scheduler)
        #: Submission log: ``(time, definition, node, request_id)`` per
        #: arrival, in submit order (node/id are None for deferred
        #: scheduling).  A sharded run replays exactly these decisions.
        self._submitted: List[
            Tuple[float, FunctionDefinition, Optional[int], Optional[int]]
        ] = []
        #: Request outcomes across all nodes in global completion order.
        self.outcomes: List[RequestOutcome] = []
        self._done_subscription = self.kernel.bus.subscribe(
            self._on_request_done, kinds=(REQUEST_DONE,)
        )

    @property
    def _assigned(self) -> List[int]:
        return self._router.assigned

    def _on_request_done(self, event: Event) -> None:
        self.outcomes.append(event.data["outcome"])

    # -------------------------------------------------------------- routing

    def route(self, definition: FunctionDefinition) -> int:
        """Pick the node index for one request."""
        if self.config.scheduler == "least-loaded-live":
            node = self._route_least_loaded_live(definition)
            self._router.note(node)
            return node
        return self._router.route_static(definition)

    def _route_least_loaded_live(self, definition: FunctionDefinition) -> int:
        """Load-aware warm routing against *current* simulation state."""
        stages = {stage.name for stage in definition.stages}
        warm = [
            index
            for index, node in enumerate(self.nodes)
            if any(
                instance.spec.name in stages
                and (
                    instance.state is InstanceState.FROZEN
                    or (
                        instance.state is InstanceState.IDLE
                        and instance.invocation_count > 0
                    )
                )
                for instance in node.all_instances()
            )
        ]
        candidates = warm or range(len(self.nodes))
        return min(
            candidates,
            key=lambda i: (self.nodes[i].used_bytes(), self._assigned[i], i),
        )

    # -------------------------------------------------------------- running

    def submit(self, arrivals: Sequence[Tuple[float, FunctionDefinition]]) -> None:
        """Queue a batch of (time, definition) arrivals.

        Static schedulers route immediately; live schedulers schedule a
        front-end routing event at each arrival time so the decision sees
        the cluster as it is *then*.
        """
        if self.config.scheduler in DEFERRED_SCHEDULERS:
            for time, definition in arrivals:
                self.kernel.schedule(time, self._route_and_dispatch, (time, definition))
                self._submitted.append((time, definition, None, None))
            return
        for time, definition in arrivals:
            node = self.route(definition)
            request = Request(arrival=time, definition=definition)
            self.nodes[node].submit([request])
            self._submitted.append((time, definition, node, request.id))

    def _route_and_dispatch(self, payload: Tuple[float, FunctionDefinition]) -> None:
        time, definition = payload
        node = self.route(definition)
        self.nodes[node].submit([Request(arrival=time, definition=definition)])

    def run(
        self,
        shards: int = 1,
        epoch_seconds: float = 5.0,
        start_method: Optional[str] = None,
        protocol: str = "batched",
        window_epochs: int = 32,
        checkpoint_dir: Optional[str | Path] = None,
        checkpoint_every: Optional[int] = None,
        resume_from: Optional[str | Path] = None,
        fork: Optional[Dict[str, object]] = None,
    ) -> ClusterStats:
        """Drive the cluster to completion and aggregate.

        With ``shards=1`` (the default) this runs the shared kernel
        serially: events from all nodes interleave in global ``(time,
        seq)`` order, and ``self.outcomes`` accumulates request
        completions in that same order.  With ``shards=N`` the submitted
        arrivals are replayed through :class:`ShardedClusterSession` --
        node partitions run in worker processes, synchronized in
        conservative epochs of ``epoch_seconds`` of simulated time -- and
        the same statistics are aggregated from the workers' results
        (``self.outcomes`` stays empty; the local node objects never ran).

        Checkpointing (session path; forces the session even with
        ``shards=1``, running it on the in-process pool):

        * ``checkpoint_dir`` -- capture ``barrier-<pos>.ckpt`` at every
          window barrier (every ``checkpoint_every`` epochs when given).
        * ``resume_from`` -- restore a captured barrier and run only the
          remaining suffix; the submitted arrival log must be the one
          the capture recorded (``checkpoint-arrivals``).
        * ``fork`` -- with ``resume_from``: change
          ``manager_factory``/``scheduler``/``reseed`` at the barrier
          (see :meth:`ShardedClusterSession.restore`).
        """
        from repro.trace.stats import percentile  # avoids module cycle

        use_session = (
            shards > 1
            or checkpoint_dir is not None
            or checkpoint_every is not None
            or resume_from is not None
        )
        if fork and resume_from is None:
            raise ValueError("fork requires resume_from")
        if not use_session:
            self.kernel.run()
            outcomes = self.outcomes
            latencies = [o.latency for o in outcomes] or [0.0]
            cold = sum(o.cold_boots for o in outcomes)
            return ClusterStats(
                completed=len(outcomes),
                cold_boots=cold,
                cold_boot_rate=cold / len(outcomes) if outcomes else 0.0,
                evictions=sum(node.evictions for node in self.nodes),
                p50_latency=percentile(latencies, 50),
                p99_latency=percentile(latencies, 99),
                per_node_requests=list(self._assigned),
            )

        from repro.sim import checkpoint

        session = ShardedClusterSession(
            self.config,
            self._manager_factory,
            shards=shards,
            epoch_seconds=epoch_seconds,
            start_method=start_method,
            protocol=protocol,
            window_epochs=window_epochs,
        )
        deferred = self.config.scheduler in DEFERRED_SCHEDULERS
        if deferred:
            arrivals: Sequence[Tuple] = [
                (time, definition) for time, definition, _, _ in self._submitted
            ]
        else:
            arrivals = self._submitted
        digest = checkpoint.arrivals_digest(arrivals)
        on_barrier = None
        if checkpoint_dir is not None:
            directory = Path(checkpoint_dir)

            def on_barrier(s: "ShardedClusterSession", index: int, pos: int) -> None:
                s.capture(
                    directory / f"barrier-{pos:06d}.ckpt",
                    index,
                    pos,
                    meta={"arrivals_sha256": digest},
                )

        start_index = start_pos = 0
        try:
            if resume_from is not None:
                cursor = session.restore(resume_from, fork=fork)
                recorded = cursor["meta"].get("arrivals_sha256")
                if recorded is not None and recorded != digest:
                    raise checkpoint.CheckpointError(
                        "checkpoint-arrivals",
                        f"checkpoint {resume_from}",
                        "the submitted arrival log is not the one the "
                        "capture recorded",
                    )
                start_index, start_pos = cursor["index"], cursor["pos"]
            session.run_phase(
                arrivals,
                routed=not deferred,
                start_index=start_index,
                start_pos=start_pos,
                checkpoint_every=checkpoint_every,
                on_barrier=on_barrier,
            )
            assigned = (
                list(session.router.assigned) if deferred else list(self._assigned)
            )
            nodes = session.finish()
        finally:
            session.close()
        outcomes = [pair for info in nodes.values() for pair in info["outcomes"]]
        latencies = [latency for latency, _ in outcomes] or [0.0]
        cold = sum(cold_boots for _, cold_boots in outcomes)
        return ClusterStats(
            completed=len(outcomes),
            cold_boots=cold,
            cold_boot_rate=cold / len(outcomes) if outcomes else 0.0,
            evictions=sum(info["evictions"] for info in nodes.values()),
            p50_latency=percentile(latencies, 50),
            p99_latency=percentile(latencies, 99),
            per_node_requests=assigned,
        )

    def destroy(self) -> None:
        for node in self.nodes:
            for instance in node.all_instances():
                instance.destroy()


# ------------------------------------------------------------------ shards


def partition_nodes(nodes: int, shards: int) -> List[Tuple[int, ...]]:
    """Contiguous, size-balanced node partitions (shard k gets
    ``nodes[k*n//S:(k+1)*n//S]``); every node lands in exactly one shard."""
    shards = max(1, min(shards, nodes))
    return [
        tuple(range(k * nodes // shards, (k + 1) * nodes // shards))
        for k in range(shards)
    ]


@dataclass
class ClusterShardSpec:
    """Everything a worker needs to build its shard (must pickle)."""

    shard: int
    #: Kernel seed (the cluster-wide base seed).
    seed: int
    node_ids: Tuple[int, ...]
    #: Per-node platform configs, seeds already offset by node id.
    node_configs: Dict[int, PlatformConfig]
    manager_factory: Callable[[], object]
    #: Stream per-node canonical traces into this directory once the
    #: ``start-trace`` mark arrives (None = never trace).
    trace_dir: Optional[str] = None
    #: Roll canonical records into segmented-archive form here (shared
    #: across shards: each worker writes only its own nodes' segments,
    #: the coordinator finalizes).  Independent of ``trace_dir``.
    archive_dir: Optional[str] = None
    archive_bucket_seconds: float = 60.0
    #: Stream per-node telemetry CSVs here, flushed at every epoch barrier.
    telemetry_dir: Optional[str] = None
    telemetry_interval: float = 1.0
    #: Bound each node's in-memory telemetry ring (rows still stream out).
    telemetry_max_samples: Optional[int] = 512
    #: Dump a cProfile of this worker here (None = no profiling).
    profile_path: Optional[str] = None
    #: Include per-node load digests in every epoch report.  Only the
    #: deferred schedulers (and the unbatched comparison protocol) pay
    #: for them; static-scheduler sessions ship none at all.
    need_loads: bool = False
    #: Ship loads in the PR 5 wire shape -- the full sorted warm-name
    #: string list plus ``frozen_bytes``/``instances`` per node -- instead
    #: of the reduced crc32 digests.  Set only by the ``unbatched``
    #: comparison protocol so its pipe-byte accounting reflects what the
    #: per-epoch protocol actually cost.
    legacy_loads: bool = False


class ClusterShardHost:
    """Worker-side shard: a partition of cluster nodes on one kernel.

    Implements the :mod:`repro.sim.shard` host protocol.  The shard's
    nodes share a private kernel seeded exactly like the serial
    cluster's, and each node's platform config carries the same
    node-offset seed -- so every node computes the same event timeline it
    would have computed serially, just interleaved with fewer peers.
    """

    def __init__(self, spec: ClusterShardSpec) -> None:
        # Lazy imports: this constructor is the worker process entry.
        from repro.faas.telemetry import TelemetryRecorder

        self.spec = spec
        self.kernel = SimKernel(seed=spec.seed)
        self.platforms: Dict[int, FaasPlatform] = {}
        for node_id in spec.node_ids:
            self.platforms[node_id] = FaasPlatform(
                config=spec.node_configs[node_id],
                manager=spec.manager_factory(),
                kernel=self.kernel,
                node_id=node_id,
            )
        self._sinks: Dict[int, EventTraceSink] = {}
        self._recorders: Dict[int, object] = {}
        self._archive = None
        #: Interned definitions, registered once per shard via the
        #: window preamble; arrivals then carry names only.
        self._definitions: Dict[str, FunctionDefinition] = {}
        #: Host wall-clock seconds this worker spent advancing its
        #: kernel -- the worker-side half of ``coordination_overhead``.
        self._busy_wall = 0.0
        if spec.telemetry_dir is not None:
            for node_id, platform in self.platforms.items():
                self._recorders[node_id] = TelemetryRecorder(
                    platform,
                    interval=spec.telemetry_interval,
                    max_samples=spec.telemetry_max_samples,
                    stream_csv=Path(spec.telemetry_dir) / f"node{node_id:03d}.csv",
                )
        self._profiler = None
        if spec.profile_path is not None:
            import cProfile

            self._profiler = cProfile.Profile()

    # ----------------------------------------------------------- protocol

    def window_begin(self, preamble: Dict[str, FunctionDefinition]) -> None:
        """Register this window's newly interned function definitions.

        The coordinator ships each definition's body at most once per
        shard (the window grant's preamble); every later arrival for it
        carries only the name.
        """
        self._definitions.update(preamble)

    def begin_epoch(self, payload: Sequence[Tuple[int, float, object, int]]) -> None:
        """Accept one epoch's routed arrivals: ``(node, time, fn, id)``.

        ``fn`` is an interned definition *name* under the batched
        protocol, or a full :class:`FunctionDefinition` under the
        unbatched comparison protocol -- both resolve to the same
        submission.
        """
        for node_id, time, fn, request_id in payload:
            definition = self._definitions[fn] if isinstance(fn, str) else fn
            self.platforms[node_id].submit(
                [Request(arrival=time, definition=definition, id=request_id)]
            )

    def advance(self, until: Optional[float]) -> None:
        if self._profiler is not None:
            self._profiler.enable()
        started = procenv.wall_clock()
        try:
            self.kernel.run(until)
        finally:
            self._busy_wall += procenv.wall_clock() - started
            if self._profiler is not None:
                self._profiler.disable()

    def epoch_end(self, horizon: Optional[float]) -> None:
        """Per-epoch bounded-memory flush point and oracle cadence.

        Runs after *every* epoch of a window (not just at the window
        barrier), so batching changes neither the trace/telemetry flush
        cadence nor -- with ``REPRO_CHECK=1`` -- how often each node's
        invariant oracle sweeps its full platform.
        """
        for sink in self._sinks.values():
            sink.flush()
        for recorder in self._recorders.values():
            recorder.flush()
        if self._archive is not None:
            self._archive.flush()
            if any(p.oracle is not None for p in self.platforms.values()):
                from repro.check import check_archive_writer

                check_archive_writer(self._archive)
        for platform in self.platforms.values():
            if platform.oracle is not None:
                platform.oracle.check_now()

    def epoch_report(self, horizon: Optional[float]) -> Dict[str, object]:
        """Snapshot the shard at the window barrier: clock, conservation,
        and -- only when the spec asks for them -- per-node load digests."""
        conservation = {
            "frames_used_bytes": 0,
            "swap_pages": 0,
            "swap_outs": 0,
            "swap_ins": 0,
            "swap_discards": 0,
        }
        loads: Dict[int, dict] = {}
        for node_id, platform in self.platforms.items():
            physical = platform.physical
            conservation["frames_used_bytes"] += physical.used_bytes
            conservation["swap_pages"] += physical.swap.pages
            conservation["swap_outs"] += physical.swap.total_swap_outs
            conservation["swap_ins"] += physical.swap.total_swap_ins
            conservation["swap_discards"] += physical.swap.total_discards
            if self.spec.need_loads:
                warm_names = {
                    instance.spec.name
                    for instance in platform.all_instances()
                    if instance.state is InstanceState.FROZEN
                    or (
                        instance.state is InstanceState.IDLE
                        and instance.invocation_count > 0
                    )
                }
                if self.spec.legacy_loads:
                    loads[node_id] = {
                        "used_bytes": platform.used_bytes(),
                        "frozen_bytes": platform.frozen_bytes(),
                        "instances": len(platform.all_instances()),
                        "warm": sorted(warm_names),
                    }
                else:
                    loads[node_id] = {
                        "used_bytes": platform.used_bytes(),
                        "warm": sorted(
                            warm_name_digest(name) for name in warm_names
                        ),
                    }
        return {
            "shard": self.spec.shard,
            "clock": self.kernel.now,
            "events": self.kernel.events_processed,
            "loads": loads,
            "conservation": conservation,
        }

    # --------------------------------------------------------- checkpoints

    def reopen_outputs(self) -> None:
        """Re-attach streamed outputs after a checkpoint restore.

        Trace and telemetry streams are truncated back to their barrier
        offsets and reopened for append.  Archive segments the previous
        life closed *after* the barrier are pruned: their ``(bucket,
        node)`` cells are absent from the restored writer's bookkeeping,
        so leaving the files behind would poison the shared root with
        orphans no footer accounts for.
        """
        for sink in self._sinks.values():
            sink.reopen_outputs()
        for recorder in self._recorders.values():
            recorder.reopen_outputs()
        if self._archive is not None:
            from repro.trace.archive import parse_segment_name

            known = {footer["name"] for footer in self._archive._closed}
            known.update(
                segment.path.name for segment in self._archive._open.values()
            )
            nodes = set(self.spec.node_ids)
            for path in sorted(self._archive.root.glob("seg-*")):
                parsed = parse_segment_name(path.name)
                if (
                    parsed is not None
                    and parsed[1] in nodes
                    and path.name not in known
                ):
                    path.unlink()

    def apply_fork(self, settings: Dict[str, object]) -> None:
        """Apply a fork's changed policy/parameters at the restore barrier.

        ``manager_factory`` swaps every node's memory manager
        (:meth:`FaasPlatform.set_manager`); cache and instance state
        carry over, so the fork explores "what if the policy had changed
        *here*".  ``reseed`` re-derives every existing kernel RNG stream
        via :meth:`~repro.sim.rng.RngStream.split` -- mutated in place,
        so every component holding a stream reference lands on the new
        sequence -- putting the forked leg on independent randomness
        from the barrier on.  Without ``reseed`` an unchanged fork
        replays the captured run bit for bit.
        """
        unknown = set(settings) - {"manager_factory", "reseed"}
        if unknown:
            raise ValueError(f"unknown fork settings {sorted(unknown)!r}")
        factory = settings.get("manager_factory")
        if factory is not None:
            self.spec.manager_factory = factory
            for platform in self.platforms.values():
                platform.set_manager(factory())
        label = settings.get("reseed")
        if label:
            for stream in self.kernel._rngs.values():
                stream.setstate(stream.split(str(label)).getstate())

    def memo_flush(self) -> None:
        """Materialize every deferred effect-cache restore on this shard.

        Called by :func:`repro.sim.checkpoint.snapshot_host` before the
        host pickles: a parked memo entry holds payload bytes whose
        boundary tokens resolve against *this* process's live objects,
        so the snapshot materializes them first and carries only plain
        simulation state.  The process-local cache itself is never
        serialized -- a restored run starts cold and re-simulates its
        misses organically, which is byte-identical by construction.
        """
        for platform in self.platforms.values():
            for instance in platform.all_instances():
                runtime = getattr(instance, "runtime", None)
                if runtime is not None:
                    runtime._memo_materialize()

    def mark(self, name: str) -> None:
        if name == "reset-metrics":
            for platform in self.platforms.values():
                platform.reset_metrics()
            # Same warmup-boundary convention as the serial leg: the
            # effect cache keeps its entries (a warm cache *is* the
            # steady state being measured) but its counters restart
            # alongside the platform meters.
            memo_cache.drain_stats()
        elif name == "start-trace":
            if self.spec.trace_dir is None and self.spec.archive_dir is None:
                return
            if self.spec.archive_dir is not None:
                from repro.trace.archive import ArchiveWriter  # worker-side lazy

                # One writer per worker, shared by its node sinks: every
                # (bucket, node) segment still has exactly one producer,
                # so the shared root fills with byte-identical segments
                # no matter how nodes were partitioned.
                self._archive = ArchiveWriter(
                    self.spec.archive_dir,
                    bucket_seconds=self.spec.archive_bucket_seconds,
                )
            for node_id, platform in self.platforms.items():
                # Node-canonical, streamed: seq is the sink's own dense
                # counter and lines go straight to disk, so worker memory
                # stays flat and the records do not depend on shard count.
                self._sinks[node_id] = EventTraceSink(
                    platform.bus,
                    node=node_id,
                    path=(
                        Path(self.spec.trace_dir) / f"node{node_id:03d}.jsonl"
                        if self.spec.trace_dir is not None
                        else None
                    ),
                    normalize_seq=True,
                    store=False,
                    archive=self._archive,
                )
        elif name == "stop-trace":
            for sink in self._sinks.values():
                sink.detach()
        else:
            raise ValueError(f"unknown mark {name!r}")

    def finalize(self) -> Dict[str, object]:
        """Close streams, final oracle sweep, and ship per-node results."""
        nodes: Dict[int, dict] = {}
        for node_id, platform in self.platforms.items():
            sink = self._sinks.get(node_id)
            if sink is not None:
                sink.detach()
            recorder = self._recorders.get(node_id)
            if recorder is not None:
                recorder.detach()
            if platform.oracle is not None:
                platform.oracle.finish()
            nodes[node_id] = {
                "completed": len(platform.outcomes),
                "outcomes": [
                    (outcome.latency, outcome.cold_boots)
                    for outcome in platform.outcomes
                ],
                "cold_boots": platform.cold_boots,
                "warm_starts": platform.warm_starts,
                "evictions": platform.evictions,
                "overcommits": platform.overcommits,
                "cpu_busy": dict(platform.cpu.busy),
                "trace_path": (
                    str(Path(self.spec.trace_dir) / f"node{node_id:03d}.jsonl")
                    if sink is not None and self.spec.trace_dir is not None
                    else None
                ),
                "trace_events": sink.count if sink is not None else 0,
                "telemetry_path": str(
                    Path(self.spec.telemetry_dir) / f"node{node_id:03d}.csv"
                )
                if recorder is not None
                else None,
            }
        archive_segments: List[Dict[str, object]] = []
        archive_events = 0
        if self._archive is not None:
            # No manifest: this worker wrote only its own nodes' segments.
            # Ship their footers (the out-of-pipe trace manifest: name,
            # payload sha256, event count per segment) so the coordinator
            # can finalize the shared root without re-reading every
            # segment it already trusts.
            summary = self._archive.close(manifest=False)
            archive_segments = list(summary["segments"])
            archive_events = summary["events"]
            self._archive = None
        if self._profiler is not None:
            self._profiler.dump_stats(self.spec.profile_path)
        return {
            "shard": self.spec.shard,
            "events": self.kernel.events_processed,
            "busy_wall_seconds": self._busy_wall,
            "archive_segments": archive_segments,
            "archive_events": archive_events,
            "profile_path": self.spec.profile_path,
            # Per-shard effect-cache counters (measurement window).  Each
            # worker owns a private cache and they never coordinate, so
            # shipping raw counters lets the coordinator sum them without
            # double counting.
            "memo": memo_cache.stats() if memo_toggle.enabled() else None,
            "nodes": nodes,
        }


def _session_fingerprint(
    config: ClusterConfig,
    manager_factory: Callable[[], object],
    shards: int,
    epoch_seconds: float,
    protocol: str,
    window_epochs: int,
) -> str:
    """Digest of every parameter that shapes a session's timeline.

    Two sessions with equal fingerprints compute identical epoch
    structures and routing decisions for the same arrival log, which is
    the precondition for resuming one from the other's checkpoint.
    Policy/manager objects enter by *name* (their repr embeds object
    addresses, which differ every process).
    """
    node_config = dict(vars(config.node_config))
    policy = node_config.get("eviction_policy")
    if policy is not None:
        node_config["eviction_policy"] = getattr(
            policy, "name", type(policy).__name__
        )
    description = {
        "nodes": config.nodes,
        "scheduler": config.scheduler,
        "node_config": node_config,
        "manager": getattr(
            manager_factory, "__qualname__", str(manager_factory)
        ),
        "shards": shards,
        "epoch_seconds": epoch_seconds,
        "protocol": protocol,
        "window_epochs": window_epochs,
    }
    return hashlib.sha256(
        json.dumps(description, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


class ShardedClusterSession:
    """Coordinator of one sharded cluster run.

    Owns the shard pool, the front-end router, and the conservative epoch
    loop.  All scheduling decisions are made here -- deterministically,
    from the arrival sequence plus previous-epoch load digests -- so the
    workers never interact with each other and the epoch horizon is a
    safe lower bound on cross-shard event times.

    With ``shards=1`` (or ``processes=False``) the identical protocol
    drives in-process hosts: that *serial twin* is the reference leg of
    the digest gate, reducing the serial/sharded comparison to exactly
    one variable -- how nodes were partitioned across kernels.

    ``protocol="batched"`` (the default) grants up to ``window_epochs``
    epochs per pipe message, computes adaptive horizons from the
    submission log, interns definitions per shard, and ships load
    digests only when routing consumes them.  Deferred schedulers force
    an effective window of one epoch regardless of ``window_epochs``:
    their routing feeds on previous-epoch load digests, so granting
    epoch *k+1* before absorbing epoch *k*'s report would break
    conservative-horizon safety.  ``protocol="unbatched"`` reproduces
    the PR 5 wire behaviour (fixed grid, window of one, full definition
    objects per arrival, loads every epoch) as the comparison leg the
    coordination-cost benchmarks measure against.
    """

    def __init__(
        self,
        config: ClusterConfig,
        manager_factory: Optional[Callable[[], object]] = None,
        shards: int = 1,
        epoch_seconds: float = 5.0,
        processes: Optional[bool] = None,
        protocol: str = "batched",
        window_epochs: int = 32,
        trace_dir: Optional[str] = None,
        archive_dir: Optional[str] = None,
        archive_bucket_seconds: float = 60.0,
        telemetry_dir: Optional[str] = None,
        telemetry_interval: float = 1.0,
        telemetry_max_samples: Optional[int] = 512,
        profile_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        from repro.core.baselines import VanillaManager  # avoids module cycle

        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if protocol not in SHARD_PROTOCOLS:
            raise ValueError(
                f"unknown shard protocol {protocol!r}; pick from {SHARD_PROTOCOLS}"
            )
        if window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")
        factory = manager_factory or VanillaManager
        self.config = config
        self.epoch_seconds = float(epoch_seconds)
        self.protocol = protocol
        #: Epochs granted per pipe message.  Deferred schedulers and the
        #: unbatched protocol run a window of one (see class docstring).
        self.window_epochs = (
            1
            if protocol == "unbatched"
            or config.scheduler in DEFERRED_SCHEDULERS
            else window_epochs
        )
        need_loads = (
            protocol == "unbatched" or config.scheduler in DEFERRED_SCHEDULERS
        )
        legacy_loads = protocol == "unbatched"
        partitions = partition_nodes(config.nodes, shards)
        self.shards = len(partitions)
        self.router = FrontEndRouter(config.nodes, config.scheduler)
        self._shard_of: Dict[int, int] = {}
        specs = []
        for shard, node_ids in enumerate(partitions):
            node_configs = {}
            for node_id in node_ids:
                node_config = copy.deepcopy(config.node_config)
                node_config.seed = config.node_config.seed + node_id
                node_configs[node_id] = node_config
                self._shard_of[node_id] = shard
            specs.append(
                ClusterShardSpec(
                    shard=shard,
                    seed=config.node_config.seed,
                    node_ids=node_ids,
                    node_configs=node_configs,
                    manager_factory=factory,
                    trace_dir=trace_dir,
                    archive_dir=archive_dir,
                    archive_bucket_seconds=archive_bucket_seconds,
                    telemetry_dir=telemetry_dir,
                    telemetry_interval=telemetry_interval,
                    telemetry_max_samples=telemetry_max_samples,
                    profile_path=(
                        str(Path(profile_dir) / f"shard{shard}.prof")
                        if profile_dir is not None
                        else None
                    ),
                    need_loads=need_loads,
                    legacy_loads=legacy_loads,
                )
            )
        if processes is None:
            processes = self.shards > 1
        self.pool = make_pool(
            ClusterShardHost,
            specs,
            processes=processes,
            start_method=start_method,
            compress=protocol == "batched",
        )
        #: Stable digest of everything that shapes this session's
        #: timeline; a checkpoint captured by a session with a different
        #: fingerprint is refused at restore (``checkpoint-config``).
        self._fingerprint = _session_fingerprint(
            config, factory, self.shards, self.epoch_seconds,
            protocol, self.window_epochs,
        )
        self._request_ids = 0
        self._loads: Optional[Dict[int, dict]] = None
        #: Function names already interned on each shard: a definition's
        #: body ships (via window preamble) only on its shard's first
        #: arrival; every arrival after that carries the name alone.
        self._shipped: List[set] = [set() for _ in range(self.shards)]
        #: Max shard clock after the last barrier (== the global last
        #: event time, identical for every shard count).
        self.clock = 0.0
        self.epochs = 0
        self.events = 0
        #: Filled by :meth:`finish` (see there).
        self.worker_busy_seconds = 0.0
        self.archive_footers: List[Dict[str, object]] = []
        self.archive_events = 0
        #: Summed per-shard effect-cache counters (memo runs only).
        self.memo_stats: Optional[Dict[str, int]] = None

    # --------------------------------------------------------- accounting

    @property
    def round_trips(self) -> int:
        """Coordinator barrier exchanges so far (windows + marks + finish)."""
        return self.pool.round_trips

    @property
    def pipe_bytes(self) -> int:
        """Exact framed bytes moved through the worker pipes (both ways)."""
        return self.pool.pipe_bytes

    # ------------------------------------------------------------- routing

    def route(self, definition: FunctionDefinition) -> int:
        if self.config.scheduler in DEFERRED_SCHEDULERS:
            return self.router.route_from_loads(definition, self._loads)
        return self.router.route_static(definition)

    # ------------------------------------------------------------- driving

    def phase_horizons(
        self, times: Sequence[float], start: float, end: float
    ) -> List[Optional[float]]:
        """The phase's epoch horizons, drain epoch included.

        Batched protocol: density-adaptive
        (:func:`repro.sim.shard.adaptive_horizons`).  Unbatched: the PR 5
        fixed grid, extended by whole grid cells until every arrival time
        is strictly below the last horizon (the adaptive path guarantees
        this itself).  The trailing ``None`` is the drain-to-quiescence
        epoch every phase ends with.  A pure function of the submission
        log, so any shard count derives the identical epoch structure.
        """
        if self.protocol == "batched":
            horizons: List[Optional[float]] = list(
                adaptive_horizons(times, start, end, self.epoch_seconds)
            )
        else:
            horizons = list(epoch_horizons(start, end, self.epoch_seconds))
            last = max(times, default=start)
            cells = round((horizons[-1] - start) / self.epoch_seconds)
            while horizons[-1] <= last:
                cells += 1
                horizons.append(start + cells * self.epoch_seconds)
        horizons.append(None)
        return horizons

    def run_phase(
        self,
        arrivals: Sequence[Tuple],
        start: float = 0.0,
        end: Optional[float] = None,
        routed: bool = False,
        start_index: int = 0,
        start_pos: int = 0,
        checkpoint_every: Optional[int] = None,
        on_barrier: Optional[Callable[["ShardedClusterSession", int, int], None]] = None,
    ) -> None:
        """Feed one arrival batch through conservative epochs, then drain.

        ``arrivals`` must be in submit order with nondecreasing times
        (what :class:`~repro.trace.generator.TraceGenerator` produces):
        items are ``(time, definition)`` -- routed here -- or, with
        ``routed=True``, pre-decided ``(time, definition, node,
        request_id)`` tuples from a :class:`Cluster` submission log.
        The phase's horizons come from :meth:`phase_horizons`; windows of
        up to ``window_epochs`` of them are granted per pipe message,
        each epoch's arrivals routed coordinator-side into per-shard
        payloads.  The final (``None``) horizon drains every shard to
        quiescence so in-flight requests complete before the phase
        returns -- it rides in the last window, costing no extra barrier.

        Checkpointing: ``on_barrier(session, index, pos)`` fires after
        every absorbed window, where ``(index, pos)`` are the arrival
        and horizon cursors a resume must restart from.
        ``checkpoint_every=N`` additionally caps windows so barriers
        land exactly at multiples of ``N`` epochs (and ``on_barrier``
        fires only there) -- the epoch structure itself never changes,
        only where the window boundaries fall, so a checkpointed run and
        an uninterrupted one execute the identical timeline.
        ``start_index``/``start_pos`` resume the phase mid-way after
        :meth:`restore`.
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        arrivals = list(arrivals)
        if end is None:
            end = arrivals[-1][0] if arrivals else start
        horizons = self.phase_horizons(
            [item[0] for item in arrivals], start, end
        )
        batched = self.protocol == "batched"
        index = start_index
        pos = start_pos
        while pos < len(horizons):
            limit = self.window_epochs
            if checkpoint_every is not None:
                boundary = (pos // checkpoint_every + 1) * checkpoint_every
                limit = min(limit, boundary - pos)
            window_horizons = horizons[pos : pos + limit]
            pos += len(window_horizons)
            payloads: List[List[List[Tuple]]] = [
                [[] for _ in window_horizons] for _ in range(self.shards)
            ]
            preambles: Optional[List] = (
                [{} for _ in range(self.shards)] if batched else None
            )
            for j, horizon in enumerate(window_horizons):
                if horizon is None:
                    continue  # the drain epoch carries no arrivals
                while index < len(arrivals) and arrivals[index][0] < horizon:
                    item = arrivals[index]
                    index += 1
                    if routed:
                        time, definition, node, request_id = item
                    else:
                        time, definition = item
                        node = self.route(definition)
                        self._request_ids += 1
                        request_id = self._request_ids
                    shard = self._shard_of[node]
                    if batched:
                        name = definition.name
                        if name not in self._shipped[shard]:
                            self._shipped[shard].add(name)
                            preambles[shard][name] = definition
                        payloads[shard][j].append((node, time, name, request_id))
                    else:
                        payloads[shard][j].append(
                            (node, time, definition, request_id)
                        )
            if preambles is not None:
                preambles = [preamble or None for preamble in preambles]
            self._absorb(
                self.pool.window(window_horizons, payloads, preambles),
                window_horizons[-1],
                epochs=len(window_horizons),
            )
            if on_barrier is not None and (
                checkpoint_every is None
                or pos % checkpoint_every == 0
                or pos == len(horizons)
            ):
                on_barrier(self, index, pos)

    def _absorb(
        self, reports: List[Dict], horizon: Optional[float], epochs: int = 1
    ) -> None:
        # Lazy import: repro.check reaches back into repro.faas.
        from repro.check import check_shard_conservation

        check_shard_conservation(reports, horizon)
        self.epochs += epochs
        self.clock = max(report["clock"] for report in reports)
        self.events = sum(report["events"] for report in reports)
        loads: Dict[int, dict] = {}
        for report in reports:
            loads.update(report["loads"])
        # The unbatched leg ships loads in the PR 5 wire shape (full name
        # strings); reduce to crc32 digests here so route_from_loads sees
        # one shape regardless of protocol.
        for load in loads.values():
            if load["warm"] and isinstance(load["warm"][0], str):
                load["warm"] = sorted(
                    warm_name_digest(name) for name in load["warm"]
                )
        self._loads = loads

    def mark(self, name: str) -> None:
        self.pool.mark(name)

    # --------------------------------------------------------- checkpoints

    def capture(
        self,
        path: str | Path,
        index: int,
        pos: int,
        meta: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Checkpoint the whole session at the current window barrier.

        ``(index, pos)`` are the :meth:`run_phase` cursors at the
        barrier (handed to ``on_barrier``); they ride in the payload so
        a resume restarts the phase loop exactly where it stood.  The
        payload holds the coordinator's full routing state plus one
        opaque host blob per shard (:meth:`ShardPool.snapshot`); the
        header meta carries the session fingerprint, the cursors, and
        whatever the caller adds (phase name, arrival-log digest).
        """
        from repro.sim import checkpoint

        state = {
            "coordinator": {
                "router": self.router,
                "request_ids": self._request_ids,
                "loads": self._loads,
                "shipped": [sorted(names) for names in self._shipped],
                "clock": self.clock,
                "epochs": self.epochs,
                "events": self.events,
            },
            "shards": self.pool.snapshot(),
            "cursor": {"index": index, "pos": pos},
        }
        full_meta: Dict[str, object] = {
            "session": self._fingerprint,
            "index": index,
            "pos": pos,
            "clock": self.clock,
            "epochs": self.epochs,
        }
        full_meta.update(meta or {})
        return checkpoint.dump(path, state, meta=full_meta)

    def restore(
        self, path: str | Path, fork: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """Rewind this (freshly built) session to a captured barrier.

        The session must have been constructed with the same parameters
        as the capturing one (enforced via the fingerprint --
        ``checkpoint-config``).  Returns ``{"index", "pos", "meta"}``:
        pass the cursors to :meth:`run_phase` as
        ``start_index``/``start_pos``.

        ``fork`` turns the restore into a what-if fork: ``scheduler``
        (coordinator-side; must stay on the same side of the
        static/deferred divide) plus ``manager_factory``/``reseed``
        (worker-side, see :meth:`ClusterShardHost.apply_fork`).  An
        empty/None fork replays the captured run bit for bit.
        """
        from repro.sim import checkpoint

        header, state = checkpoint.load(path)
        meta = header["meta"]
        if meta.get("session") != self._fingerprint:
            raise checkpoint.CheckpointError(
                "checkpoint-config",
                f"checkpoint {path}",
                "captured by a session with different parameters "
                "(config/shards/epoch/protocol fingerprint mismatch)",
            )
        fork = dict(fork or {})
        scheduler = fork.pop("scheduler", None)
        if scheduler is not None:
            if scheduler not in SCHEDULERS:
                raise ValueError(
                    f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}"
                )
            if (scheduler in DEFERRED_SCHEDULERS) != (
                self.config.scheduler in DEFERRED_SCHEDULERS
            ):
                raise ValueError(
                    "a fork cannot cross the static/deferred scheduler "
                    "boundary: the wire protocol differs"
                )
        coordinator = state["coordinator"]
        self.router = coordinator["router"]
        self._request_ids = coordinator["request_ids"]
        self._loads = coordinator["loads"]
        self._shipped = [set(names) for names in coordinator["shipped"]]
        self.clock = coordinator["clock"]
        self.epochs = coordinator["epochs"]
        self.events = coordinator["events"]
        self.pool.restore(state["shards"], fork=fork or None)
        if scheduler is not None:
            self.router.scheduler = scheduler
        cursor = state["cursor"]
        return {"index": cursor["index"], "pos": cursor["pos"], "meta": meta}

    def finish(self) -> Dict[int, dict]:
        """Collect per-node results from every shard, keyed by node id.

        Also gathers the coordination-cost leftovers: the slowest
        worker's busy wall (``worker_busy_seconds``, the subtrahend of
        ``coordination_overhead``) and the shipped archive-segment
        footers (``archive_footers``/``archive_events``), which
        :func:`repro.trace.archive.finalize_archive` consumes as the
        out-of-pipe trace manifest.
        """
        results = self.pool.finish()
        self.events = sum(result["events"] for result in results)
        self.worker_busy_seconds = max(
            (result.get("busy_wall_seconds", 0.0) for result in results),
            default=0.0,
        )
        self.archive_footers = sorted(
            (
                footer
                for result in results
                for footer in result.get("archive_segments", [])
            ),
            key=lambda footer: (footer["bucket"], footer["node"]),
        )
        self.archive_events = sum(
            result.get("archive_events", 0) for result in results
        )
        # Sum the per-shard effect-cache counters.  Each worker's cache
        # is private and drain-accounted, so addition is exact; the total
        # is shard-count-invariant in hits/misses (the same fingerprints
        # recur whatever the partition) though cached_bytes naturally
        # splits across processes.
        shard_memo = [
            result["memo"] for result in results if result.get("memo") is not None
        ]
        self.memo_stats = (
            {
                key: sum(stats[key] for stats in shard_memo)
                for key in shard_memo[0]
            }
            if shard_memo
            else None
        )
        nodes: Dict[int, dict] = {}
        for result in results:
            nodes.update(result["nodes"])
        return nodes

    def close(self) -> None:
        self.pool.close()
