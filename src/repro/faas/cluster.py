"""Multi-node FaaS cluster: a front-end router over invoker nodes.

The paper's single-server experiments extend naturally to a cluster: each
invoker node runs its own instance cache (and its own Desiccant), and a
front-end assigns requests to nodes.  Warm starts only happen on a node
that already caches the function, so the routing policy interacts directly
with the frozen-garbage economics:

* ``round-robin``       -- spreads every function across all nodes: maximum
  balance, minimum warm locality;
* ``least-assigned``    -- balances by assigned request count;
* ``warm-affinity``     -- hashes each function to a home node (consistent
  assignment), concentrating its warm instances;
* ``least-loaded-live`` -- routes on *live* state at arrival time: prefer
  a node already caching the function warm, break ties (and the cold
  case) by current cache pressure.  Only possible because the cluster is
  a true time-interleaved simulation.

Serially, all nodes share one :class:`~repro.sim.kernel.SimKernel`, so
:meth:`Cluster.run` drives a single globally time-ordered event timeline
across the whole cluster and collects outcomes in completion order from
the bus.  The static schedulers route at submit time (their decisions
depend only on the arrival sequence); ``least-loaded-live`` defers each
routing decision into the simulation so it observes current node state.

Sharded execution
-----------------
``Cluster.run(shards=N)`` (and :func:`repro.trace.replay.cluster_replay`)
instead partitions the nodes across ``N`` worker processes via
:mod:`repro.sim.shard`.  Each shard is a :class:`ClusterShardHost`: its
nodes share one private kernel, and the only cross-node interaction --
front-end routing -- stays in the coordinator
(:class:`ShardedClusterSession`), which feeds routed arrivals to shards
in conservative time epochs.  Node simulations are state-independent
(each node owns its physical memory, library pool, and instances), so
partitioning changes nothing observable: per-node canonical event traces
are byte-identical to the serial run's and merge back into the same
global order.  ``least-loaded-live`` is the exception -- sharded, it
routes from epoch-boundary load digests rather than live arrival-time
state, which is deterministic and shard-count-invariant but *not* the
serial policy; the digest gate therefore runs on static schedulers.
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faas.instance import InstanceState
from repro.faas.platform import FaasPlatform, PlatformConfig, Request, RequestOutcome
from repro.sim import Event, EventTraceSink, REQUEST_DONE, SimKernel
from repro.sim.shard import make_pool
from repro.workloads.model import FunctionDefinition

SCHEDULERS = ("round-robin", "least-assigned", "warm-affinity", "least-loaded-live")

#: Schedulers whose decisions read live simulation state, so routing must
#: happen *inside* the timeline (at each request's arrival time).
DEFERRED_SCHEDULERS = ("least-loaded-live",)


@dataclass
class ClusterConfig:
    """Cluster shape and routing."""

    nodes: int = 4
    scheduler: str = "warm-affinity"
    node_config: PlatformConfig = field(default_factory=PlatformConfig)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; pick from {SCHEDULERS}"
            )


@dataclass
class ClusterStats:
    """Aggregated outcome of one cluster run."""

    completed: int
    cold_boots: int
    cold_boot_rate: float
    evictions: int
    p50_latency: float
    p99_latency: float
    per_node_requests: List[int]

    @property
    def imbalance(self) -> float:
        """max/mean assigned requests (1.0 == perfectly balanced)."""
        if not self.per_node_requests or sum(self.per_node_requests) == 0:
            return 1.0
        mean = sum(self.per_node_requests) / len(self.per_node_requests)
        return max(self.per_node_requests) / mean if mean else 1.0


class FrontEndRouter:
    """Arrival-order routing state, shared by serial and sharded front-ends.

    The static schedulers' decisions are a pure function of the arrival
    sequence and this object's counters, which is exactly why a sharded
    coordinator can replay them without any live node state.  For
    ``least-loaded-live`` the router offers :meth:`route_from_loads`, the
    digest-fed variant used at epoch boundaries.
    """

    def __init__(self, nodes: int, scheduler: str) -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}"
            )
        self.node_count = nodes
        self.scheduler = scheduler
        #: Requests assigned per node so far (routing state and statistic).
        self.assigned: List[int] = [0] * nodes
        self._rr_next = 0

    def note(self, node: int) -> None:
        """Record an assignment decided elsewhere (live routing)."""
        self.assigned[node] += 1

    def route_static(self, definition: FunctionDefinition) -> int:
        """One static routing decision; advances the router's state."""
        scheduler = self.scheduler
        if scheduler == "round-robin":
            node = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.node_count
        elif scheduler == "least-assigned":
            node = min(range(self.node_count), key=lambda i: self.assigned[i])
        elif scheduler == "warm-affinity":
            node = zlib.crc32(definition.name.encode()) % self.node_count
        else:
            raise ValueError(
                f"{scheduler!r} routes on live state; use route_from_loads "
                "(sharded) or Cluster.route (serial)"
            )
        self.assigned[node] += 1
        return node

    def route_from_loads(
        self, definition: FunctionDefinition, loads: Optional[Dict[int, dict]]
    ) -> int:
        """``least-loaded-live`` against epoch-boundary load digests.

        ``loads`` maps node id to the last epoch report's digest
        (``used_bytes`` and the ``warm`` function-name list).  The
        decision depends only on the digests and the router's own
        counters -- the same for every shard count -- but it observes
        node state one epoch stale, so it is a deliberate approximation
        of the serial policy, not a replica of it.
        """
        stages = {stage.name for stage in definition.stages}
        if loads:
            warm = [
                index
                for index in range(self.node_count)
                if stages.intersection(loads[index]["warm"])
            ]
            candidates = warm or range(self.node_count)
            node = min(
                candidates,
                key=lambda i: (loads[i]["used_bytes"], self.assigned[i], i),
            )
        else:
            node = min(range(self.node_count), key=lambda i: (self.assigned[i], i))
        self.assigned[node] += 1
        return node


class Cluster:
    """A set of invoker nodes behind a routing front-end.

    Every node is constructed over the cluster's shared kernel with a
    *deep copy* of the node config, so stateful knobs (a keep-alive
    policy's histograms, the provisioned map) never leak between nodes.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        manager_factory: Optional[Callable[[], object]] = None,
        kernel: Optional[SimKernel] = None,
    ) -> None:
        from repro.core.baselines import VanillaManager  # avoids module cycle

        self.config = config or ClusterConfig()
        self.kernel = kernel if kernel is not None else SimKernel(
            seed=self.config.node_config.seed
        )
        self._manager_factory = manager_factory or VanillaManager
        self.nodes: List[FaasPlatform] = []
        for index in range(self.config.nodes):
            node_config = copy.deepcopy(self.config.node_config)
            node_config.seed = self.config.node_config.seed + index
            self.nodes.append(
                FaasPlatform(
                    config=node_config,
                    manager=self._manager_factory(),
                    kernel=self.kernel,
                    node_id=index,
                )
            )
        self._router = FrontEndRouter(self.config.nodes, self.config.scheduler)
        #: Submission log: ``(time, definition, node, request_id)`` per
        #: arrival, in submit order (node/id are None for deferred
        #: scheduling).  A sharded run replays exactly these decisions.
        self._submitted: List[
            Tuple[float, FunctionDefinition, Optional[int], Optional[int]]
        ] = []
        #: Request outcomes across all nodes in global completion order.
        self.outcomes: List[RequestOutcome] = []
        self._done_subscription = self.kernel.bus.subscribe(
            self._on_request_done, kinds=(REQUEST_DONE,)
        )

    @property
    def _assigned(self) -> List[int]:
        return self._router.assigned

    def _on_request_done(self, event: Event) -> None:
        self.outcomes.append(event.data["outcome"])

    # -------------------------------------------------------------- routing

    def route(self, definition: FunctionDefinition) -> int:
        """Pick the node index for one request."""
        if self.config.scheduler == "least-loaded-live":
            node = self._route_least_loaded_live(definition)
            self._router.note(node)
            return node
        return self._router.route_static(definition)

    def _route_least_loaded_live(self, definition: FunctionDefinition) -> int:
        """Load-aware warm routing against *current* simulation state."""
        stages = {stage.name for stage in definition.stages}
        warm = [
            index
            for index, node in enumerate(self.nodes)
            if any(
                instance.spec.name in stages
                and (
                    instance.state is InstanceState.FROZEN
                    or (
                        instance.state is InstanceState.IDLE
                        and instance.invocation_count > 0
                    )
                )
                for instance in node.all_instances()
            )
        ]
        candidates = warm or range(len(self.nodes))
        return min(
            candidates,
            key=lambda i: (self.nodes[i].used_bytes(), self._assigned[i], i),
        )

    # -------------------------------------------------------------- running

    def submit(self, arrivals: Sequence[Tuple[float, FunctionDefinition]]) -> None:
        """Queue a batch of (time, definition) arrivals.

        Static schedulers route immediately; live schedulers schedule a
        front-end routing event at each arrival time so the decision sees
        the cluster as it is *then*.
        """
        if self.config.scheduler in DEFERRED_SCHEDULERS:
            for time, definition in arrivals:
                self.kernel.schedule(time, self._route_and_dispatch, (time, definition))
                self._submitted.append((time, definition, None, None))
            return
        for time, definition in arrivals:
            node = self.route(definition)
            request = Request(arrival=time, definition=definition)
            self.nodes[node].submit([request])
            self._submitted.append((time, definition, node, request.id))

    def _route_and_dispatch(self, payload: Tuple[float, FunctionDefinition]) -> None:
        time, definition = payload
        node = self.route(definition)
        self.nodes[node].submit([Request(arrival=time, definition=definition)])

    def run(
        self,
        shards: int = 1,
        epoch_seconds: float = 5.0,
        start_method: Optional[str] = None,
    ) -> ClusterStats:
        """Drive the cluster to completion and aggregate.

        With ``shards=1`` (the default) this runs the shared kernel
        serially: events from all nodes interleave in global ``(time,
        seq)`` order, and ``self.outcomes`` accumulates request
        completions in that same order.  With ``shards=N`` the submitted
        arrivals are replayed through :class:`ShardedClusterSession` --
        node partitions run in worker processes, synchronized in
        conservative epochs of ``epoch_seconds`` of simulated time -- and
        the same statistics are aggregated from the workers' results
        (``self.outcomes`` stays empty; the local node objects never ran).
        """
        from repro.trace.stats import percentile  # avoids module cycle

        if shards <= 1:
            self.kernel.run()
            outcomes = self.outcomes
            latencies = [o.latency for o in outcomes] or [0.0]
            cold = sum(o.cold_boots for o in outcomes)
            return ClusterStats(
                completed=len(outcomes),
                cold_boots=cold,
                cold_boot_rate=cold / len(outcomes) if outcomes else 0.0,
                evictions=sum(node.evictions for node in self.nodes),
                p50_latency=percentile(latencies, 50),
                p99_latency=percentile(latencies, 99),
                per_node_requests=list(self._assigned),
            )

        session = ShardedClusterSession(
            self.config,
            self._manager_factory,
            shards=shards,
            epoch_seconds=epoch_seconds,
            start_method=start_method,
        )
        try:
            if self.config.scheduler in DEFERRED_SCHEDULERS:
                session.run_phase(
                    [(time, definition) for time, definition, _, _ in self._submitted]
                )
                assigned = list(session.router.assigned)
            else:
                session.run_phase(self._submitted, routed=True)
                assigned = list(self._assigned)
            nodes = session.finish()
        finally:
            session.close()
        outcomes = [pair for info in nodes.values() for pair in info["outcomes"]]
        latencies = [latency for latency, _ in outcomes] or [0.0]
        cold = sum(cold_boots for _, cold_boots in outcomes)
        return ClusterStats(
            completed=len(outcomes),
            cold_boots=cold,
            cold_boot_rate=cold / len(outcomes) if outcomes else 0.0,
            evictions=sum(info["evictions"] for info in nodes.values()),
            p50_latency=percentile(latencies, 50),
            p99_latency=percentile(latencies, 99),
            per_node_requests=assigned,
        )

    def destroy(self) -> None:
        for node in self.nodes:
            for instance in node.all_instances():
                instance.destroy()


# ------------------------------------------------------------------ shards


def partition_nodes(nodes: int, shards: int) -> List[Tuple[int, ...]]:
    """Contiguous, size-balanced node partitions (shard k gets
    ``nodes[k*n//S:(k+1)*n//S]``); every node lands in exactly one shard."""
    shards = max(1, min(shards, nodes))
    return [
        tuple(range(k * nodes // shards, (k + 1) * nodes // shards))
        for k in range(shards)
    ]


@dataclass
class ClusterShardSpec:
    """Everything a worker needs to build its shard (must pickle)."""

    shard: int
    #: Kernel seed (the cluster-wide base seed).
    seed: int
    node_ids: Tuple[int, ...]
    #: Per-node platform configs, seeds already offset by node id.
    node_configs: Dict[int, PlatformConfig]
    manager_factory: Callable[[], object]
    #: Stream per-node canonical traces into this directory once the
    #: ``start-trace`` mark arrives (None = never trace).
    trace_dir: Optional[str] = None
    #: Roll canonical records into segmented-archive form here (shared
    #: across shards: each worker writes only its own nodes' segments,
    #: the coordinator finalizes).  Independent of ``trace_dir``.
    archive_dir: Optional[str] = None
    archive_bucket_seconds: float = 60.0
    #: Stream per-node telemetry CSVs here, flushed at every epoch barrier.
    telemetry_dir: Optional[str] = None
    telemetry_interval: float = 1.0
    #: Bound each node's in-memory telemetry ring (rows still stream out).
    telemetry_max_samples: Optional[int] = 512
    #: Dump a cProfile of this worker here (None = no profiling).
    profile_path: Optional[str] = None


class ClusterShardHost:
    """Worker-side shard: a partition of cluster nodes on one kernel.

    Implements the :mod:`repro.sim.shard` host protocol.  The shard's
    nodes share a private kernel seeded exactly like the serial
    cluster's, and each node's platform config carries the same
    node-offset seed -- so every node computes the same event timeline it
    would have computed serially, just interleaved with fewer peers.
    """

    def __init__(self, spec: ClusterShardSpec) -> None:
        # Lazy imports: this constructor is the worker process entry.
        from repro.faas.telemetry import TelemetryRecorder

        self.spec = spec
        self.kernel = SimKernel(seed=spec.seed)
        self.platforms: Dict[int, FaasPlatform] = {}
        for node_id in spec.node_ids:
            self.platforms[node_id] = FaasPlatform(
                config=spec.node_configs[node_id],
                manager=spec.manager_factory(),
                kernel=self.kernel,
                node_id=node_id,
            )
        self._sinks: Dict[int, EventTraceSink] = {}
        self._recorders: Dict[int, object] = {}
        self._archive = None
        if spec.telemetry_dir is not None:
            for node_id, platform in self.platforms.items():
                self._recorders[node_id] = TelemetryRecorder(
                    platform,
                    interval=spec.telemetry_interval,
                    max_samples=spec.telemetry_max_samples,
                    stream_csv=Path(spec.telemetry_dir) / f"node{node_id:03d}.csv",
                )
        self._profiler = None
        if spec.profile_path is not None:
            import cProfile

            self._profiler = cProfile.Profile()

    # ----------------------------------------------------------- protocol

    def begin_epoch(
        self, payload: Sequence[Tuple[int, float, FunctionDefinition, int]]
    ) -> None:
        """Accept this epoch's routed arrivals: (node, time, definition, id)."""
        for node_id, time, definition, request_id in payload:
            self.platforms[node_id].submit(
                [Request(arrival=time, definition=definition, id=request_id)]
            )

    def advance(self, until: Optional[float]) -> None:
        if self._profiler is not None:
            self._profiler.enable()
        try:
            self.kernel.run(until)
        finally:
            if self._profiler is not None:
                self._profiler.disable()

    def epoch_report(self, horizon: Optional[float]) -> Dict[str, object]:
        """Snapshot the shard at the barrier: loads, conservation, clock.

        Also the shard's bounded-memory flush point (trace and telemetry
        streams hit disk) and its oracle cadence: with ``REPRO_CHECK=1``
        every node's invariant oracle sweeps its full platform here.
        """
        for sink in self._sinks.values():
            sink.flush()
        for recorder in self._recorders.values():
            recorder.flush()
        if self._archive is not None:
            self._archive.flush()
            if any(p.oracle is not None for p in self.platforms.values()):
                from repro.check import check_archive_writer

                check_archive_writer(self._archive)
        conservation = {
            "frames_used_bytes": 0,
            "swap_pages": 0,
            "swap_outs": 0,
            "swap_ins": 0,
            "swap_discards": 0,
        }
        loads: Dict[int, dict] = {}
        for node_id, platform in self.platforms.items():
            if platform.oracle is not None:
                platform.oracle.check_now()
            physical = platform.physical
            conservation["frames_used_bytes"] += physical.used_bytes
            conservation["swap_pages"] += physical.swap.pages
            conservation["swap_outs"] += physical.swap.total_swap_outs
            conservation["swap_ins"] += physical.swap.total_swap_ins
            conservation["swap_discards"] += physical.swap.total_discards
            loads[node_id] = {
                "used_bytes": platform.used_bytes(),
                "frozen_bytes": platform.frozen_bytes(),
                "instances": len(platform.all_instances()),
                "warm": sorted(
                    {
                        instance.spec.name
                        for instance in platform.all_instances()
                        if instance.state is InstanceState.FROZEN
                        or (
                            instance.state is InstanceState.IDLE
                            and instance.invocation_count > 0
                        )
                    }
                ),
            }
        return {
            "shard": self.spec.shard,
            "clock": self.kernel.now,
            "events": self.kernel.events_processed,
            "loads": loads,
            "conservation": conservation,
        }

    def mark(self, name: str) -> None:
        if name == "reset-metrics":
            for platform in self.platforms.values():
                platform.reset_metrics()
        elif name == "start-trace":
            if self.spec.trace_dir is None and self.spec.archive_dir is None:
                return
            if self.spec.archive_dir is not None:
                from repro.trace.archive import ArchiveWriter  # worker-side lazy

                # One writer per worker, shared by its node sinks: every
                # (bucket, node) segment still has exactly one producer,
                # so the shared root fills with byte-identical segments
                # no matter how nodes were partitioned.
                self._archive = ArchiveWriter(
                    self.spec.archive_dir,
                    bucket_seconds=self.spec.archive_bucket_seconds,
                )
            for node_id, platform in self.platforms.items():
                # Node-canonical, streamed: seq is the sink's own dense
                # counter and lines go straight to disk, so worker memory
                # stays flat and the records do not depend on shard count.
                self._sinks[node_id] = EventTraceSink(
                    platform.bus,
                    node=node_id,
                    path=(
                        Path(self.spec.trace_dir) / f"node{node_id:03d}.jsonl"
                        if self.spec.trace_dir is not None
                        else None
                    ),
                    normalize_seq=True,
                    store=False,
                    archive=self._archive,
                )
        elif name == "stop-trace":
            for sink in self._sinks.values():
                sink.detach()
        else:
            raise ValueError(f"unknown mark {name!r}")

    def finalize(self) -> Dict[str, object]:
        """Close streams, final oracle sweep, and ship per-node results."""
        nodes: Dict[int, dict] = {}
        for node_id, platform in self.platforms.items():
            sink = self._sinks.get(node_id)
            if sink is not None:
                sink.detach()
            recorder = self._recorders.get(node_id)
            if recorder is not None:
                recorder.detach()
            if platform.oracle is not None:
                platform.oracle.finish()
            nodes[node_id] = {
                "completed": len(platform.outcomes),
                "outcomes": [
                    (outcome.latency, outcome.cold_boots)
                    for outcome in platform.outcomes
                ],
                "cold_boots": platform.cold_boots,
                "warm_starts": platform.warm_starts,
                "evictions": platform.evictions,
                "overcommits": platform.overcommits,
                "cpu_busy": dict(platform.cpu.busy),
                "trace_path": (
                    str(Path(self.spec.trace_dir) / f"node{node_id:03d}.jsonl")
                    if sink is not None and self.spec.trace_dir is not None
                    else None
                ),
                "trace_events": sink.count if sink is not None else 0,
                "telemetry_path": str(
                    Path(self.spec.telemetry_dir) / f"node{node_id:03d}.csv"
                )
                if recorder is not None
                else None,
            }
        if self._archive is not None:
            # No manifest: this worker wrote only its own nodes' segments.
            # The coordinator composes the shared root via finalize_archive.
            self._archive.close(manifest=False)
            self._archive = None
        if self._profiler is not None:
            self._profiler.dump_stats(self.spec.profile_path)
        return {
            "shard": self.spec.shard,
            "events": self.kernel.events_processed,
            "profile_path": self.spec.profile_path,
            "nodes": nodes,
        }


class ShardedClusterSession:
    """Coordinator of one sharded cluster run.

    Owns the shard pool, the front-end router, and the conservative epoch
    loop.  All scheduling decisions are made here -- deterministically,
    from the arrival sequence plus previous-epoch load digests -- so the
    workers never interact with each other and the epoch horizon is a
    safe lower bound on cross-shard event times.

    With ``shards=1`` (or ``processes=False``) the identical protocol
    drives in-process hosts: that *serial twin* is the reference leg of
    the digest gate, reducing the serial/sharded comparison to exactly
    one variable -- how nodes were partitioned across kernels.
    """

    def __init__(
        self,
        config: ClusterConfig,
        manager_factory: Optional[Callable[[], object]] = None,
        shards: int = 1,
        epoch_seconds: float = 5.0,
        processes: Optional[bool] = None,
        trace_dir: Optional[str] = None,
        archive_dir: Optional[str] = None,
        archive_bucket_seconds: float = 60.0,
        telemetry_dir: Optional[str] = None,
        telemetry_interval: float = 1.0,
        telemetry_max_samples: Optional[int] = 512,
        profile_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        from repro.core.baselines import VanillaManager  # avoids module cycle

        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        factory = manager_factory or VanillaManager
        self.config = config
        self.epoch_seconds = float(epoch_seconds)
        partitions = partition_nodes(config.nodes, shards)
        self.shards = len(partitions)
        self.router = FrontEndRouter(config.nodes, config.scheduler)
        self._shard_of: Dict[int, int] = {}
        specs = []
        for shard, node_ids in enumerate(partitions):
            node_configs = {}
            for node_id in node_ids:
                node_config = copy.deepcopy(config.node_config)
                node_config.seed = config.node_config.seed + node_id
                node_configs[node_id] = node_config
                self._shard_of[node_id] = shard
            specs.append(
                ClusterShardSpec(
                    shard=shard,
                    seed=config.node_config.seed,
                    node_ids=node_ids,
                    node_configs=node_configs,
                    manager_factory=factory,
                    trace_dir=trace_dir,
                    archive_dir=archive_dir,
                    archive_bucket_seconds=archive_bucket_seconds,
                    telemetry_dir=telemetry_dir,
                    telemetry_interval=telemetry_interval,
                    telemetry_max_samples=telemetry_max_samples,
                    profile_path=(
                        str(Path(profile_dir) / f"shard{shard}.prof")
                        if profile_dir is not None
                        else None
                    ),
                )
            )
        if processes is None:
            processes = self.shards > 1
        self.pool = make_pool(
            ClusterShardHost, specs, processes=processes, start_method=start_method
        )
        self._request_ids = 0
        self._loads: Optional[Dict[int, dict]] = None
        #: Max shard clock after the last barrier (== the global last
        #: event time, identical for every shard count).
        self.clock = 0.0
        self.epochs = 0
        self.events = 0

    # ------------------------------------------------------------- routing

    def route(self, definition: FunctionDefinition) -> int:
        if self.config.scheduler in DEFERRED_SCHEDULERS:
            return self.router.route_from_loads(definition, self._loads)
        return self.router.route_static(definition)

    # ------------------------------------------------------------- driving

    def run_phase(
        self,
        arrivals: Sequence[Tuple],
        start: float = 0.0,
        end: Optional[float] = None,
        routed: bool = False,
    ) -> None:
        """Feed one arrival batch through conservative epochs, then drain.

        ``arrivals`` must be in submit order with nondecreasing times
        (what :class:`~repro.trace.generator.TraceGenerator` produces):
        items are ``(time, definition)`` -- routed here -- or, with
        ``routed=True``, pre-decided ``(time, definition, node,
        request_id)`` tuples from a :class:`Cluster` submission log.
        Epoch *k* covers arrival times ``[start+(k-1)*e, start+k*e)``;
        after the last horizon every shard drains to quiescence so
        in-flight requests complete before the phase returns.
        """
        arrivals = list(arrivals)
        if end is None:
            end = arrivals[-1][0] if arrivals else start
        index = 0
        k = 0
        while True:
            k += 1
            horizon = start + k * self.epoch_seconds
            payloads: List[List[Tuple]] = [[] for _ in range(self.shards)]
            while index < len(arrivals) and arrivals[index][0] < horizon:
                item = arrivals[index]
                index += 1
                if routed:
                    time, definition, node, request_id = item
                else:
                    time, definition = item
                    node = self.route(definition)
                    self._request_ids += 1
                    request_id = self._request_ids
                payloads[self._shard_of[node]].append(
                    (node, time, definition, request_id)
                )
            self._absorb(self.pool.epoch(horizon, payloads), horizon)
            if index >= len(arrivals) and horizon >= end:
                break
        self._absorb(
            self.pool.epoch(None, [[] for _ in range(self.shards)]), None
        )

    def _absorb(self, reports: List[Dict], horizon: Optional[float]) -> None:
        # Lazy import: repro.check reaches back into repro.faas.
        from repro.check import check_shard_conservation

        check_shard_conservation(reports, horizon)
        self.epochs += 1
        self.clock = max(report["clock"] for report in reports)
        self.events = sum(report["events"] for report in reports)
        loads: Dict[int, dict] = {}
        for report in reports:
            loads.update(report["loads"])
        self._loads = loads

    def mark(self, name: str) -> None:
        self.pool.mark(name)

    def finish(self) -> Dict[int, dict]:
        """Collect per-node results from every shard, keyed by node id."""
        results = self.pool.finish()
        self.events = sum(result["events"] for result in results)
        nodes: Dict[int, dict] = {}
        for result in results:
            nodes.update(result["nodes"])
        return nodes

    def close(self) -> None:
        self.pool.close()
