"""Multi-node FaaS cluster: a front-end router over invoker nodes.

The paper's single-server experiments extend naturally to a cluster: each
invoker node runs its own instance cache (and its own Desiccant), and a
front-end assigns requests to nodes.  Warm starts only happen on a node
that already caches the function, so the routing policy interacts directly
with the frozen-garbage economics:

* ``round-robin``    -- spreads every function across all nodes: maximum
  balance, minimum warm locality;
* ``least-assigned`` -- balances by assigned request count;
* ``warm-affinity``  -- hashes each function to a home node (consistent
  assignment), concentrating its warm instances.

Nodes do not interact, so the simulation runs each node's event queue
independently and aggregates -- identical to a time-interleaved execution.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faas.platform import FaasPlatform, PlatformConfig, Request, RequestOutcome
from repro.workloads.model import FunctionDefinition

SCHEDULERS = ("round-robin", "least-assigned", "warm-affinity")


@dataclass
class ClusterConfig:
    """Cluster shape and routing."""

    nodes: int = 4
    scheduler: str = "warm-affinity"
    node_config: PlatformConfig = field(default_factory=PlatformConfig)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; pick from {SCHEDULERS}"
            )


@dataclass
class ClusterStats:
    """Aggregated outcome of one cluster run."""

    completed: int
    cold_boots: int
    cold_boot_rate: float
    evictions: int
    p50_latency: float
    p99_latency: float
    per_node_requests: List[int]

    @property
    def imbalance(self) -> float:
        """max/mean assigned requests (1.0 == perfectly balanced)."""
        if not self.per_node_requests or sum(self.per_node_requests) == 0:
            return 1.0
        mean = sum(self.per_node_requests) / len(self.per_node_requests)
        return max(self.per_node_requests) / mean if mean else 1.0


class Cluster:
    """A set of invoker nodes behind a routing front-end."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        manager_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        from repro.core.baselines import VanillaManager  # avoids module cycle

        self.config = config or ClusterConfig()
        factory = manager_factory or VanillaManager
        self.nodes: List[FaasPlatform] = []
        for index in range(self.config.nodes):
            node_config = PlatformConfig(**vars(self.config.node_config))
            node_config.seed = self.config.node_config.seed + index
            self.nodes.append(FaasPlatform(config=node_config, manager=factory()))
        self._assigned: List[int] = [0] * self.config.nodes
        self._rr_next = 0

    # -------------------------------------------------------------- routing

    def route(self, definition: FunctionDefinition) -> int:
        """Pick the node index for one request."""
        scheduler = self.config.scheduler
        if scheduler == "round-robin":
            node = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.nodes)
        elif scheduler == "least-assigned":
            node = min(range(len(self.nodes)), key=lambda i: self._assigned[i])
        else:  # warm-affinity
            node = zlib.crc32(definition.name.encode()) % len(self.nodes)
        self._assigned[node] += 1
        return node

    # -------------------------------------------------------------- running

    def submit(self, arrivals: Sequence[Tuple[float, FunctionDefinition]]) -> None:
        """Route and queue a batch of (time, definition) arrivals."""
        batches: Dict[int, List[Request]] = {}
        for time, definition in arrivals:
            node = self.route(definition)
            batches.setdefault(node, []).append(
                Request(arrival=time, definition=definition)
            )
        for node, requests in batches.items():
            self.nodes[node].submit(requests)

    def run(self) -> ClusterStats:
        """Drain every node and aggregate."""
        from repro.trace.stats import percentile  # avoids module cycle

        outcomes: List[RequestOutcome] = []
        for node in self.nodes:
            outcomes.extend(node.run())
        latencies = [o.latency for o in outcomes] or [0.0]
        cold = sum(o.cold_boots for o in outcomes)
        return ClusterStats(
            completed=len(outcomes),
            cold_boots=cold,
            cold_boot_rate=cold / len(outcomes) if outcomes else 0.0,
            evictions=sum(node.evictions for node in self.nodes),
            p50_latency=percentile(latencies, 50),
            p99_latency=percentile(latencies, 99),
            per_node_requests=list(self._assigned),
        )

    def destroy(self) -> None:
        for node in self.nodes:
            for instance in node.all_instances():
                instance.destroy()
