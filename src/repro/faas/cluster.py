"""Multi-node FaaS cluster: a front-end router over invoker nodes.

The paper's single-server experiments extend naturally to a cluster: each
invoker node runs its own instance cache (and its own Desiccant), and a
front-end assigns requests to nodes.  Warm starts only happen on a node
that already caches the function, so the routing policy interacts directly
with the frozen-garbage economics:

* ``round-robin``       -- spreads every function across all nodes: maximum
  balance, minimum warm locality;
* ``least-assigned``    -- balances by assigned request count;
* ``warm-affinity``     -- hashes each function to a home node (consistent
  assignment), concentrating its warm instances;
* ``least-loaded-live`` -- routes on *live* state at arrival time: prefer
  a node already caching the function warm, break ties (and the cold
  case) by current cache pressure.  Only possible because the cluster is
  a true time-interleaved simulation.

All nodes share one :class:`~repro.sim.kernel.SimKernel`, so
:meth:`Cluster.run` drives a single globally time-ordered event timeline
across the whole cluster and collects outcomes in completion order from
the bus.  The static schedulers route at submit time (their decisions
depend only on the arrival sequence); ``least-loaded-live`` defers each
routing decision into the simulation so it observes current node state.
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.faas.instance import InstanceState
from repro.faas.platform import FaasPlatform, PlatformConfig, Request, RequestOutcome
from repro.sim import Event, REQUEST_DONE, SimKernel
from repro.workloads.model import FunctionDefinition

SCHEDULERS = ("round-robin", "least-assigned", "warm-affinity", "least-loaded-live")

#: Schedulers whose decisions read live simulation state, so routing must
#: happen *inside* the timeline (at each request's arrival time).
DEFERRED_SCHEDULERS = ("least-loaded-live",)


@dataclass
class ClusterConfig:
    """Cluster shape and routing."""

    nodes: int = 4
    scheduler: str = "warm-affinity"
    node_config: PlatformConfig = field(default_factory=PlatformConfig)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; pick from {SCHEDULERS}"
            )


@dataclass
class ClusterStats:
    """Aggregated outcome of one cluster run."""

    completed: int
    cold_boots: int
    cold_boot_rate: float
    evictions: int
    p50_latency: float
    p99_latency: float
    per_node_requests: List[int]

    @property
    def imbalance(self) -> float:
        """max/mean assigned requests (1.0 == perfectly balanced)."""
        if not self.per_node_requests or sum(self.per_node_requests) == 0:
            return 1.0
        mean = sum(self.per_node_requests) / len(self.per_node_requests)
        return max(self.per_node_requests) / mean if mean else 1.0


class Cluster:
    """A set of invoker nodes behind a routing front-end.

    Every node is constructed over the cluster's shared kernel with a
    *deep copy* of the node config, so stateful knobs (a keep-alive
    policy's histograms, the provisioned map) never leak between nodes.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        manager_factory: Optional[Callable[[], object]] = None,
        kernel: Optional[SimKernel] = None,
    ) -> None:
        from repro.core.baselines import VanillaManager  # avoids module cycle

        self.config = config or ClusterConfig()
        self.kernel = kernel if kernel is not None else SimKernel(
            seed=self.config.node_config.seed
        )
        factory = manager_factory or VanillaManager
        self.nodes: List[FaasPlatform] = []
        for index in range(self.config.nodes):
            node_config = copy.deepcopy(self.config.node_config)
            node_config.seed = self.config.node_config.seed + index
            self.nodes.append(
                FaasPlatform(
                    config=node_config,
                    manager=factory(),
                    kernel=self.kernel,
                    node_id=index,
                )
            )
        self._assigned: List[int] = [0] * self.config.nodes
        self._rr_next = 0
        #: Request outcomes across all nodes in global completion order.
        self.outcomes: List[RequestOutcome] = []
        self._done_subscription = self.kernel.bus.subscribe(
            self._on_request_done, kinds=(REQUEST_DONE,)
        )

    def _on_request_done(self, event: Event) -> None:
        self.outcomes.append(event.data["outcome"])

    # -------------------------------------------------------------- routing

    def route(self, definition: FunctionDefinition) -> int:
        """Pick the node index for one request."""
        scheduler = self.config.scheduler
        if scheduler == "round-robin":
            node = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.nodes)
        elif scheduler == "least-assigned":
            node = min(range(len(self.nodes)), key=lambda i: self._assigned[i])
        elif scheduler == "least-loaded-live":
            node = self._route_least_loaded_live(definition)
        else:  # warm-affinity
            node = zlib.crc32(definition.name.encode()) % len(self.nodes)
        self._assigned[node] += 1
        return node

    def _route_least_loaded_live(self, definition: FunctionDefinition) -> int:
        """Load-aware warm routing against *current* simulation state."""
        stages = {stage.name for stage in definition.stages}
        warm = [
            index
            for index, node in enumerate(self.nodes)
            if any(
                instance.spec.name in stages
                and (
                    instance.state is InstanceState.FROZEN
                    or (
                        instance.state is InstanceState.IDLE
                        and instance.invocation_count > 0
                    )
                )
                for instance in node.all_instances()
            )
        ]
        candidates = warm or range(len(self.nodes))
        return min(
            candidates,
            key=lambda i: (self.nodes[i].used_bytes(), self._assigned[i], i),
        )

    # -------------------------------------------------------------- running

    def submit(self, arrivals: Sequence[Tuple[float, FunctionDefinition]]) -> None:
        """Queue a batch of (time, definition) arrivals.

        Static schedulers route immediately; live schedulers schedule a
        front-end routing event at each arrival time so the decision sees
        the cluster as it is *then*.
        """
        if self.config.scheduler in DEFERRED_SCHEDULERS:
            for time, definition in arrivals:
                self.kernel.schedule(time, self._route_and_dispatch, (time, definition))
            return
        for time, definition in arrivals:
            node = self.route(definition)
            self.nodes[node].submit([Request(arrival=time, definition=definition)])

    def _route_and_dispatch(self, payload: Tuple[float, FunctionDefinition]) -> None:
        time, definition = payload
        node = self.route(definition)
        self.nodes[node].submit([Request(arrival=time, definition=definition)])

    def run(self) -> ClusterStats:
        """Drive the shared kernel to completion and aggregate.

        One merged timeline: events from all nodes interleave in global
        ``(time, seq)`` order, and ``self.outcomes`` accumulates request
        completions in that same order.
        """
        from repro.trace.stats import percentile  # avoids module cycle

        self.kernel.run()
        outcomes = self.outcomes
        latencies = [o.latency for o in outcomes] or [0.0]
        cold = sum(o.cold_boots for o in outcomes)
        return ClusterStats(
            completed=len(outcomes),
            cold_boots=cold,
            cold_boot_rate=cold / len(outcomes) if outcomes else 0.0,
            evictions=sum(node.evictions for node in self.nodes),
            p50_latency=percentile(latencies, 50),
            p99_latency=percentile(latencies, 99),
            per_node_requests=list(self._assigned),
        )

    def destroy(self) -> None:
        for node in self.nodes:
            for instance in node.all_instances():
                instance.destroy()
