"""Platform telemetry: time series of the quantities Desiccant acts on.

A :class:`TelemetryRecorder` subscribes to its node's ``step`` events on
the simulation bus and samples cache state at a fixed interval -- frozen
memory, total cached memory, instance counts, cumulative cold
boots/evictions, and (when the manager is Desiccant) the live activation
threshold.  Each snapshot is re-published as a structured ``sample``
event, so trace sinks and other observers see telemetry through the same
channel as everything else.  Series export to CSV and render as ASCII
sparklines for quick inspection in examples.
"""

from __future__ import annotations

import csv
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from typing import Dict

from repro.analysis.report import write_csv
from repro.faas.platform import FaasPlatform
from repro.memo import cache as memo_cache
from repro.memo import toggle as memo_toggle
from repro.sim import Event, SAMPLE, STEP

_SPARK_GLYPHS = " .:-=+*#%@"


@dataclass
class TelemetrySample:
    """One snapshot of platform state."""

    time: float
    frozen_bytes: int
    used_bytes: int
    instances: int
    frozen_instances: int
    cold_boots: int
    evictions: int
    activation_threshold: Optional[float] = None


@dataclass
class TelemetryRecorder:
    """Samples a platform at a fixed interval via its bus subscription."""

    platform: FaasPlatform
    interval: float = 1.0
    #: Retain at most this many samples (``None`` = unbounded).  Macro
    #: replays sample for hours of simulated time; a bounded ring keeps
    #: recorder memory flat while every snapshot still goes out as a
    #: ``sample`` bus event for streaming consumers (trace sinks).
    max_samples: Optional[int] = None
    #: Stream every sample to this CSV as it is captured (rows identical
    #: to :meth:`to_csv`).  With ``max_samples`` bounding the in-memory
    #: ring this keeps recorder memory flat over arbitrarily long runs --
    #: shard workers stream one CSV per node and :meth:`flush` it at
    #: every epoch barrier, so a crashed worker loses at most one epoch
    #: of samples and the coordinator never holds a full series.
    stream_csv: Optional[str | Path] = None
    #: Roll sample rows into a segmented archive (``kind="rows"``,
    #: ``.csv.gz`` segments; see ``docs/TRACE_ARCHIVE.md``) using the
    #: same deterministic segment roller as the event trace.  Rows are
    #: the :attr:`HEADERS` columns comma-joined with ``\n`` line endings
    #: (no header row) -- a distinct format from the ``\r\n`` CSV stream.
    archive_dir: Optional[str | Path] = None
    archive_bucket_seconds: float = 60.0
    samples: List[TelemetrySample] = field(default_factory=list)
    _next_sample_at: float = 0.0

    HEADERS = (
        "time",
        "frozen_bytes",
        "used_bytes",
        "instances",
        "frozen_instances",
        "cold_boots",
        "evictions",
        "activation_threshold",
    )

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.max_samples is not None:
            if self.max_samples <= 0:
                raise ValueError("max_samples must be positive")
            self.samples = deque(self.samples, maxlen=self.max_samples)
        self._stream_handle = None
        self._stream_writer = None
        if self.stream_csv is not None:
            path = Path(self.stream_csv)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream_handle = path.open("w", newline="")
            self._stream_writer = csv.writer(self._stream_handle)
            self._stream_writer.writerow(self.HEADERS)
        self._archive = None
        if self.archive_dir is not None:
            from repro.trace.archive import ArchiveWriter  # lazy: avoid cycle

            self._archive = ArchiveWriter(
                self.archive_dir,
                bucket_seconds=self.archive_bucket_seconds,
                kind="rows",
                suffix=".csv.gz",
            )
        self._subscription = self.platform.bus.subscribe(
            self._on_step, kinds=(STEP,), node=self.platform.node_id
        )

    def _on_step(self, event: Event) -> None:
        self(event.time)

    def __call__(self, now: float) -> None:
        if now < self._next_sample_at:
            return
        self._next_sample_at = now + self.interval
        manager = self.platform.manager
        threshold = None
        activation = getattr(manager, "activation", None)
        if activation is not None:
            threshold = getattr(activation, "threshold", None)
        sample = TelemetrySample(
            time=now,
            frozen_bytes=self.platform.frozen_bytes(),
            used_bytes=self.platform.used_bytes(),
            instances=len(self.platform.all_instances()),
            frozen_instances=len(self.platform.frozen_instances()),
            cold_boots=self.platform.cold_boots,
            evictions=self.platform.evictions,
            activation_threshold=threshold,
        )
        self.samples.append(sample)
        if self._stream_writer is not None:
            self._stream_writer.writerow(self._row(sample))
        if self._archive is not None:
            self._archive.add(
                sample.time,
                self.platform.node_id,
                ",".join(str(v) for v in self._row(sample)),
            )
        self.platform.bus.publish(
            Event(
                SAMPLE,
                now,
                self.platform.node_id,
                {
                    "frozen_bytes": sample.frozen_bytes,
                    "used_bytes": sample.used_bytes,
                    "instances": sample.instances,
                    "frozen_instances": sample.frozen_instances,
                    "cold_boots": sample.cold_boots,
                    "evictions": sample.evictions,
                    "activation_threshold": sample.activation_threshold,
                },
            )
        )

    def flush(self) -> None:
        """Push buffered streamed rows to disk (epoch-barrier hook)."""
        if self._stream_handle is not None:
            self._stream_handle.flush()
        if self._archive is not None:
            self._archive.flush()

    # ----------------------------------------------------------- checkpoint

    def __getstate__(self) -> dict:
        """Checkpoint state: drop the CSV handle, record its position.

        Captured at epoch barriers after :meth:`flush`, so the on-disk
        size is the logical stream position; :meth:`reopen_outputs`
        truncates back to it and resumes appending.
        """
        state = dict(self.__dict__)
        handle = state.pop("_stream_handle", None)
        state.pop("_stream_writer", None)
        offset = 0
        if handle is not None:
            handle.flush()
            offset = os.fstat(handle.fileno()).st_size
        state["_stream_offset"] = offset
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stream_handle = None
        self._stream_writer = None

    def reopen_outputs(self) -> None:
        """Re-attach the streamed CSV after a checkpoint restore."""
        offset = self.__dict__.pop("_stream_offset", 0)
        if self.stream_csv is None or self._stream_handle is not None:
            return
        path = Path(self.stream_csv)
        path.parent.mkdir(parents=True, exist_ok=True)
        existing = path.stat().st_size if path.exists() else 0
        if existing < offset:
            raise ValueError(
                f"telemetry CSV {path} holds {existing} bytes but the "
                f"checkpoint recorded {offset}; cannot resume the stream"
            )
        with open(path, "ab") as grow:
            grow.truncate(offset)
        self._stream_handle = path.open("a", newline="")
        self._stream_writer = csv.writer(self._stream_handle)

    def detach(self) -> None:
        """Stop sampling (and close the streamed CSV/archive, if any)."""
        if self._subscription is not None:
            self.platform.bus.unsubscribe(self._subscription)
            self._subscription = None
        if self._stream_handle is not None:
            self._stream_handle.close()
            self._stream_handle = None
            self._stream_writer = None
        if self._archive is not None:
            self._archive.close(manifest=True)
            self._archive = None

    # --------------------------------------------------------------- series

    def series(self, attribute: str) -> List[float]:
        """One column of the recording, e.g. ``series('frozen_bytes')``."""
        return [getattr(sample, attribute) or 0 for sample in self.samples]

    @staticmethod
    def _row(s: TelemetrySample) -> List[object]:
        return [
            f"{s.time:.3f}",
            s.frozen_bytes,
            s.used_bytes,
            s.instances,
            s.frozen_instances,
            s.cold_boots,
            s.evictions,
            "" if s.activation_threshold is None else f"{s.activation_threshold:.3f}",
        ]

    def to_csv(self, path: str | Path) -> Path:
        # Generator, not list: rows stream straight into the csv writer,
        # so exporting never doubles the recorder's footprint.  Rows are
        # byte-identical to what ``stream_csv`` emits live.
        return write_csv(
            path, list(self.HEADERS), (self._row(s) for s in self.samples)
        )


def stats_probe(platform: FaasPlatform) -> Dict[str, object]:
    """A ``/stats``-ready snapshot: platform meters plus the process
    effect-cache counters.

    Deliberately *outside* the sampled ``SAMPLE`` bus events and the CSV
    stream: memo hit/miss counts differ between a memoized run and its
    plain twin by design, so surfacing them in-band would break the
    byte-identity of the traces the digest gates compare.  Probes read
    this out-of-band dict instead.
    """
    probe: Dict[str, object] = {
        "node": platform.node_id,
        "instances": len(platform.all_instances()),
        "frozen_instances": len(platform.frozen_instances()),
        "frozen_bytes": platform.frozen_bytes(),
        "used_bytes": platform.used_bytes(),
        "cold_boots": platform.cold_boots,
        "warm_starts": platform.warm_starts,
        "evictions": platform.evictions,
        "memo_enabled": memo_toggle.enabled(),
        "memo": memo_cache.stats() if memo_toggle.enabled() else None,
    }
    return probe


def bucket_means(values: Sequence[float], width: int) -> List[float]:
    """Partition ``values`` into ``width`` contiguous buckets and average.

    Every element lands in exactly one bucket and every bucket is
    non-empty (bucket ``i`` spans ``[i*n//width, (i+1)*n//width)``), so
    downsampling neither skips nor double-counts samples.  With
    ``width >= len(values)`` the series is returned unchanged.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    n = len(values)
    if n <= width:
        return list(values)
    means = []
    for i in range(width):
        lo = i * n // width
        hi = (i + 1) * n // width
        bucket = values[lo:hi]
        means.append(sum(bucket) / len(bucket))
    return means


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a series as a one-line ASCII sparkline."""
    if not values:
        return ""
    values = bucket_means(values, width)
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_GLYPHS[1] * len(values)
    out = []
    for value in values:
        rank = int((value - lo) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[rank])
    return "".join(out)
