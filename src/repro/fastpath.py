"""The one switch for every algorithmic fast path in the repo.

PR 2 proved the pattern at the VMM layer: keep the slow, obviously
correct implementation as a reference, build the fast one next to it,
and differential-test the two.  This module generalizes the toggle so
the *platform* layers (indexed event dispatch, cohort heap allocation,
incremental USS aggregates, heap-based eviction policies, Desiccant's
candidate index) can be flipped as one unit:

* benchmarks run the same spec twice -- fastpath off is the committed
  pre-optimization baseline, fastpath on is the optimized build -- and
  assert byte-identical event traces between the two;
* differential tests pin fast results to slow results per component.

The flag is read from ``REPRO_FASTPATH`` (unset/"1" = on, ""/"0" = off)
the first time :func:`enabled` is called; :func:`set_enabled` and the
:func:`override` context manager change it afterwards.  Components
snapshot the flag when they are constructed, so toggling mid-simulation
never mixes modes within one run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

_enabled: Optional[bool] = None


def enabled() -> bool:
    """Whether fast paths are active (defaults to on)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_FASTPATH", "1") not in ("", "0")
    return _enabled


def set_enabled(value: bool) -> None:
    """Force the flag, overriding the environment."""
    global _enabled
    _enabled = bool(value)


@contextmanager
def override(value: bool) -> Iterator[None]:
    """Temporarily force the flag (tests and paired benchmark runs)."""
    previous = enabled()
    set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)
