"""Explicit run-flag propagation into worker processes.

The repo's behavioral switches (``REPRO_FASTPATH``, ``REPRO_CHECK`` and
its tuning knobs) are read from the environment once per process.  Under
the ``fork`` start method children inherit both the environment and the
already-parsed module state, so everything "just works"; under ``spawn``
(macOS/Windows default) children re-import from a fresh interpreter, and
-- worse -- a parent that flipped a flag programmatically
(:func:`repro.fastpath.set_enabled`, a test monkeypatching ``os.environ``
after the module cached it) silently runs its workers with a *different*
configuration than itself.

Every process pool in the repo therefore propagates the flags
explicitly: :func:`snapshot` captures the parent's *effective*
configuration (what the parent is actually running with, not what the
environment happens to say), and :func:`initializer` re-applies it in
the child before any simulation code runs.  Shard workers
(:mod:`repro.sim.shard`) use the same pair.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro import fastpath
from repro.memo import cache as memo_cache
from repro.memo import toggle as memo_toggle

#: Flags forwarded verbatim from the parent environment when set.
_PASSTHROUGH = ("REPRO_CHECK", "REPRO_CHECK_CADENCE", "REPRO_CHECK_EVERY")


def snapshot(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """The parent's effective run flags, as an env-shaped dict.

    ``REPRO_FASTPATH`` is derived from :func:`repro.fastpath.enabled`
    (the live flag), so a parent that called ``set_enabled`` ships what
    it is actually running, not a stale environment value.
    """
    # Lazy: importing repro.trace at module top would cycle through
    # replay -> repro.sim; snapshot/apply run long after imports settle.
    from repro.trace import encode as trace_encode

    env: Dict[str, str] = {
        "REPRO_FASTPATH": "1" if fastpath.enabled() else "0",
        "REPRO_MEMO": "1" if memo_toggle.enabled() else "0",
        "REPRO_TRACE_ENCODER": trace_encode.mode(),
    }
    for key in _PASSTHROUGH:
        value = os.environ.get(key)
        if value is not None:
            env[key] = value
    if extra:
        env.update(extra)
    return env


def apply(env: Dict[str, str]) -> None:
    """Adopt a snapshot in the current process (worker side).

    Writes the flags into ``os.environ`` (so late readers agree) and
    resets the fastpath module's cached state to match.
    """
    for key, value in env.items():
        os.environ[key] = value
    from repro.trace import encode as trace_encode

    fastpath.set_enabled(env.get("REPRO_FASTPATH", "1") not in ("", "0"))
    memo_toggle.set_enabled(env.get("REPRO_MEMO", "0") not in ("", "0"))
    trace_encode.set_mode(env.get("REPRO_TRACE_ENCODER", "fast") or "fast")
    # A worker adopting flags starts a fresh leg; stale entries from a
    # previous configuration must never satisfy its lookups.
    memo_cache.reset()


def initializer(env: Dict[str, str]) -> None:
    """``ProcessPoolExecutor(initializer=...)`` entry point."""
    apply(env)


def wall_clock() -> float:
    """Monotonic wall-clock seconds, for *process-level* instrumentation.

    The sanctioned wall-clock read outside the bench harness: shard
    workers time their busy intervals with it (the ``coordination_overhead``
    metric is coordinator wall minus max worker busy wall), and the
    coordinator times its own loop.  It measures the host machine, never
    simulated state -- no simulation decision may depend on it, which is
    why this module (not simulation code) owns it and why the
    determinism lint exempts exactly this file.
    """
    return time.perf_counter()
