"""Sorted run-length interval lists: the primitive behind the page tables.

A :class:`RunList` stores disjoint, sorted, coalesced runs
``(start, end, value)`` over an integer axis -- page indices, here.  Gaps
between runs mean "absent" (a ``NOT_PRESENT`` page, an uncached file
page).  Two users share it:

* :class:`repro.mem.vmm.Mapping` keeps per-page residency states as runs
  (values are :class:`~repro.mem.vmm.PageState` members), and
* :class:`repro.mem.physical.MappedFile` keeps the page cache's sharer
  sets as runs (values are frozensets of mapping ids).

All mutation happens through :meth:`splice`, which replaces an arbitrary
window ``[lo, hi)`` with new runs in a single list-splice.  Every bulk
operation is therefore O(runs touched + log runs) instead of O(pages):
faulting a 200 MiB heap in is one three-element splice, not 51,200 dict
stores, which is what makes the Figure 9 Azure replays sweep-rate bound
by arithmetic rather than page walks.

Values are compared with ``==`` for coalescing (``PageState`` members
compare by identity; frozensets by content).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator, List, Optional, Tuple

#: One run: (start, end, value), covering [start, end).
Run = Tuple[int, int, Any]


class RunList:
    """Disjoint, sorted, coalesced ``(start, end, value)`` runs."""

    __slots__ = ("starts", "ends", "values")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.values: List[Any] = []

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        """Number of runs (not covered units)."""
        return len(self.starts)

    def __bool__(self) -> bool:
        return bool(self.starts)

    def index_at(self, pos: int) -> int:
        """Index of the run containing ``pos``, or -1."""
        i = bisect_right(self.starts, pos) - 1
        if i >= 0 and pos < self.ends[i]:
            return i
        return -1

    def value_at(self, pos: int, default: Any = None) -> Any:
        """Value covering ``pos``, or ``default`` for a gap."""
        i = self.index_at(pos)
        return self.values[i] if i >= 0 else default

    def covered(self, lo: int = 0, hi: Optional[int] = None) -> int:
        """Units inside ``[lo, hi)`` covered by any run."""
        return sum(e - s for s, e, _ in self.iter_runs(lo, hi))

    def iter_runs(self, lo: int = 0, hi: Optional[int] = None) -> Iterator[Run]:
        """Present runs clipped to ``[lo, hi)``, in order."""
        starts, ends, values = self.starts, self.ends, self.values
        if hi is None:
            hi = ends[-1] if ends else 0
        i = bisect_right(ends, lo)  # first run ending after lo
        while i < len(starts) and starts[i] < hi:
            yield max(starts[i], lo), min(ends[i], hi), values[i]
            i += 1

    def iter_segments(self, lo: int, hi: int, absent: Any = None) -> Iterator[Run]:
        """Runs *and* gaps covering ``[lo, hi)`` completely, in order.

        Gaps are yielded with value ``absent``.
        """
        pos = lo
        for s, e, v in self.iter_runs(lo, hi):
            if s > pos:
                yield pos, s, absent
            yield s, e, v
            pos = e
        if pos < hi:
            yield pos, hi, absent

    # ----------------------------------------------------------- mutation

    def splice(self, lo: int, hi: int, pieces: Iterable[Run]) -> None:
        """Replace the window ``[lo, hi)`` with ``pieces``.

        ``pieces`` must be sorted, disjoint, and inside the window; absent
        stretches are simply omitted.  Partial run overlaps at the window
        edges are preserved, and equal-valued neighbours (within the new
        pieces and across the window edges) are coalesced, so the
        "sorted + disjoint + maximally merged" invariant holds by
        construction after every mutation.
        """
        starts, ends, values = self.starts, self.ends, self.values
        i = bisect_right(ends, lo)  # first run ending after lo
        j = bisect_left(starts, hi, lo=i)  # first run starting at/after hi
        merged: List[List[Any]] = []
        if i < j and starts[i] < lo:
            merged.append([starts[i], lo, values[i]])
        for s, e, v in pieces:
            if s >= e:
                continue
            if merged and merged[-1][1] == s and merged[-1][2] == v:
                merged[-1][1] = e
            else:
                merged.append([s, e, v])
        if i < j and ends[j - 1] > hi:
            if merged and merged[-1][1] == hi and merged[-1][2] == values[j - 1]:
                merged[-1][1] = ends[j - 1]
            else:
                merged.append([hi, ends[j - 1], values[j - 1]])
        # Coalesce with the untouched neighbours on each side.
        if merged and i > 0 and ends[i - 1] == merged[0][0] and values[i - 1] == merged[0][2]:
            merged[0][0] = starts[i - 1]
            i -= 1
        if merged and j < len(starts) and starts[j] == merged[-1][1] and values[j] == merged[-1][2]:
            merged[-1][1] = ends[j]
            j += 1
        starts[i:j] = [m[0] for m in merged]
        ends[i:j] = [m[1] for m in merged]
        values[i:j] = [m[2] for m in merged]

    def clear(self, lo: int, hi: int) -> None:
        """Drop every run (and run part) inside ``[lo, hi)``."""
        self.splice(lo, hi, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        runs = ", ".join(
            f"[{s},{e})={v!r}"
            for s, e, v in zip(self.starts, self.ends, self.values)
        )
        return f"RunList({runs})"
