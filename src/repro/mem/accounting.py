"""USS / RSS / PSS accounting over virtual address spaces.

Definitions follow ``/proc/<pid>/smaps``:

* **RSS**  -- every resident page, shared or not, counted fully.
* **PSS**  -- private pages fully, shared pages divided by sharer count.
* **USS**  -- ``private_clean + private_dirty`` only.  A file page touched by
  a single mapping is *private_clean* (so un-shared libraries land in USS,
  which is why Desiccant's unmap optimization shows up in Figure 8/11).

The paper measures instances by USS (§3.1), so USS is the headline metric
throughout the reproduction.

Accounting is O(1) per mapping: the VMM maintains residency counters on
every page-state transition, and :class:`~repro.mem.physical.MappedFile`
maintains each mapping's solo-page count and proportional share
incrementally -- so measuring a whole address space every simulation event
stays cheap and always exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.mem.layout import PAGE_SIZE
from repro.mem.vmm import Mapping, VirtualAddressSpace


@dataclass
class MemoryReport:
    """Byte counts for one address space (or one mapping)."""

    private_dirty: int = 0
    private_clean: int = 0
    shared_clean: int = 0
    shared_dirty: int = 0
    pss: float = 0.0
    swap: int = 0

    @property
    def uss(self) -> int:
        """Unique set size: private pages only."""
        return self.private_dirty + self.private_clean

    @property
    def rss(self) -> int:
        """Resident set size: everything resident, shared counted fully."""
        return (
            self.private_dirty
            + self.private_clean
            + self.shared_clean
            + self.shared_dirty
        )

    def __iadd__(self, other: "MemoryReport") -> "MemoryReport":
        self.private_dirty += other.private_dirty
        self.private_clean += other.private_clean
        self.shared_clean += other.shared_clean
        self.shared_dirty += other.shared_dirty
        self.pss += other.pss
        self.swap += other.swap
        return self


def measure_mapping(mapping: Mapping) -> MemoryReport:
    """Account one mapping's resident pages (O(1) from the counters)."""
    report = MemoryReport()
    report.private_dirty = mapping.n_anon * PAGE_SIZE
    report.pss = float(mapping.n_anon * PAGE_SIZE)
    report.swap = mapping.n_swapped * PAGE_SIZE
    if mapping.file is not None and mapping.n_file:
        solo = min(mapping.n_file, mapping.file.solo_pages(mapping.id))
        report.private_clean = solo * PAGE_SIZE
        report.shared_clean = (mapping.n_file - solo) * PAGE_SIZE
        report.pss += mapping.file.pss_pages(mapping.id) * PAGE_SIZE
    return report


def measure(space: VirtualAddressSpace) -> MemoryReport:
    """Account a whole address space."""
    total = MemoryReport()
    for mapping in space.mappings():
        total += measure_mapping(mapping)
    return total


def measure_many(spaces: Iterable[VirtualAddressSpace]) -> MemoryReport:
    """Aggregate accounting across several address spaces.

    Note that summing RSS double-counts shared pages (as it does on a real
    machine); summed PSS is the physically-meaningful total.
    """
    total = MemoryReport()
    for space in spaces:
        total += measure(space)
    return total
