"""Virtual address spaces with mmap/munmap/mprotect/madvise and demand paging.

One :class:`VirtualAddressSpace` stands in for one process (one FaaS instance
container).  Pages start non-present and fault in on first touch, exactly like
anonymous memory under Linux; the accounting layer then derives USS/RSS/PSS
from per-page states.  The operations the paper's mechanisms need are all
here:

* HotSpot commits/uncommits heap ranges (``commit``/``uncommit`` -- the
  ``mmap``-based expand/shrink of §3.2.1),
* Desiccant releases free pages with ``discard`` (the
  ``mmap(space.top(), ...)`` of Algorithm 1, equivalent to
  ``madvise(MADV_DONTNEED)``),
* the swap baseline moves private pages out with ``swap_out_range``,
* the library optimization unmaps private file ranges found via smaps.
"""

from __future__ import annotations

import enum
import itertools
from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.mem.layout import (
    PAGE_SIZE,
    PAGE_SHIFT,
    PROT_RW,
    Protection,
    page_ceil,
    page_floor,
)
from repro.mem.physical import MappedFile, PhysicalMemory

#: Where anonymous/bump allocations start; mirrors the x86-64 mmap area.
DEFAULT_MMAP_BASE = 0x7F00_0000_0000

_mapping_ids = itertools.count(1)


class MemoryError_(Exception):
    """Base class for address-space errors (named to avoid the builtin)."""


class SegmentationFault(MemoryError_):
    """Access to an unmapped or protection-violating address."""


class MappingConflict(MemoryError_):
    """A fixed-address mmap overlaps an existing mapping."""


class PageState(enum.Enum):
    """Per-page residency state within a mapping."""

    NOT_PRESENT = 0
    ANON_DIRTY = 1  # private anonymous frame (includes COW'd file pages)
    FILE_CLEAN = 2  # backed by the shared file page cache
    SWAPPED = 3  # private page pushed to the swap device


@dataclass
class FaultCounts:
    """Faults incurred by one touch operation."""

    minor: int = 0
    major: int = 0

    def __iadd__(self, other: "FaultCounts") -> "FaultCounts":
        self.minor += other.minor
        self.major += other.major
        return self

    @property
    def total(self) -> int:
        return self.minor + self.major


class Mapping:
    """A contiguous virtual memory area (one ``/proc/pid/maps`` line)."""

    def __init__(
        self,
        start: int,
        length: int,
        prot: Protection,
        name: str,
        file: Optional[MappedFile] = None,
        file_offset: int = 0,
        shared: bool = False,
    ) -> None:
        if start % PAGE_SIZE or length % PAGE_SIZE:
            raise ValueError("mappings must be page aligned")
        if length <= 0:
            raise ValueError("mapping length must be positive")
        if shared and file is None:
            raise ValueError("shared mappings must be file-backed")
        if file is not None and file_offset % PAGE_SIZE:
            raise ValueError("file offset must be page aligned")
        self.id = next(_mapping_ids)
        self.start = start
        self.length = length
        self.prot = prot
        self.name = name
        self.file = file
        self.file_offset = file_offset
        self.shared = shared
        #: page index within the mapping -> state (absent == NOT_PRESENT)
        self.pages: Dict[int, PageState] = {}
        #: Residency counters kept in lockstep with ``pages`` so accounting
        #: is O(1) per mapping.
        self.n_anon = 0
        self.n_file = 0
        self.n_swapped = 0

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def num_pages(self) -> int:
        return self.length >> PAGE_SHIFT

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def file_page_of(self, rel_page: int) -> int:
        """Map a page index within this mapping to a page index in the file."""
        return (self.file_offset >> PAGE_SHIFT) + rel_page

    def page_states(self) -> Iterator[Tuple[int, PageState]]:
        """Iterate over (relative page index, state) of present pages."""
        return iter(self.pages.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.file.path if self.file else "anon"
        return (
            f"Mapping({self.start:#x}-{self.end:#x} {self.prot!r} "
            f"{self.name} [{kind}])"
        )


class VirtualAddressSpace:
    """One process's address space: mappings plus demand-paged residency."""

    def __init__(
        self,
        name: str,
        physical: Optional[PhysicalMemory] = None,
        mmap_base: int = DEFAULT_MMAP_BASE,
    ) -> None:
        self.name = name
        self.physical = physical if physical is not None else PhysicalMemory()
        self._mappings: Dict[int, Mapping] = {}
        self._starts: List[int] = []  # sorted starts for lookup
        self._bump = mmap_base
        self.faults = FaultCounts()
        self.closed = False
        #: Bumped on any residency/mapping change; accounting caches on it.
        self.version = 0
        #: Bumped only when resident pages are *released* (discard, swap,
        #: uncommit, munmap); runtimes use it to skip re-touching data that
        #: cannot have gone away.
        self.release_epoch = 0

    # ------------------------------------------------------------------ maps

    def mappings(self) -> List[Mapping]:
        """All mappings, ordered by start address."""
        return [self._mappings[s] for s in self._starts]

    def find_mapping(self, addr: int) -> Optional[Mapping]:
        """Return the mapping containing ``addr``, or ``None``."""
        idx = bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        mapping = self._mappings[self._starts[idx]]
        return mapping if mapping.contains(addr) else None

    def mmap(
        self,
        length: int,
        prot: Protection = PROT_RW,
        file: Optional[MappedFile] = None,
        file_offset: int = 0,
        shared: bool = False,
        name: str = "[anon]",
        addr: Optional[int] = None,
    ) -> Mapping:
        """Create a new mapping and return it.

        With ``addr=None`` the space picks the next free address (bump
        allocation); a fixed ``addr`` raises :class:`MappingConflict` when it
        overlaps an existing mapping (unlike ``MAP_FIXED``, we never silently
        clobber -- callers wanting replace-semantics use :meth:`discard`).
        """
        self._check_open()
        length = page_ceil(length)
        if addr is None:
            addr = self._bump
            self._bump += length + PAGE_SIZE  # guard page gap
        else:
            if addr % PAGE_SIZE:
                raise ValueError("fixed mmap address must be page aligned")
            if self._overlaps(addr, length):
                raise MappingConflict(f"mapping at {addr:#x}+{length:#x} overlaps")
            self._bump = max(self._bump, addr + length + PAGE_SIZE)
        mapping = Mapping(addr, length, prot, name, file, file_offset, shared)
        self._insert(mapping)
        self.version += 1
        return mapping

    def munmap(self, addr: int, length: int) -> None:
        """Remove mappings in ``[addr, addr+length)``, splitting at edges."""
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        for mapping in self._overlapping(start, end):
            self._split_for(mapping, start, end)
        for mapping in self._overlapping(start, end):
            # After splitting, every overlapping mapping is fully contained.
            self._release_pages(mapping, range(mapping.num_pages))
            self._remove(mapping)
        self.version += 1

    def mprotect(self, addr: int, length: int, prot: Protection) -> None:
        """Change protection over a range (does *not* free frames)."""
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        self._require_fully_mapped(start, end)
        for mapping in self._overlapping(start, end):
            self._split_for(mapping, start, end)
        for mapping in self._overlapping(start, end):
            mapping.prot = prot
        self.version += 1

    def commit(self, addr: int, length: int) -> None:
        """Make a reserved range usable (``mprotect`` to read/write)."""
        self.mprotect(addr, length, PROT_RW)

    def uncommit(self, addr: int, length: int) -> None:
        """Return a range to reserved state and drop its frames.

        Equivalent to HotSpot's shrink: ``mmap`` fixed ``PROT_NONE`` over the
        range, which both blocks access and releases physical memory.
        """
        self.discard(addr, length)
        self.mprotect(addr, length, Protection.NONE)

    # --------------------------------------------------------------- touches

    def touch(self, addr: int, length: int, write: bool = True) -> FaultCounts:
        """Access ``[addr, addr+length)``, faulting pages in as needed.

        Returns the faults incurred; raises :class:`SegmentationFault` for
        unmapped or protection-violating accesses.
        """
        self._check_open()
        counts = FaultCounts()
        start, end = page_floor(addr), page_ceil(addr + length)
        pos = start
        while pos < end:
            mapping = self.find_mapping(pos)
            if mapping is None:
                raise SegmentationFault(f"{self.name}: access at {pos:#x} unmapped")
            needed = Protection.WRITE if write else Protection.READ
            if not mapping.prot & needed:
                raise SegmentationFault(
                    f"{self.name}: {needed!r} access at {pos:#x} "
                    f"on {mapping.prot!r} mapping"
                )
            span_end = min(end, mapping.end)
            first = (pos - mapping.start) >> PAGE_SHIFT
            last = (span_end - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT
            for rel in range(first, last):
                counts += self._touch_page(mapping, rel, write)
            pos = span_end
        self.faults += counts
        return counts

    def _touch_page(self, mapping: Mapping, rel: int, write: bool) -> FaultCounts:
        state = mapping.pages.get(rel, PageState.NOT_PRESENT)
        counts = FaultCounts()
        if state is not PageState.ANON_DIRTY and not (
            state is PageState.FILE_CLEAN and not (write and not mapping.shared)
        ):
            self.version += 1
        if state is PageState.NOT_PRESENT:
            counts.minor += 1
            if mapping.file is not None and not (write and not mapping.shared):
                # Read of a file page, or write to a MAP_SHARED file page:
                # serve from / install into the page cache.
                fresh = mapping.file.touch(mapping.file_page_of(rel), mapping.id)
                if fresh:
                    self.physical.alloc_file()
                mapping.pages[rel] = PageState.FILE_CLEAN
                mapping.n_file += 1
            else:
                # Anonymous page, or COW write to a private file page.
                self.physical.alloc_anon()
                mapping.pages[rel] = PageState.ANON_DIRTY
                mapping.n_anon += 1
        elif state is PageState.FILE_CLEAN and write and not mapping.shared:
            # Copy-on-write: the private file page becomes an anon frame.
            counts.minor += 1
            if mapping.file.untouch(mapping.file_page_of(rel), mapping.id):
                self.physical.free_file()
            self.physical.alloc_anon()
            mapping.pages[rel] = PageState.ANON_DIRTY
            mapping.n_file -= 1
            mapping.n_anon += 1
        elif state is PageState.SWAPPED:
            counts.major += 1
            self.physical.swap.swap_in()
            self.physical.alloc_anon()
            mapping.pages[rel] = PageState.ANON_DIRTY
            mapping.n_swapped -= 1
            mapping.n_anon += 1
        return counts

    # ------------------------------------------------------------- reclaim

    def discard(self, addr: int, length: int) -> int:
        """``madvise(MADV_DONTNEED)``: drop frames, keep the mapping.

        Returns the number of pages whose physical memory was released.
        Subsequent touches zero-fill-fault the pages back in.
        """
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        released = 0
        for mapping in self._overlapping(start, end):
            first = max(0, (start - mapping.start) >> PAGE_SHIFT)
            last = min(
                mapping.num_pages,
                (min(end, mapping.end) - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT,
            )
            released += self._release_pages(mapping, range(first, last))
        return released

    def swap_out_range(self, addr: int, length: int) -> int:
        """Push private resident pages in the range to swap (the §5.6 baseline).

        Returns the number of pages swapped out.  File-clean pages are simply
        dropped (the kernel would too -- they can be re-read).
        """
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        moved = 0
        for mapping in self._overlapping(start, end):
            first = max(0, (start - mapping.start) >> PAGE_SHIFT)
            last = min(
                mapping.num_pages,
                (min(end, mapping.end) - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT,
            )
            for rel in range(first, last):
                state = mapping.pages.get(rel)
                if state is PageState.ANON_DIRTY:
                    self.physical.free_anon()
                    self.physical.swap.swap_out()
                    mapping.pages[rel] = PageState.SWAPPED
                    mapping.n_anon -= 1
                    mapping.n_swapped += 1
                    moved += 1
                elif state is PageState.FILE_CLEAN:
                    if mapping.file.untouch(mapping.file_page_of(rel), mapping.id):
                        self.physical.free_file()
                    del mapping.pages[rel]
                    mapping.n_file -= 1
                    moved += 1
        if moved:
            self.version += 1
            self.release_epoch += 1
        return moved

    def close(self) -> None:
        """Tear the whole address space down (instance destruction)."""
        if self.closed:
            return
        for mapping in list(self.mappings()):
            self._release_pages(mapping, range(mapping.num_pages))
            self._remove(mapping)
        self.closed = True

    # ------------------------------------------------------------ internals

    def _release_pages(self, mapping: Mapping, rels: Iterable[int]) -> int:
        released = 0
        for rel in rels:
            state = mapping.pages.pop(rel, None)
            if state is None:
                continue
            if state is PageState.ANON_DIRTY:
                self.physical.free_anon()
                mapping.n_anon -= 1
                released += 1
            elif state is PageState.FILE_CLEAN:
                if mapping.file.untouch(mapping.file_page_of(rel), mapping.id):
                    self.physical.free_file()
                mapping.n_file -= 1
                released += 1
            elif state is PageState.SWAPPED:
                self.physical.swap.swap_in()  # discard from swap
                mapping.n_swapped -= 1
                released += 1
        if released:
            self.version += 1
            self.release_epoch += 1
        return released

    def _insert(self, mapping: Mapping) -> None:
        self._mappings[mapping.start] = mapping
        insort(self._starts, mapping.start)

    def _remove(self, mapping: Mapping) -> None:
        del self._mappings[mapping.start]
        self._starts.remove(mapping.start)

    def _overlaps(self, start: int, length: int) -> bool:
        return bool(self._overlapping(start, start + length))

    def _overlapping(self, start: int, end: int) -> List[Mapping]:
        result = []
        idx = max(0, bisect_right(self._starts, start) - 1)
        for s in self._starts[idx:]:
            mapping = self._mappings[s]
            if mapping.start >= end:
                break
            if mapping.end > start:
                result.append(mapping)
        return result

    def _require_fully_mapped(self, start: int, end: int) -> None:
        covered = start
        for mapping in self._overlapping(start, end):
            if mapping.start > covered:
                raise SegmentationFault(
                    f"{self.name}: hole at {covered:#x} in mprotect range"
                )
            covered = max(covered, mapping.end)
        if covered < end:
            raise SegmentationFault(f"{self.name}: hole at {covered:#x} in mprotect range")

    def _split_for(self, mapping: Mapping, start: int, end: int) -> None:
        """Split ``mapping`` so the overlap with [start, end) is standalone."""
        if mapping.start < start < mapping.end:
            self._split_at(mapping, start)
            mapping = self.find_mapping(start)
            assert mapping is not None
        if mapping.start < end < mapping.end:
            self._split_at(mapping, end)

    def _split_at(self, mapping: Mapping, addr: int) -> None:
        assert mapping.start < addr < mapping.end and addr % PAGE_SIZE == 0
        head_len = addr - mapping.start
        tail = Mapping(
            addr,
            mapping.end - addr,
            mapping.prot,
            mapping.name,
            mapping.file,
            mapping.file_offset + head_len if mapping.file else 0,
            mapping.shared,
        )
        split_page = head_len >> PAGE_SHIFT
        for rel in [r for r in mapping.pages if r >= split_page]:
            state = mapping.pages.pop(rel)
            tail.pages[rel - split_page] = state
            if state is PageState.ANON_DIRTY:
                mapping.n_anon -= 1
                tail.n_anon += 1
            elif state is PageState.SWAPPED:
                mapping.n_swapped -= 1
                tail.n_swapped += 1
            elif state is PageState.FILE_CLEAN:
                mapping.n_file -= 1
                tail.n_file += 1
                # Re-home the page-cache reference under the tail's mapping id.
                file_page = mapping.file_page_of(rel)
                mapping.file.untouch(file_page, mapping.id)
                mapping.file.touch(file_page, tail.id)
        mapping.length = head_len
        self._insert(tail)

    def _check_open(self) -> None:
        if self.closed:
            raise MemoryError_(f"address space {self.name} is closed")
