"""Virtual address spaces with mmap/munmap/mprotect/madvise and demand paging.

One :class:`VirtualAddressSpace` stands in for one process (one FaaS instance
container).  Pages start non-present and fault in on first touch, exactly like
anonymous memory under Linux; the accounting layer then derives USS/RSS/PSS
from per-page states.  The operations the paper's mechanisms need are all
here:

* HotSpot commits/uncommits heap ranges (``commit``/``uncommit`` -- the
  ``mmap``-based expand/shrink of §3.2.1),
* Desiccant releases free pages with ``discard`` (the
  ``mmap(space.top(), ...)`` of Algorithm 1, equivalent to
  ``madvise(MADV_DONTNEED)``),
* the swap baseline moves private pages out with ``swap_out_range``,
* the library optimization unmaps private file ranges found via smaps.

Residency is stored run-length: each mapping keeps a sorted
:class:`~repro.mem.runlist.RunList` of ``(start_page, end_page, PageState)``
runs, so every range operation above costs O(runs changed + log runs)
rather than O(pages).  The paper's mechanisms are range-granular by nature
(``madvise`` over the free span, HotSpot shrinking whole regions), so runs
stay few and a 200 MiB fault-in is a single splice, not 51k dict stores.
"""

from __future__ import annotations

import enum
import itertools
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.mem.layout import (
    PAGE_SIZE,
    PAGE_SHIFT,
    PROT_RW,
    Protection,
    page_ceil,
    page_floor,
)
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.runlist import RunList
from repro.memo import digest as memo_digest
from repro.memo import toggle as memo_toggle

#: Where anonymous/bump allocations start; mirrors the x86-64 mmap area.
DEFAULT_MMAP_BASE = 0x7F00_0000_0000

_mapping_ids = itertools.count(1)


class MemoryError_(Exception):
    """Base class for address-space errors (named to avoid the builtin)."""


class SegmentationFault(MemoryError_):
    """Access to an unmapped or protection-violating address."""


class MappingConflict(MemoryError_):
    """A fixed-address mmap overlaps an existing mapping."""


class PageState(enum.Enum):
    """Per-page residency state within a mapping."""

    NOT_PRESENT = 0
    ANON_DIRTY = 1  # private anonymous frame (includes COW'd file pages)
    FILE_CLEAN = 2  # backed by the shared file page cache
    SWAPPED = 3  # private page pushed to the swap device


@dataclass
class FaultCounts:
    """Faults incurred by one touch operation."""

    minor: int = 0
    major: int = 0

    def __iadd__(self, other: "FaultCounts") -> "FaultCounts":
        self.minor += other.minor
        self.major += other.major
        return self

    @property
    def total(self) -> int:
        return self.minor + self.major


@dataclass
class SwapOutResult:
    """Outcome of one :meth:`VirtualAddressSpace.swap_out_range` call.

    ``swapped`` counts private pages actually moved to the swap device;
    ``dropped`` counts FILE_CLEAN pages whose cache reference was simply
    released (the kernel would do the same -- they can be re-read).  Both
    free physical memory, but only swapped pages cost a major fault later.
    """

    swapped: int = 0
    dropped: int = 0

    @property
    def total(self) -> int:
        """All pages whose frames were released by the call."""
        return self.swapped + self.dropped

    def __iadd__(self, other: "SwapOutResult") -> "SwapOutResult":
        self.swapped += other.swapped
        self.dropped += other.dropped
        return self

    def __bool__(self) -> bool:
        return self.total > 0


class PageStateView:
    """Read-only, dict-like view of a mapping's present pages.

    Kept for callers of the former ``Mapping.pages`` dict: supports
    ``rel in view``, ``view[rel]`` (KeyError when not present),
    ``view.get(rel)``, ``len(view)``, iteration, and ``.items()``.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: "Mapping") -> None:
        self._mapping = mapping

    def __contains__(self, rel: int) -> bool:
        return self._mapping.state_of(rel) is not PageState.NOT_PRESENT

    def __getitem__(self, rel: int) -> PageState:
        state = self._mapping.state_of(rel)
        if state is PageState.NOT_PRESENT:
            raise KeyError(rel)
        return state

    def get(self, rel: int, default=None):
        state = self._mapping.state_of(rel)
        return default if state is PageState.NOT_PRESENT else state

    def __len__(self) -> int:
        m = self._mapping
        return m.n_anon + m.n_file + m.n_swapped

    def __iter__(self) -> Iterator[int]:
        for rel, _state in self._mapping.page_states():
            yield rel

    def items(self) -> Iterator[Tuple[int, PageState]]:
        return self._mapping.page_states()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageStateView({dict(self.items())!r})"


class Mapping:
    """A contiguous virtual memory area (one ``/proc/pid/maps`` line)."""

    def __init__(
        self,
        start: int,
        length: int,
        prot: Protection,
        name: str,
        file: Optional[MappedFile] = None,
        file_offset: int = 0,
        shared: bool = False,
    ) -> None:
        if start % PAGE_SIZE or length % PAGE_SIZE:
            raise ValueError("mappings must be page aligned")
        if length <= 0:
            raise ValueError("mapping length must be positive")
        if shared and file is None:
            raise ValueError("shared mappings must be file-backed")
        if file is not None and file_offset % PAGE_SIZE:
            raise ValueError("file offset must be page aligned")
        self.id = next(_mapping_ids)
        self.start = start
        self.length = length
        self.prot = prot
        self.name = name
        self.file = file
        self.file_offset = file_offset
        self.shared = shared
        #: Run-length page table: runs of (first, last, PageState); gaps are
        #: NOT_PRESENT.  All mutation goes through single splices.
        self._runs = RunList()
        #: Residency counters kept in lockstep with ``_runs`` so accounting
        #: is O(1) per mapping.
        self.n_anon = 0
        self.n_file = 0
        self.n_swapped = 0

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def num_pages(self) -> int:
        return self.length >> PAGE_SHIFT

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def file_page_of(self, rel_page: int) -> int:
        """Map a page index within this mapping to a page index in the file."""
        return (self.file_offset >> PAGE_SHIFT) + rel_page

    @property
    def pages(self) -> PageStateView:
        """Dict-like view over present pages (compat with the old dict)."""
        return PageStateView(self)

    def state_of(self, rel: int) -> PageState:
        """State of one page (``NOT_PRESENT`` when never touched)."""
        return self._runs.value_at(rel, PageState.NOT_PRESENT)

    def runs(
        self, first: int = 0, last: Optional[int] = None
    ) -> Iterator[Tuple[int, int, PageState]]:
        """Present ``(first, last, state)`` runs clipped to the window."""
        if last is None:
            last = self.num_pages
        return self._runs.iter_runs(first, last)

    def segments(
        self, first: int = 0, last: Optional[int] = None
    ) -> Iterator[Tuple[int, int, PageState]]:
        """Like :meth:`runs` but with NOT_PRESENT gaps included."""
        if last is None:
            last = self.num_pages
        return self._runs.iter_segments(first, last, PageState.NOT_PRESENT)

    def page_states(self) -> Iterator[Tuple[int, PageState]]:
        """Iterate over (relative page index, state) of present pages."""
        for s, e, state in self._runs.iter_runs(0, self.num_pages):
            for rel in range(s, e):
                yield rel, state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.file.path if self.file else "anon"
        return (
            f"Mapping({self.start:#x}-{self.end:#x} {self.prot!r} "
            f"{self.name} [{kind}])"
        )


class VirtualAddressSpace:
    """One process's address space: mappings plus demand-paged residency."""

    def __init__(
        self,
        name: str,
        physical: Optional[PhysicalMemory] = None,
        mmap_base: int = DEFAULT_MMAP_BASE,
    ) -> None:
        self.name = name
        self.physical = physical if physical is not None else PhysicalMemory()
        self._mappings: Dict[int, Mapping] = {}
        self._starts: List[int] = []  # sorted starts for lookup
        self._bump = mmap_base
        self.faults = FaultCounts()
        self.closed = False
        self._version = 0
        #: Bumped only when resident pages are *released* (discard, swap,
        #: uncommit, munmap); runtimes use it to skip re-touching data that
        #: cannot have gone away.
        self.release_epoch = 0
        #: Bumped when *another* space's operation changes this space's
        #: USS (a shared file page gaining/losing its last co-sharer);
        #: fed by :meth:`MappedFile.watch` callbacks.  Caches that depend
        #: on USS must key on ``(version, external_version)``.
        self.external_version = 0
        #: Optional zero-argument callback fired whenever ``version`` or
        #: ``external_version`` moves; the platform uses it for dirty-set
        #: incremental aggregation.
        self.change_listener: Optional[Callable[[], None]] = None
        #: REPRO_MEMO construction snapshot: an FNV-1a fold over every
        #: state-changing operation on this space (``None`` = memo off).
        #: Equal digests from equal construction imply equal mutation
        #: histories, hence identical page-table state -- the space's
        #: contribution to the invocation fingerprint.
        self._memo_sig: Optional[int] = (
            memo_digest.FNV_OFFSET if memo_toggle.enabled() else None
        )
        #: Recording tape for the invocation currently being memoized
        #: (list of replayable op tuples); ``None`` outside recording.
        self._memo_tape: Optional[List[Tuple[int, ...]]] = None
        #: Per-``touch()`` scratch: pre-resolved splice effects, and
        #: whether any faulted segment involved shared page-cache state
        #: (which forces the whole touch back to op-level taping).
        self._touch_buf: List[Tuple[int, ...]] = []
        self._touch_file = False

    @property
    def version(self) -> int:
        """Bumped on any residency/mapping change; accounting caches on
        it.  Touch operations bump it by the number of pages that changed
        state, releases by one per releasing call -- the same cadence as
        the per-page implementation this replaces."""
        return self._version

    @version.setter
    def version(self, value: int) -> None:
        if value == self._version:
            return
        self._version = value
        if self.change_listener is not None:
            self.change_listener()

    def _on_file_change(self) -> None:
        """A shared file mutated this space's solo-page count from afar."""
        self.external_version += 1
        if self.change_listener is not None:
            self.change_listener()

    # ------------------------------------------------------------------ maps

    def mappings(self) -> List[Mapping]:
        """All mappings, ordered by start address."""
        return [self._mappings[s] for s in self._starts]

    def find_mapping(self, addr: int) -> Optional[Mapping]:
        """Return the mapping containing ``addr``, or ``None``."""
        idx = bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        mapping = self._mappings[self._starts[idx]]
        return mapping if mapping.contains(addr) else None

    def mmap(
        self,
        length: int,
        prot: Protection = PROT_RW,
        file: Optional[MappedFile] = None,
        file_offset: int = 0,
        shared: bool = False,
        name: str = "[anon]",
        addr: Optional[int] = None,
    ) -> Mapping:
        """Create a new mapping and return it.

        With ``addr=None`` the space picks the next free address (bump
        allocation); a fixed ``addr`` raises :class:`MappingConflict` when it
        overlaps an existing mapping (unlike ``MAP_FIXED``, we never silently
        clobber -- callers wanting replace-semantics use :meth:`discard`).
        """
        self._check_open()
        length = page_ceil(length)
        if addr is None:
            addr = self._bump
            self._bump += length + PAGE_SIZE  # guard page gap
        else:
            if addr % PAGE_SIZE:
                raise ValueError("fixed mmap address must be page aligned")
            if self._overlaps(addr, length):
                raise MappingConflict(f"mapping at {addr:#x}+{length:#x} overlaps")
            self._bump = max(self._bump, addr + length + PAGE_SIZE)
        mapping = Mapping(addr, length, prot, name, file, file_offset, shared)
        if file is not None:
            file.watch(mapping.id, self._on_file_change)
        self._insert(mapping)
        self.version += 1
        if self._memo_sig is not None:
            self._memo_sig = memo_digest.fold(
                self._memo_sig,
                memo_digest.OP_MMAP,
                mapping.start,
                length,
                prot.value,
                int(shared),
                int(file is not None),
            )
            if self._memo_tape is not None:
                if file is not None:
                    # File-backed mappings carry cross-instance page-cache
                    # identity; they only appear at boot, never inside an
                    # invocation -- drop the tape rather than record one.
                    self._memo_tape = None
                else:
                    self._memo_tape.append(
                        (memo_digest.OP_MMAP, length, prot.value, name, mapping.start)
                    )
        return mapping

    def munmap(self, addr: int, length: int) -> None:
        """Remove mappings in ``[addr, addr+length)``, splitting at edges."""
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        for mapping in self._overlapping(start, end):
            self._split_for(mapping, start, end)
        for mapping in self._overlapping(start, end):
            # After splitting, every overlapping mapping is fully contained.
            self._release_range(mapping, 0, mapping.num_pages)
            self._remove(mapping)
        self.version += 1
        if self._memo_sig is not None:
            self._memo_sig = memo_digest.fold(
                self._memo_sig, memo_digest.OP_MUNMAP, addr, length
            )
            if self._memo_tape is not None:
                self._memo_tape.append((memo_digest.OP_MUNMAP, addr, length))

    def mprotect(self, addr: int, length: int, prot: Protection) -> None:
        """Change protection over a range (does *not* free frames)."""
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        self._require_fully_mapped(start, end)
        for mapping in self._overlapping(start, end):
            self._split_for(mapping, start, end)
        for mapping in self._overlapping(start, end):
            mapping.prot = prot
        self.version += 1
        if self._memo_sig is not None:
            self._memo_sig = memo_digest.fold(
                self._memo_sig, memo_digest.OP_MPROTECT, addr, length, prot.value
            )
            if self._memo_tape is not None:
                self._memo_tape.append(
                    (memo_digest.OP_MPROTECT, addr, length, prot.value)
                )

    def commit(self, addr: int, length: int) -> None:
        """Make a reserved range usable (``mprotect`` to read/write)."""
        self.mprotect(addr, length, PROT_RW)

    def uncommit(self, addr: int, length: int) -> None:
        """Return a range to reserved state and drop its frames.

        Equivalent to HotSpot's shrink: ``mmap`` fixed ``PROT_NONE`` over the
        range, which both blocks access and releases physical memory.
        """
        self.discard(addr, length)
        self.mprotect(addr, length, Protection.NONE)

    # --------------------------------------------------------------- touches

    def touch(self, addr: int, length: int, write: bool = True) -> FaultCounts:
        """Access ``[addr, addr+length)``, faulting pages in as needed.

        Returns the faults incurred; raises :class:`SegmentationFault` for
        unmapped or protection-violating accesses.
        """
        self._check_open()
        counts = FaultCounts()
        start, end = page_floor(addr), page_ceil(addr + length)
        recording = self._memo_tape is not None
        if recording:
            self._touch_buf = []
            self._touch_file = False
        pos = start
        while pos < end:
            mapping = self.find_mapping(pos)
            if mapping is None:
                raise SegmentationFault(f"{self.name}: access at {pos:#x} unmapped")
            needed = Protection.WRITE if write else Protection.READ
            if not mapping.prot & needed:
                raise SegmentationFault(
                    f"{self.name}: {needed!r} access at {pos:#x} "
                    f"on {mapping.prot!r} mapping"
                )
            span_end = min(end, mapping.end)
            first = (pos - mapping.start) >> PAGE_SHIFT
            last = (span_end - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT
            counts += self._touch_range(mapping, first, last, write)
            pos = span_end
        self.faults += counts
        if self._memo_sig is not None and counts.total:
            # Zero-fault touches change no state and stay off the digest
            # and the tape; fault counts pin the pre-state the replay must
            # reproduce.
            self._memo_sig = memo_digest.fold(
                self._memo_sig,
                memo_digest.OP_TOUCH,
                addr,
                length,
                int(write),
                counts.minor,
                counts.major,
            )
            if recording:
                if self._touch_file:
                    # Page-cache state is shared across instances, so the
                    # effect of a file-backed fault depends on global state
                    # the fingerprint does not pin: keep the whole touch
                    # op-level and re-execute it organically on a hit.
                    self._memo_tape.append(
                        (memo_digest.OP_TOUCH, addr, length, int(write))
                    )
                else:
                    # Pure anon/swap faults: record the pre-resolved splice
                    # effects so a hit applies them directly.
                    self._memo_tape.extend(self._touch_buf)
        return counts

    def _touch_range(
        self, mapping: Mapping, first: int, last: int, write: bool
    ) -> FaultCounts:
        """Fault pages ``[first, last)`` of one mapping in, run by run."""
        counts = FaultCounts()
        cow = write and not mapping.shared  # private writes copy file pages
        changed = 0
        pieces: List[Tuple[int, int, PageState]] = []
        phys = self.physical
        recording = self._memo_tape is not None
        if recording:
            anon_before = mapping.n_anon
            swapped_before = mapping.n_swapped
        for s, e, state in mapping._runs.iter_segments(
            first, last, PageState.NOT_PRESENT
        ):
            n = e - s
            if state is PageState.ANON_DIRTY:
                pieces.append((s, e, state))
            elif state is PageState.NOT_PRESENT:
                counts.minor += n
                changed += n
                if mapping.file is not None and not cow:
                    # Read of file pages, or write to MAP_SHARED file pages:
                    # serve from / install into the page cache.
                    if recording:
                        self._touch_file = True
                    fresh = mapping.file.touch_range(
                        mapping.file_page_of(s), mapping.file_page_of(e), mapping.id
                    )
                    if fresh:
                        phys.alloc_file(fresh)
                    pieces.append((s, e, PageState.FILE_CLEAN))
                    mapping.n_file += n
                else:
                    # Anonymous pages, or COW writes to unfaulted file pages.
                    phys.alloc_anon(n)
                    pieces.append((s, e, PageState.ANON_DIRTY))
                    mapping.n_anon += n
            elif state is PageState.FILE_CLEAN:
                if cow:
                    # Copy-on-write: private file pages become anon frames.
                    counts.minor += n
                    changed += n
                    if recording:
                        self._touch_file = True
                    freed = mapping.file.untouch_range(
                        mapping.file_page_of(s), mapping.file_page_of(e), mapping.id
                    )
                    if freed:
                        phys.free_file(freed)
                    phys.alloc_anon(n)
                    pieces.append((s, e, PageState.ANON_DIRTY))
                    mapping.n_file -= n
                    mapping.n_anon += n
                else:
                    pieces.append((s, e, state))
            else:  # SWAPPED
                counts.major += n
                changed += n
                phys.swap.swap_in(n)
                phys.alloc_anon(n)
                pieces.append((s, e, PageState.ANON_DIRTY))
                mapping.n_swapped -= n
                mapping.n_anon += n
        if changed:
            mapping._runs.splice(first, last, pieces)
            self.version += changed
            if recording and not self._touch_file:
                self._touch_buf.append(
                    (
                        memo_digest.TAPE_SPLICE,
                        mapping.start,
                        first,
                        last,
                        tuple(pieces),
                        mapping.n_anon - anon_before,
                        mapping.n_swapped - swapped_before,
                        counts.minor,
                        counts.major,
                        changed,
                    )
                )
        return counts

    # ------------------------------------------------------------- reclaim

    def discard(self, addr: int, length: int) -> int:
        """``madvise(MADV_DONTNEED)``: drop frames, keep the mapping.

        Returns the number of pages whose physical memory was released.
        Subsequent touches zero-fill-fault the pages back in.
        """
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        released = 0
        for mapping in self._overlapping(start, end):
            first = max(0, (start - mapping.start) >> PAGE_SHIFT)
            last = min(
                mapping.num_pages,
                (min(end, mapping.end) - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT,
            )
            released += self._release_range(mapping, first, last, record=True)
        if self._memo_sig is not None and released:
            # The tape records per-mapping effects inside ``_release_range``;
            # the digest keeps folding at the call level.
            self._memo_sig = memo_digest.fold(
                self._memo_sig, memo_digest.OP_DISCARD, addr, length, released
            )
        return released

    def swap_out_range(self, addr: int, length: int) -> SwapOutResult:
        """Push private resident pages in the range to swap (the §5.6 baseline).

        Returns a :class:`SwapOutResult`: ``swapped`` private pages moved to
        the swap device plus ``dropped`` FILE_CLEAN pages whose cache
        reference was released (re-readable, so never written to swap).
        """
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        result = SwapOutResult()
        phys = self.physical
        for mapping in self._overlapping(start, end):
            first = max(0, (start - mapping.start) >> PAGE_SHIFT)
            last = min(
                mapping.num_pages,
                (min(end, mapping.end) - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT,
            )
            pieces: List[Tuple[int, int, PageState]] = []
            swapped = dropped = 0
            for s, e, state in mapping._runs.iter_runs(first, last):
                n = e - s
                if state is PageState.ANON_DIRTY:
                    phys.free_anon(n)
                    phys.swap.swap_out(n)
                    pieces.append((s, e, PageState.SWAPPED))
                    swapped += n
                elif state is PageState.FILE_CLEAN:
                    freed = mapping.file.untouch_range(
                        mapping.file_page_of(s), mapping.file_page_of(e), mapping.id
                    )
                    if freed:
                        phys.free_file(freed)
                    dropped += n  # left out of ``pieces``: page gone
                else:  # already SWAPPED
                    pieces.append((s, e, state))
            if swapped or dropped:
                mapping._runs.splice(first, last, pieces)
                mapping.n_anon -= swapped
                mapping.n_swapped += swapped
                mapping.n_file -= dropped
                result.swapped += swapped
                result.dropped += dropped
        if result.total:
            self.version += 1
            self.release_epoch += 1
            if self._memo_sig is not None:
                self._memo_sig = memo_digest.fold(
                    self._memo_sig,
                    memo_digest.OP_SWAP_OUT,
                    addr,
                    length,
                    result.swapped,
                    result.dropped,
                )
                if self._memo_tape is not None:
                    self._memo_tape.append((memo_digest.OP_SWAP_OUT, addr, length))
        return result

    def close(self) -> None:
        """Tear the whole address space down (instance destruction)."""
        if self.closed:
            return
        for mapping in list(self.mappings()):
            self._release_range(mapping, 0, mapping.num_pages)
            self._remove(mapping)
        self.closed = True

    # ------------------------------------------------------------ internals

    def _release_range(
        self, mapping: Mapping, first: int, last: int, record: bool = False
    ) -> int:
        """Free frames for every present page in ``[first, last)``.

        With ``record=True`` (the ``discard`` path) and an active memo tape,
        the per-mapping release is taped as a pre-resolved ``TAPE_CLEAR``
        effect -- unless file pages were involved, in which case the
        sub-range is taped op-level and replays organically.  ``munmap`` and
        ``close`` pass ``record=False``: their callers tape (or need) the
        whole operation instead.
        """
        released = 0
        anon_freed = swap_freed = 0
        file_seen = False
        phys = self.physical
        for s, e, state in mapping._runs.iter_runs(first, last):
            n = e - s
            if state is PageState.ANON_DIRTY:
                phys.free_anon(n)
                mapping.n_anon -= n
                anon_freed += n
            elif state is PageState.FILE_CLEAN:
                freed = mapping.file.untouch_range(
                    mapping.file_page_of(s), mapping.file_page_of(e), mapping.id
                )
                if freed:
                    phys.free_file(freed)
                mapping.n_file -= n
                file_seen = True
            else:  # SWAPPED: discard straight from the swap device.  Not a
                # swap-in -- no frame is allocated and no major fault is paid,
                # so counting it as one would break swap-in/major-fault parity
                # (and under-report swap traffic in snapshot accounting).
                phys.swap.discard(n)
                mapping.n_swapped -= n
                swap_freed += n
            released += n
        if released:
            mapping._runs.clear(first, last)
            self.version += 1
            self.release_epoch += 1
            if record and self._memo_tape is not None:
                if file_seen:
                    self._memo_tape.append(
                        (
                            memo_digest.OP_DISCARD,
                            mapping.start + (first << PAGE_SHIFT),
                            (last - first) << PAGE_SHIFT,
                        )
                    )
                else:
                    self._memo_tape.append(
                        (
                            memo_digest.TAPE_CLEAR,
                            mapping.start,
                            first,
                            last,
                            anon_freed,
                            swap_freed,
                        )
                    )
        return released

    def _insert(self, mapping: Mapping) -> None:
        self._mappings[mapping.start] = mapping
        insort(self._starts, mapping.start)

    def _remove(self, mapping: Mapping) -> None:
        if mapping.file is not None:
            mapping.file.unwatch(mapping.id)
        del self._mappings[mapping.start]
        idx = bisect_left(self._starts, mapping.start)
        del self._starts[idx]

    def _overlaps(self, start: int, length: int) -> bool:
        return bool(self._overlapping(start, start + length))

    def _overlapping(self, start: int, end: int) -> List[Mapping]:
        result = []
        idx = max(0, bisect_right(self._starts, start) - 1)
        for s in self._starts[idx:]:
            mapping = self._mappings[s]
            if mapping.start >= end:
                break
            if mapping.end > start:
                result.append(mapping)
        return result

    def _require_fully_mapped(self, start: int, end: int) -> None:
        covered = start
        for mapping in self._overlapping(start, end):
            if mapping.start > covered:
                raise SegmentationFault(
                    f"{self.name}: hole at {covered:#x} in mprotect range"
                )
            covered = max(covered, mapping.end)
        if covered < end:
            raise SegmentationFault(f"{self.name}: hole at {covered:#x} in mprotect range")

    def _split_for(self, mapping: Mapping, start: int, end: int) -> None:
        """Split ``mapping`` so the overlap with [start, end) is standalone."""
        if mapping.start < start < mapping.end:
            self._split_at(mapping, start)
            mapping = self.find_mapping(start)
            assert mapping is not None
        if mapping.start < end < mapping.end:
            self._split_at(mapping, end)

    def _split_at(self, mapping: Mapping, addr: int) -> None:
        assert mapping.start < addr < mapping.end and addr % PAGE_SIZE == 0
        head_len = addr - mapping.start
        tail = Mapping(
            addr,
            mapping.end - addr,
            mapping.prot,
            mapping.name,
            mapping.file,
            mapping.file_offset + head_len if mapping.file else 0,
            mapping.shared,
        )
        if tail.file is not None:
            tail.file.watch(tail.id, self._on_file_change)
        split_page = head_len >> PAGE_SHIFT
        tail_pieces: List[Tuple[int, int, PageState]] = []
        n_anon = n_file = n_swapped = 0
        for s, e, state in mapping._runs.iter_runs(split_page, mapping.num_pages):
            tail_pieces.append((s - split_page, e - split_page, state))
            n = e - s
            if state is PageState.ANON_DIRTY:
                n_anon += n
            elif state is PageState.FILE_CLEAN:
                n_file += n
                # Re-home the page-cache references under the tail's mapping
                # id; the untouch/touch frame deltas cancel out, so physical
                # counters are untouched.
                fp_s, fp_e = mapping.file_page_of(s), mapping.file_page_of(e)
                mapping.file.untouch_range(fp_s, fp_e, mapping.id)
                mapping.file.touch_range(fp_s, fp_e, tail.id)
            else:
                n_swapped += n
        mapping._runs.clear(split_page, mapping.num_pages)
        tail._runs.splice(0, tail.num_pages, tail_pieces)
        mapping.n_anon -= n_anon
        mapping.n_file -= n_file
        mapping.n_swapped -= n_swapped
        tail.n_anon = n_anon
        tail.n_file = n_file
        tail.n_swapped = n_swapped
        mapping.length = head_len
        self._insert(tail)

    def _check_open(self) -> None:
        if self.closed:
            raise MemoryError_(f"address space {self.name} is closed")
