"""Physical frame bookkeeping, the file page cache, and a swap device.

The simulator does not materialize page contents; what matters to the paper's
measurements is *which* pages are resident, whether they are private or
shared, and how many processes share each file-backed page.  Frames are
therefore tracked as counters plus, for file-backed pages, run-length
intervals of the sharing mappings (the equivalent of the kernel's
``mapcount``).  Every operation takes a *range*: faulting a whole library in
is O(runs), not O(pages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, FrozenSet

from repro.mem.layout import PAGE_SIZE, pages_in
from repro.mem.runlist import RunList


class OutOfPhysicalMemory(Exception):
    """Raised when an allocation would exceed the configured frame capacity."""


@dataclass
class SwapDevice:
    """A trivially-modelled swap device: a counter of swapped-out pages.

    The swap baseline in §5.6 of the paper pushes frozen instances' pages out
    without runtime guidance; what matters for the reproduction is the count
    of swapped pages (freed physical memory) and the major faults paid when
    they come back.
    """

    pages: int = 0
    total_swap_outs: int = 0
    total_swap_ins: int = 0
    total_discards: int = 0

    def swap_out(self, n: int = 1) -> None:
        """Record ``n`` pages moving from DRAM to swap."""
        self.pages += n
        self.total_swap_outs += n

    def swap_in(self, n: int = 1) -> None:
        """Record ``n`` pages moving back from swap to DRAM."""
        if n > self.pages:
            raise ValueError(f"swap-in of {n} pages but only {self.pages} swapped")
        self.pages -= n
        self.total_swap_ins += n

    def discard(self, n: int = 1) -> None:
        """Drop ``n`` swapped pages without bringing them back to DRAM
        (munmap/discard of a swapped range).  Unlike :meth:`swap_in`, no
        major fault is paid and ``total_swap_ins`` must not move -- the
        oracle's swap-flow and swap-major-parity laws depend on it."""
        if n > self.pages:
            raise ValueError(f"discard of {n} pages but only {self.pages} swapped")
        self.pages -= n
        self.total_discards += n

    @property
    def bytes(self) -> int:
        """Bytes currently held on the swap device."""
        return self.pages * PAGE_SIZE


_NO_HOLDERS: FrozenSet[int] = frozenset()
_ZERO = Fraction(0)


class MappedFile:
    """A file that can back memory mappings (e.g. ``libjvm.so``).

    Pages live in a shared page cache: a file page is resident while at least
    one mapping has touched it, and its *sharer count* is the number of
    distinct mappings currently touching it.  That count is what turns a page
    from ``private_clean`` (one toucher) into ``shared_clean`` (several), the
    distinction USS/PSS accounting is built on.

    Sharer sets are stored as a :class:`~repro.mem.runlist.RunList` of
    frozensets -- instances fault libraries in by *prefix ranges*
    (``touched_fraction``), so the number of distinct sharer sets along the
    file stays tiny even with hundreds of co-mapping instances, and
    :meth:`touch_range`/:meth:`untouch_range` cost O(runs x holders) rather
    than O(pages x holders).  Per-mapping aggregates (solo pages and the
    proportional share) are maintained incrementally, with the share kept as
    an exact :class:`~fractions.Fraction` so bulk updates (``n / sharers``)
    are bit-identical to ``n`` single-page updates.
    """

    def __init__(self, path: str, size: int) -> None:
        if size <= 0:
            raise ValueError(f"file size must be positive, got {size}")
        self.path = path
        self.size = size
        #: Sharer sets per page range; a gap means the page is not cached.
        self._holders = RunList()
        #: Per-mapping count of pages it holds *alone* (private_clean).
        self._solo: Dict[int, int] = {}
        #: Per-mapping proportional share, in pages (sum of 1/sharers over
        #: its touched pages), as an exact rational.
        self._pss: Dict[int, Fraction] = {}
        #: Pages currently resident in the cache.
        self._resident = 0
        #: Per-mapping change callbacks (see :meth:`watch`).
        self._watchers: Dict[int, Callable[[], None]] = {}

    # ------------------------------------------------------------- watchers

    def watch(self, mapping_id: int, callback: Callable[[], None]) -> None:
        """Call ``callback`` whenever *another* mapping's touch/untouch
        changes ``mapping_id``'s solo-page count.

        That is the only way a mapping's USS can move without an
        operation on its own address space (its private_clean bucket
        flips when a page gains or loses its last co-sharer), so the
        callback is exactly the cross-space cache-invalidation signal
        :class:`~repro.mem.vmm.VirtualAddressSpace` needs.
        """
        self._watchers[mapping_id] = callback

    def unwatch(self, mapping_id: int) -> None:
        self._watchers.pop(mapping_id, None)

    def _notify(self, mapping_id: int) -> None:
        watcher = self._watchers.get(mapping_id)
        if watcher is not None:
            watcher()

    @property
    def num_pages(self) -> int:
        """Number of pages the file spans."""
        return pages_in(self.size)

    # ------------------------------------------------------------- touches

    def touch(self, file_page: int, mapping_id: int) -> bool:
        """Register ``mapping_id`` as touching ``file_page``.

        Returns ``True`` if this touch brought the page into the cache (i.e.
        a frame was allocated for it).
        """
        return self.touch_range(file_page, file_page + 1, mapping_id) == 1

    def untouch(self, file_page: int, mapping_id: int) -> bool:
        """Drop ``mapping_id``'s reference to ``file_page``.

        Returns ``True`` if the page left the cache (its frame is freed).
        """
        return self.untouch_range(file_page, file_page + 1, mapping_id) == 1

    def touch_range(self, first: int, last: int, mapping_id: int) -> int:
        """Register ``mapping_id`` as touching file pages ``[first, last)``.

        Returns the number of pages this brought into the cache (frames the
        caller must allocate).  Bulk equivalent of ``touch`` per page.
        """
        self._check_page(first)
        if last > self.num_pages or last <= first:
            if last != first:  # empty ranges are a no-op, not an error
                self._check_page(last - 1)
            return 0
        fresh = 0
        changed = False
        pieces = []
        solo, pss = self._solo, self._pss
        for s, e, holders in self._holders.iter_segments(first, last, _NO_HOLDERS):
            n = e - s
            if not holders:
                # Fresh pages: this mapping is the sole toucher.
                fresh += n
                changed = True
                pieces.append((s, e, frozenset((mapping_id,))))
                solo[mapping_id] = solo.get(mapping_id, 0) + n
                pss[mapping_id] = pss.get(mapping_id, _ZERO) + n
            elif mapping_id in holders:
                pieces.append((s, e, holders))
            else:
                # Every pre-existing holder's share drops 1/k -> 1/(k+1).
                k = len(holders)
                changed = True
                delta = n * (Fraction(1, k + 1) - Fraction(1, k))
                for holder in holders:
                    pss[holder] = pss.get(holder, _ZERO) + delta
                if k == 1:
                    (other,) = holders
                    solo[other] = solo.get(other, 0) - n
                    self._notify(other)
                pss[mapping_id] = pss.get(mapping_id, _ZERO) + Fraction(n, k + 1)
                pieces.append((s, e, holders | {mapping_id}))
        if changed:
            self._holders.splice(first, last, pieces)
            self._resident += fresh
        return fresh

    def untouch_range(self, first: int, last: int, mapping_id: int) -> int:
        """Drop ``mapping_id``'s references to file pages ``[first, last)``.

        Returns the number of pages that left the cache (frames the caller
        must free).  Pages the mapping never touched are skipped silently,
        like the single-page ``untouch``.
        """
        freed = 0
        changed = False
        pieces = []
        solo, pss = self._solo, self._pss
        for s, e, holders in self._holders.iter_runs(first, last):
            n = e - s
            if mapping_id not in holders:
                pieces.append((s, e, holders))
                continue
            k = len(holders)
            changed = True
            pss[mapping_id] = pss.get(mapping_id, _ZERO) - Fraction(n, k)
            if k == 1:
                solo[mapping_id] = solo.get(mapping_id, 0) - n
                freed += n  # last holder gone: pages leave the cache
            else:
                rest = holders - {mapping_id}
                delta = n * (Fraction(1, k - 1) - Fraction(1, k))
                for holder in rest:
                    pss[holder] = pss.get(holder, _ZERO) + delta
                if k == 2:
                    (other,) = rest
                    solo[other] = solo.get(other, 0) + n
                    self._notify(other)
                pieces.append((s, e, rest))
        if changed:
            self._holders.splice(first, last, pieces)
            self._resident -= freed
        return freed

    # ------------------------------------------------------------- queries

    def solo_pages(self, mapping_id: int) -> int:
        """Pages held only by this mapping (its private_clean count)."""
        return max(0, self._solo.get(mapping_id, 0))

    def pss_pages(self, mapping_id: int) -> float:
        """The mapping's proportional share of the file cache, in pages."""
        share = self._pss.get(mapping_id, _ZERO)
        return float(share) if share > 0 else 0.0

    def sharers(self, file_page: int) -> int:
        """Number of mappings currently touching ``file_page``."""
        return len(self._holders.value_at(file_page, _NO_HOLDERS))

    def resident_pages(self) -> int:
        """Number of file pages currently in the cache."""
        return self._resident

    def _check_page(self, file_page: int) -> None:
        if not 0 <= file_page < self.num_pages:
            raise ValueError(
                f"page {file_page} out of range for {self.path} "
                f"({self.num_pages} pages)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MappedFile({self.path!r}, {self.size} bytes)"


@dataclass
class PhysicalMemory:
    """Machine-level frame accounting shared by all address spaces.

    ``capacity_bytes=None`` means unlimited (characterization experiments);
    the FaaS platform passes its instance-cache budget so eviction pressure
    is observable.  All operations take a frame count, so a bulk fault-in
    of ``n`` pages is one counter update.
    """

    capacity_bytes: int | None = None
    swap: SwapDevice = field(default_factory=SwapDevice)
    _anon_frames: int = 0
    _file_frames: int = 0
    total_frame_allocs: int = 0

    @property
    def anon_bytes(self) -> int:
        """Bytes of private anonymous frames currently allocated."""
        return self._anon_frames * PAGE_SIZE

    @property
    def file_cache_bytes(self) -> int:
        """Bytes of file-cache frames currently allocated."""
        return self._file_frames * PAGE_SIZE

    @property
    def used_bytes(self) -> int:
        """All DRAM in use (anonymous + file cache)."""
        return self.anon_bytes + self.file_cache_bytes

    def available_bytes(self) -> int | None:
        """Free DRAM, or ``None`` when the machine is unlimited."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.used_bytes

    def alloc_anon(self, n: int = 1) -> None:
        """Allocate ``n`` anonymous frames (a zero-fill fault each)."""
        self._reserve(n)
        self._anon_frames += n
        self.total_frame_allocs += n

    def free_anon(self, n: int = 1) -> None:
        """Release ``n`` anonymous frames."""
        if n > self._anon_frames:
            raise ValueError(f"freeing {n} anon frames but only {self._anon_frames} live")
        self._anon_frames -= n

    def alloc_file(self, n: int = 1) -> None:
        """Allocate ``n`` page-cache frames."""
        self._reserve(n)
        self._file_frames += n
        self.total_frame_allocs += n

    def free_file(self, n: int = 1) -> None:
        """Release ``n`` page-cache frames."""
        if n > self._file_frames:
            raise ValueError(f"freeing {n} file frames but only {self._file_frames} live")
        self._file_frames -= n

    def _reserve(self, n: int) -> None:
        if self.capacity_bytes is None:
            return
        if self.used_bytes + n * PAGE_SIZE > self.capacity_bytes:
            raise OutOfPhysicalMemory(
                f"need {n * PAGE_SIZE} bytes, "
                f"only {self.capacity_bytes - self.used_bytes} free"
            )
