"""Physical frame bookkeeping, the file page cache, and a swap device.

The simulator does not materialize page contents; what matters to the paper's
measurements is *which* pages are resident, whether they are private or
shared, and how many processes share each file-backed page.  Frames are
therefore tracked as counters plus, for file-backed pages, a per-page set of
touching mappings (the equivalent of the kernel's ``mapcount``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.mem.layout import PAGE_SIZE, pages_in


class OutOfPhysicalMemory(Exception):
    """Raised when an allocation would exceed the configured frame capacity."""


@dataclass
class SwapDevice:
    """A trivially-modelled swap device: a counter of swapped-out pages.

    The swap baseline in §5.6 of the paper pushes frozen instances' pages out
    without runtime guidance; what matters for the reproduction is the count
    of swapped pages (freed physical memory) and the major faults paid when
    they come back.
    """

    pages: int = 0
    total_swap_outs: int = 0
    total_swap_ins: int = 0

    def swap_out(self, n: int = 1) -> None:
        """Record ``n`` pages moving from DRAM to swap."""
        self.pages += n
        self.total_swap_outs += n

    def swap_in(self, n: int = 1) -> None:
        """Record ``n`` pages moving back from swap to DRAM."""
        if n > self.pages:
            raise ValueError(f"swap-in of {n} pages but only {self.pages} swapped")
        self.pages -= n
        self.total_swap_ins += n

    @property
    def bytes(self) -> int:
        """Bytes currently held on the swap device."""
        return self.pages * PAGE_SIZE


class MappedFile:
    """A file that can back memory mappings (e.g. ``libjvm.so``).

    Pages live in a shared page cache: a file page is resident while at least
    one mapping has touched it, and its *sharer count* is the number of
    distinct mappings currently touching it.  That count is what turns a page
    from ``private_clean`` (one toucher) into ``shared_clean`` (several), the
    distinction USS/PSS accounting is built on.
    """

    def __init__(self, path: str, size: int) -> None:
        if size <= 0:
            raise ValueError(f"file size must be positive, got {size}")
        self.path = path
        self.size = size
        self._touchers: Dict[int, Set[int]] = {}
        #: Per-mapping count of pages it holds *alone* (private_clean).
        self._solo: Dict[int, int] = {}
        #: Per-mapping proportional share, in pages (sum of 1/sharers over
        #: its touched pages).  Maintained incrementally so accounting is
        #: O(1) per mapping; float drift is bounded well below a byte.
        self._pss: Dict[int, float] = {}

    @property
    def num_pages(self) -> int:
        """Number of pages the file spans."""
        return pages_in(self.size)

    def touch(self, file_page: int, mapping_id: int) -> bool:
        """Register ``mapping_id`` as touching ``file_page``.

        Returns ``True`` if this touch brought the page into the cache (i.e.
        a frame was allocated for it).
        """
        self._check_page(file_page)
        holders = self._touchers.setdefault(file_page, set())
        if mapping_id in holders:
            return False
        n = len(holders)
        fresh = n == 0
        # Every pre-existing holder's share of this page drops 1/n -> 1/(n+1).
        if n:
            delta = 1.0 / (n + 1) - 1.0 / n
            for holder in holders:
                self._pss[holder] = self._pss.get(holder, 0.0) + delta
            if n == 1:
                (other,) = holders
                self._solo[other] = self._solo.get(other, 0) - 1
        holders.add(mapping_id)
        self._pss[mapping_id] = self._pss.get(mapping_id, 0.0) + 1.0 / (n + 1)
        if n == 0:
            self._solo[mapping_id] = self._solo.get(mapping_id, 0) + 1
        return fresh

    def untouch(self, file_page: int, mapping_id: int) -> bool:
        """Drop ``mapping_id``'s reference to ``file_page``.

        Returns ``True`` if the page left the cache (its frame is freed).
        """
        holders = self._touchers.get(file_page)
        if not holders or mapping_id not in holders:
            return False
        n = len(holders)
        holders.discard(mapping_id)
        self._pss[mapping_id] = self._pss.get(mapping_id, 0.0) - 1.0 / n
        if n == 1:
            self._solo[mapping_id] = self._solo.get(mapping_id, 0) - 1
        else:
            delta = 1.0 / (n - 1) - 1.0 / n
            for holder in holders:
                self._pss[holder] = self._pss.get(holder, 0.0) + delta
            if n == 2:
                (other,) = holders
                self._solo[other] = self._solo.get(other, 0) + 1
        if holders:
            return False
        del self._touchers[file_page]
        return True

    def solo_pages(self, mapping_id: int) -> int:
        """Pages held only by this mapping (its private_clean count)."""
        return max(0, self._solo.get(mapping_id, 0))

    def pss_pages(self, mapping_id: int) -> float:
        """The mapping's proportional share of the file cache, in pages."""
        return max(0.0, self._pss.get(mapping_id, 0.0))

    def sharers(self, file_page: int) -> int:
        """Number of mappings currently touching ``file_page``."""
        return len(self._touchers.get(file_page, ()))

    def resident_pages(self) -> int:
        """Number of file pages currently in the cache."""
        return len(self._touchers)

    def _check_page(self, file_page: int) -> None:
        if not 0 <= file_page < self.num_pages:
            raise ValueError(
                f"page {file_page} out of range for {self.path} "
                f"({self.num_pages} pages)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MappedFile({self.path!r}, {self.size} bytes)"


@dataclass
class PhysicalMemory:
    """Machine-level frame accounting shared by all address spaces.

    ``capacity_bytes=None`` means unlimited (characterization experiments);
    the FaaS platform passes its instance-cache budget so eviction pressure
    is observable.
    """

    capacity_bytes: int | None = None
    swap: SwapDevice = field(default_factory=SwapDevice)
    _anon_frames: int = 0
    _file_frames: int = 0
    total_frame_allocs: int = 0

    @property
    def anon_bytes(self) -> int:
        """Bytes of private anonymous frames currently allocated."""
        return self._anon_frames * PAGE_SIZE

    @property
    def file_cache_bytes(self) -> int:
        """Bytes of file-cache frames currently allocated."""
        return self._file_frames * PAGE_SIZE

    @property
    def used_bytes(self) -> int:
        """All DRAM in use (anonymous + file cache)."""
        return self.anon_bytes + self.file_cache_bytes

    def available_bytes(self) -> int | None:
        """Free DRAM, or ``None`` when the machine is unlimited."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.used_bytes

    def alloc_anon(self, n: int = 1) -> None:
        """Allocate ``n`` anonymous frames (a zero-fill fault each)."""
        self._reserve(n)
        self._anon_frames += n
        self.total_frame_allocs += n

    def free_anon(self, n: int = 1) -> None:
        """Release ``n`` anonymous frames."""
        if n > self._anon_frames:
            raise ValueError(f"freeing {n} anon frames but only {self._anon_frames} live")
        self._anon_frames -= n

    def alloc_file(self, n: int = 1) -> None:
        """Allocate ``n`` page-cache frames."""
        self._reserve(n)
        self._file_frames += n
        self.total_frame_allocs += n

    def free_file(self, n: int = 1) -> None:
        """Release ``n`` page-cache frames."""
        if n > self._file_frames:
            raise ValueError(f"freeing {n} file frames but only {self._file_frames} live")
        self._file_frames -= n

    def _reserve(self, n: int) -> None:
        if self.capacity_bytes is None:
            return
        if self.used_bytes + n * PAGE_SIZE > self.capacity_bytes:
            raise OutOfPhysicalMemory(
                f"need {n * PAGE_SIZE} bytes, "
                f"only {self.capacity_bytes - self.used_bytes} free"
            )
