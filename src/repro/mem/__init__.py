"""OS memory substrate: page-granular virtual memory with demand paging.

This package emulates the slice of Linux memory management that the paper's
measurements depend on:

* ``layout``     -- page constants and address arithmetic.
* ``physical``   -- physical frame bookkeeping, the file page cache that lets
  library mappings share frames across instances, and a swap device.
* ``vmm``        -- :class:`VirtualAddressSpace` with ``mmap``/``munmap``/
  ``mprotect``/``madvise(DONTNEED)`` semantics and demand paging.
* ``accounting`` -- USS / RSS / PSS / private_dirty style metrics.
* ``smaps``      -- per-mapping reports mirroring ``/proc/<pid>/smaps``,
  which drive Desiccant's shared-library unmapping optimization.
"""

from repro.mem.layout import (
    PAGE_SIZE,
    Protection,
    page_ceil,
    page_floor,
    page_span,
)
from repro.mem.physical import MappedFile, PhysicalMemory, SwapDevice
from repro.mem.vmm import Mapping, MemoryError_, VirtualAddressSpace
from repro.mem.accounting import MemoryReport, measure, measure_many
from repro.mem.smaps import MappingReport, smaps_report

__all__ = [
    "PAGE_SIZE",
    "Protection",
    "page_ceil",
    "page_floor",
    "page_span",
    "MappedFile",
    "PhysicalMemory",
    "SwapDevice",
    "Mapping",
    "MemoryError_",
    "VirtualAddressSpace",
    "MemoryReport",
    "measure",
    "measure_many",
    "MappingReport",
    "smaps_report",
]
