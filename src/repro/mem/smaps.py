"""Per-mapping reports mirroring ``/proc/<pid>/smaps``.

Desiccant's shared-library optimization (§4.6) scans smaps for ranges that
are (1) private to the process, (2) not modified, and (3) file-backed, then
unmaps them.  :func:`find_unmappable_library_ranges` implements exactly that
predicate over these reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.mem.accounting import MemoryReport, measure_mapping
from repro.mem.vmm import Mapping, VirtualAddressSpace


@dataclass
class MappingReport:
    """One smaps entry: the mapping's identity plus its memory accounting."""

    start: int
    end: int
    name: str
    path: Optional[str]
    shared: bool
    report: MemoryReport

    @property
    def size(self) -> int:
        return self.end - self.start

    def is_private_unmodified_file(self) -> bool:
        """The §4.6 predicate: private, unmodified, file-backed."""
        return (
            self.path is not None
            and not self.shared
            and self.report.private_dirty == 0
            and self.report.shared_dirty == 0
        )


def smaps_report(space: VirtualAddressSpace) -> List[MappingReport]:
    """Produce smaps-style entries for every mapping in the space."""
    entries = []
    for mapping in space.mappings():
        entries.append(
            MappingReport(
                start=mapping.start,
                end=mapping.end,
                name=mapping.name,
                path=mapping.file.path if mapping.file else None,
                shared=mapping.shared,
                report=measure_mapping(mapping),
            )
        )
    return entries


def find_unmappable_library_ranges(
    space: VirtualAddressSpace,
) -> List[MappingReport]:
    """Return smaps entries eligible for the §4.6 library unmap.

    Only ranges whose file pages are mapped *solely* by this process qualify
    (their pages count toward USS); a range whose pages are shared with other
    instances costs nothing and unmapping it would hurt the sharers.
    """
    eligible = []
    for entry in smaps_report(space):
        if not entry.is_private_unmodified_file():
            continue
        # Skip ranges that currently cost nothing (fully shared or empty).
        if entry.report.private_clean == 0:
            continue
        eligible.append(entry)
    return eligible
