"""Page constants and address arithmetic shared by the memory substrate."""

from __future__ import annotations

import enum

#: Size of one page in bytes (matches x86-64 Linux base pages).
PAGE_SIZE: int = 4096

#: log2(PAGE_SIZE), used for fast index math.
PAGE_SHIFT: int = 12

#: Size of one V8 heap chunk in bytes (the paper's 256 KiB chunks).
CHUNK_SIZE: int = 256 * 1024

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


class Protection(enum.IntFlag):
    """Page protection bits, mirroring ``PROT_*`` from ``mmap(2)``."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4


#: Shorthand for the common read/write protection.
PROT_RW = Protection.READ | Protection.WRITE

#: Shorthand for read/execute (library text segments).
PROT_RX = Protection.READ | Protection.EXEC


def page_floor(addr: int) -> int:
    """Round ``addr`` down to the nearest page boundary."""
    return addr & ~(PAGE_SIZE - 1)


def page_ceil(addr: int) -> int:
    """Round ``addr`` up to the nearest page boundary."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def page_span(addr: int, length: int) -> range:
    """Return the range of page indices covered by ``[addr, addr+length)``.

    The indices are absolute (address >> PAGE_SHIFT), suitable for keys in
    residency sets.
    """
    if length <= 0:
        return range(0)
    first = page_floor(addr) >> PAGE_SHIFT
    last = page_ceil(addr + length) >> PAGE_SHIFT
    return range(first, last)


def pages_in(length: int) -> int:
    """Return how many whole pages are needed to hold ``length`` bytes."""
    return (length + PAGE_SIZE - 1) // PAGE_SIZE


def fmt_bytes(n: float) -> str:
    """Render a byte count using binary units, e.g. ``'7.88MiB'``."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.2f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")
