"""Reference per-page address space: the oracle for differential testing.

This is the dict-of-pages implementation the run-length
:mod:`repro.mem.vmm` replaced, kept verbatim (one state entry per resident
page, every operation a per-page loop).  It is deliberately slow and
deliberately simple -- the differential test drives it and the production
:class:`~repro.mem.vmm.VirtualAddressSpace` through identical syscall
sequences and asserts identical observable state after every step, and the
VMM microbenchmark uses it as the per-page baseline.

It shares :class:`PageState`, :class:`FaultCounts`, :class:`SwapOutResult`
and the physical layer with the production implementation, so reports,
fault counts, and return values are directly comparable.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.mem.layout import (
    PAGE_SIZE,
    PAGE_SHIFT,
    PROT_RW,
    Protection,
    page_ceil,
    page_floor,
)
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import (
    DEFAULT_MMAP_BASE,
    FaultCounts,
    MappingConflict,
    MemoryError_,
    PageState,
    SegmentationFault,
    SwapOutResult,
    _mapping_ids,
)


class ReferenceMapping:
    """Per-page twin of :class:`repro.mem.vmm.Mapping`."""

    def __init__(
        self,
        start: int,
        length: int,
        prot: Protection,
        name: str,
        file: Optional[MappedFile] = None,
        file_offset: int = 0,
        shared: bool = False,
    ) -> None:
        if start % PAGE_SIZE or length % PAGE_SIZE:
            raise ValueError("mappings must be page aligned")
        if length <= 0:
            raise ValueError("mapping length must be positive")
        if shared and file is None:
            raise ValueError("shared mappings must be file-backed")
        if file is not None and file_offset % PAGE_SIZE:
            raise ValueError("file offset must be page aligned")
        self.id = next(_mapping_ids)
        self.start = start
        self.length = length
        self.prot = prot
        self.name = name
        self.file = file
        self.file_offset = file_offset
        self.shared = shared
        #: page index within the mapping -> state (absent == NOT_PRESENT)
        self.pages: Dict[int, PageState] = {}
        self.n_anon = 0
        self.n_file = 0
        self.n_swapped = 0

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def num_pages(self) -> int:
        return self.length >> PAGE_SHIFT

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def file_page_of(self, rel_page: int) -> int:
        return (self.file_offset >> PAGE_SHIFT) + rel_page

    def state_of(self, rel: int) -> PageState:
        return self.pages.get(rel, PageState.NOT_PRESENT)

    def page_states(self) -> Iterator[Tuple[int, PageState]]:
        return iter(self.pages.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.file.path if self.file else "anon"
        return (
            f"ReferenceMapping({self.start:#x}-{self.end:#x} {self.prot!r} "
            f"{self.name} [{kind}])"
        )


class ReferenceAddressSpace:
    """Per-page twin of :class:`repro.mem.vmm.VirtualAddressSpace`."""

    def __init__(
        self,
        name: str,
        physical: Optional[PhysicalMemory] = None,
        mmap_base: int = DEFAULT_MMAP_BASE,
    ) -> None:
        self.name = name
        self.physical = physical if physical is not None else PhysicalMemory()
        self._mappings: Dict[int, ReferenceMapping] = {}
        self._starts: List[int] = []
        self._bump = mmap_base
        self.faults = FaultCounts()
        self.closed = False
        self.version = 0
        self.release_epoch = 0

    # ------------------------------------------------------------------ maps

    def mappings(self) -> List[ReferenceMapping]:
        return [self._mappings[s] for s in self._starts]

    def find_mapping(self, addr: int) -> Optional[ReferenceMapping]:
        idx = bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        mapping = self._mappings[self._starts[idx]]
        return mapping if mapping.contains(addr) else None

    def mmap(
        self,
        length: int,
        prot: Protection = PROT_RW,
        file: Optional[MappedFile] = None,
        file_offset: int = 0,
        shared: bool = False,
        name: str = "[anon]",
        addr: Optional[int] = None,
    ) -> ReferenceMapping:
        self._check_open()
        length = page_ceil(length)
        if addr is None:
            addr = self._bump
            self._bump += length + PAGE_SIZE
        else:
            if addr % PAGE_SIZE:
                raise ValueError("fixed mmap address must be page aligned")
            if self._overlaps(addr, length):
                raise MappingConflict(f"mapping at {addr:#x}+{length:#x} overlaps")
            self._bump = max(self._bump, addr + length + PAGE_SIZE)
        mapping = ReferenceMapping(addr, length, prot, name, file, file_offset, shared)
        self._insert(mapping)
        self.version += 1
        return mapping

    def munmap(self, addr: int, length: int) -> None:
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        for mapping in self._overlapping(start, end):
            self._split_for(mapping, start, end)
        for mapping in self._overlapping(start, end):
            self._release_pages(mapping, range(mapping.num_pages))
            self._remove(mapping)
        self.version += 1

    def mprotect(self, addr: int, length: int, prot: Protection) -> None:
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        self._require_fully_mapped(start, end)
        for mapping in self._overlapping(start, end):
            self._split_for(mapping, start, end)
        for mapping in self._overlapping(start, end):
            mapping.prot = prot
        self.version += 1

    def commit(self, addr: int, length: int) -> None:
        self.mprotect(addr, length, PROT_RW)

    def uncommit(self, addr: int, length: int) -> None:
        self.discard(addr, length)
        self.mprotect(addr, length, Protection.NONE)

    # --------------------------------------------------------------- touches

    def touch(self, addr: int, length: int, write: bool = True) -> FaultCounts:
        self._check_open()
        counts = FaultCounts()
        start, end = page_floor(addr), page_ceil(addr + length)
        pos = start
        while pos < end:
            mapping = self.find_mapping(pos)
            if mapping is None:
                raise SegmentationFault(f"{self.name}: access at {pos:#x} unmapped")
            needed = Protection.WRITE if write else Protection.READ
            if not mapping.prot & needed:
                raise SegmentationFault(
                    f"{self.name}: {needed!r} access at {pos:#x} "
                    f"on {mapping.prot!r} mapping"
                )
            span_end = min(end, mapping.end)
            first = (pos - mapping.start) >> PAGE_SHIFT
            last = (span_end - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT
            for rel in range(first, last):
                counts += self._touch_page(mapping, rel, write)
            pos = span_end
        self.faults += counts
        return counts

    def _touch_page(
        self, mapping: ReferenceMapping, rel: int, write: bool
    ) -> FaultCounts:
        state = mapping.pages.get(rel, PageState.NOT_PRESENT)
        counts = FaultCounts()
        if state is not PageState.ANON_DIRTY and not (
            state is PageState.FILE_CLEAN and not (write and not mapping.shared)
        ):
            self.version += 1
        if state is PageState.NOT_PRESENT:
            counts.minor += 1
            if mapping.file is not None and not (write and not mapping.shared):
                fresh = mapping.file.touch(mapping.file_page_of(rel), mapping.id)
                if fresh:
                    self.physical.alloc_file()
                mapping.pages[rel] = PageState.FILE_CLEAN
                mapping.n_file += 1
            else:
                self.physical.alloc_anon()
                mapping.pages[rel] = PageState.ANON_DIRTY
                mapping.n_anon += 1
        elif state is PageState.FILE_CLEAN and write and not mapping.shared:
            counts.minor += 1
            if mapping.file.untouch(mapping.file_page_of(rel), mapping.id):
                self.physical.free_file()
            self.physical.alloc_anon()
            mapping.pages[rel] = PageState.ANON_DIRTY
            mapping.n_file -= 1
            mapping.n_anon += 1
        elif state is PageState.SWAPPED:
            counts.major += 1
            self.physical.swap.swap_in()
            self.physical.alloc_anon()
            mapping.pages[rel] = PageState.ANON_DIRTY
            mapping.n_swapped -= 1
            mapping.n_anon += 1
        return counts

    # ------------------------------------------------------------- reclaim

    def discard(self, addr: int, length: int) -> int:
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        released = 0
        for mapping in self._overlapping(start, end):
            first = max(0, (start - mapping.start) >> PAGE_SHIFT)
            last = min(
                mapping.num_pages,
                (min(end, mapping.end) - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT,
            )
            released += self._release_pages(mapping, range(first, last))
        return released

    def swap_out_range(self, addr: int, length: int) -> SwapOutResult:
        self._check_open()
        start, end = page_floor(addr), page_ceil(addr + length)
        result = SwapOutResult()
        for mapping in self._overlapping(start, end):
            first = max(0, (start - mapping.start) >> PAGE_SHIFT)
            last = min(
                mapping.num_pages,
                (min(end, mapping.end) - mapping.start + PAGE_SIZE - 1) >> PAGE_SHIFT,
            )
            for rel in range(first, last):
                state = mapping.pages.get(rel)
                if state is PageState.ANON_DIRTY:
                    self.physical.free_anon()
                    self.physical.swap.swap_out()
                    mapping.pages[rel] = PageState.SWAPPED
                    mapping.n_anon -= 1
                    mapping.n_swapped += 1
                    result.swapped += 1
                elif state is PageState.FILE_CLEAN:
                    if mapping.file.untouch(mapping.file_page_of(rel), mapping.id):
                        self.physical.free_file()
                    del mapping.pages[rel]
                    mapping.n_file -= 1
                    result.dropped += 1
        if result.total:
            self.version += 1
            self.release_epoch += 1
        return result

    def close(self) -> None:
        if self.closed:
            return
        for mapping in list(self.mappings()):
            self._release_pages(mapping, range(mapping.num_pages))
            self._remove(mapping)
        self.closed = True

    # ------------------------------------------------------------ internals

    def _release_pages(self, mapping: ReferenceMapping, rels: Iterable[int]) -> int:
        released = 0
        for rel in rels:
            state = mapping.pages.pop(rel, None)
            if state is None:
                continue
            if state is PageState.ANON_DIRTY:
                self.physical.free_anon()
                mapping.n_anon -= 1
                released += 1
            elif state is PageState.FILE_CLEAN:
                if mapping.file.untouch(mapping.file_page_of(rel), mapping.id):
                    self.physical.free_file()
                mapping.n_file -= 1
                released += 1
            elif state is PageState.SWAPPED:
                # Discarded, not swapped in: no frame, no major fault.
                self.physical.swap.discard()
                mapping.n_swapped -= 1
                released += 1
        if released:
            self.version += 1
            self.release_epoch += 1
        return released

    def _insert(self, mapping: ReferenceMapping) -> None:
        self._mappings[mapping.start] = mapping
        insort(self._starts, mapping.start)

    def _remove(self, mapping: ReferenceMapping) -> None:
        del self._mappings[mapping.start]
        self._starts.remove(mapping.start)

    def _overlaps(self, start: int, length: int) -> bool:
        return bool(self._overlapping(start, start + length))

    def _overlapping(self, start: int, end: int) -> List[ReferenceMapping]:
        result = []
        idx = max(0, bisect_right(self._starts, start) - 1)
        for s in self._starts[idx:]:
            mapping = self._mappings[s]
            if mapping.start >= end:
                break
            if mapping.end > start:
                result.append(mapping)
        return result

    def _require_fully_mapped(self, start: int, end: int) -> None:
        covered = start
        for mapping in self._overlapping(start, end):
            if mapping.start > covered:
                raise SegmentationFault(
                    f"{self.name}: hole at {covered:#x} in mprotect range"
                )
            covered = max(covered, mapping.end)
        if covered < end:
            raise SegmentationFault(f"{self.name}: hole at {covered:#x} in mprotect range")

    def _split_for(self, mapping: ReferenceMapping, start: int, end: int) -> None:
        if mapping.start < start < mapping.end:
            self._split_at(mapping, start)
            mapping = self.find_mapping(start)
            assert mapping is not None
        if mapping.start < end < mapping.end:
            self._split_at(mapping, end)

    def _split_at(self, mapping: ReferenceMapping, addr: int) -> None:
        assert mapping.start < addr < mapping.end and addr % PAGE_SIZE == 0
        head_len = addr - mapping.start
        tail = ReferenceMapping(
            addr,
            mapping.end - addr,
            mapping.prot,
            mapping.name,
            mapping.file,
            mapping.file_offset + head_len if mapping.file else 0,
            mapping.shared,
        )
        split_page = head_len >> PAGE_SHIFT
        for rel in [r for r in mapping.pages if r >= split_page]:
            state = mapping.pages.pop(rel)
            tail.pages[rel - split_page] = state
            if state is PageState.ANON_DIRTY:
                mapping.n_anon -= 1
                tail.n_anon += 1
            elif state is PageState.SWAPPED:
                mapping.n_swapped -= 1
                tail.n_swapped += 1
            elif state is PageState.FILE_CLEAN:
                mapping.n_file -= 1
                tail.n_file += 1
                file_page = mapping.file_page_of(rel)
                mapping.file.untouch(file_page, mapping.id)
                mapping.file.touch(file_page, tail.id)
        mapping.length = head_len
        self._insert(tail)

    def _check_open(self) -> None:
        if self.closed:
            raise MemoryError_(f"address space {self.name} is closed")
