"""Sharded simulation: partition a cluster across worker processes.

A serial cluster run drives every node on one shared
:class:`~repro.sim.kernel.SimKernel`.  That is convenient but caps
replay throughput at one core and keeps every node's state in one
process.  This module supplies the generic machinery for the sharded
alternative: node shards run in separate worker processes, each with its
own kernel, synchronized by a coordinator in *conservative time epochs*.

Protocol
--------
The coordinator owns a :class:`ShardPool` of workers, each built from a
picklable *spec* by a picklable *host factory*.  A host exposes four
methods (duck-typed; :class:`repro.faas.cluster.ClusterShardHost` is the
canonical implementation)::

    begin_epoch(payload)   # accept this epoch's inputs (routed arrivals)
    advance(until)         # run the local kernel to the epoch horizon
    epoch_report(horizon)  # -> picklable dict (loads, conservation, clock)
    mark(name)             # phase transition (reset metrics, start trace)
    finalize()             # -> picklable dict (stats, trace paths); shuts down

One epoch is one ``epoch()`` call: the coordinator sends every worker
its inputs and the shared horizon, workers advance independently, and
the call returns only when every report is in -- a barrier.  Because all
cross-shard interaction (request routing) flows coordinator -> worker at
epoch boundaries, and routing decisions are derived deterministically
from the arrival sequence plus *previous-epoch* load digests, no worker
ever needs an event from a peer mid-epoch: the horizon is a conservative
lower bound on cross-shard event times, the classic null-message-free
special case of conservative parallel discrete-event simulation.

Determinism
-----------
Shard workers produce *node-canonical* event traces
(:class:`~repro.sim.trace.EventTraceSink` with ``normalize_seq=True``):
per-node records do not depend on which process or kernel hosted the
node.  :func:`merge_trace_files` merges the per-node JSONL streams into
one stream ordered by ``(t, node, seq)`` -- the same total order a
shared serial kernel produces -- so the merged trace's SHA-256 is
byte-identical to the serial run's for any shard count.

:class:`InlineShardPool` runs the identical epoch protocol with in-process
hosts (no forking); the serial twin of a sharded run is an inline pool
with one shard holding every node.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import multiprocessing
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ShardWorkerError",
    "ShardPool",
    "InlineShardPool",
    "make_pool",
    "epoch_horizons",
    "merge_trace_lines",
    "merge_trace_files",
    "sha256_lines",
]


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the worker-side traceback."""

    def __init__(self, shard: int, worker_traceback: str) -> None:
        super().__init__(
            f"shard worker {shard} failed:\n{worker_traceback.rstrip()}"
        )
        self.shard = shard
        self.worker_traceback = worker_traceback


def _worker_main(conn, host_factory, spec, env: Dict[str, str]) -> None:
    """Worker process entry: build the host, then serve epoch commands.

    Every command is answered with exactly one reply tuple --
    ``("report", dict)``, ``("ok", None)``, ``("result", dict)`` or
    ``("error", traceback_str)`` -- so the coordinator can run a strict
    send/recv lockstep per worker.
    """
    from repro import procenv  # local import: keep module picklable footprint small

    try:
        procenv.apply(env)
        host = host_factory(spec)
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            command = message[0]
            try:
                if command == "epoch":
                    _, horizon, payload = message
                    if payload:
                        host.begin_epoch(payload)
                    host.advance(horizon)
                    conn.send(("report", host.epoch_report(horizon)))
                elif command == "mark":
                    host.mark(message[1])
                    conn.send(("ok", None))
                elif command == "finish":
                    conn.send(("result", host.finalize()))
                    return
                else:
                    conn.send(("error", f"unknown shard command {command!r}"))
                    return
            except BaseException:
                conn.send(("error", traceback.format_exc()))
                return
    finally:
        conn.close()


class ShardPool:
    """Coordinator handle over one worker process per shard."""

    def __init__(
        self,
        host_factory: Callable[[Any], Any],
        specs: Sequence[Any],
        env: Optional[Dict[str, str]] = None,
        start_method: Optional[str] = None,
    ) -> None:
        from repro import procenv

        if not specs:
            raise ValueError("need at least one shard spec")
        if env is None:
            env = procenv.snapshot()
        context = multiprocessing.get_context(start_method)
        self._connections = []
        self._processes = []
        try:
            for spec in specs:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, host_factory, spec, env),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return len(self._connections)

    def _send(self, shard: int, message: Tuple) -> None:
        try:
            self._connections[shard].send(message)
        except (BrokenPipeError, OSError):
            # The worker already died (e.g. its host factory raised and
            # it closed the pipe).  Its queued error report -- if it got
            # one out -- still sits in the pipe buffer; the paired
            # _receive surfaces it as a ShardWorkerError.
            pass

    def _receive(self, shard: int) -> Any:
        try:
            kind, value = self._connections[shard].recv()
        except EOFError as exc:
            raise ShardWorkerError(shard, "worker exited without replying") from exc
        if kind == "error":
            raise ShardWorkerError(shard, value)
        return value

    def epoch(self, horizon: Optional[float], payloads: Sequence[Any]) -> List[Dict]:
        """Run one epoch on every shard; a barrier returning all reports.

        ``payloads[k]`` is shard *k*'s input batch (may be empty/None);
        ``horizon`` bounds every shard's local clock (``None`` = drain to
        quiescence -- only safe once no further inputs will be sent for
        times the drain could overrun).
        """
        if len(payloads) != len(self._connections):
            raise ValueError("one payload per shard required")
        for shard, payload in enumerate(payloads):
            self._send(shard, ("epoch", horizon, payload))
        return [self._receive(shard) for shard in range(len(self._connections))]

    def mark(self, name: str) -> None:
        """Broadcast a phase-transition mark; barrier."""
        for shard in range(len(self._connections)):
            self._send(shard, ("mark", name))
        for shard in range(len(self._connections)):
            self._receive(shard)

    def finish(self) -> List[Dict]:
        """Collect final results and shut every worker down."""
        for shard in range(len(self._connections)):
            self._send(shard, ("finish",))
        results = [self._receive(shard) for shard in range(len(self._connections))]
        self.close()
        return results

    def close(self) -> None:
        """Tear down workers unconditionally (error-path cleanup)."""
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
        self._connections = []
        self._processes = []


class InlineShardPool:
    """The same epoch protocol, with hosts living in this process.

    Used for the serial twin (one shard, every node) and for debugging a
    sharded run without process boundaries.  Deliberately does *not*
    touch the environment: inline hosts share the caller's live flags.
    """

    def __init__(self, host_factory: Callable[[Any], Any], specs: Sequence[Any]) -> None:
        if not specs:
            raise ValueError("need at least one shard spec")
        self._hosts = [host_factory(spec) for spec in specs]

    def __len__(self) -> int:
        return len(self._hosts)

    def epoch(self, horizon: Optional[float], payloads: Sequence[Any]) -> List[Dict]:
        if len(payloads) != len(self._hosts):
            raise ValueError("one payload per shard required")
        reports = []
        for host, payload in zip(self._hosts, payloads):
            if payload:
                host.begin_epoch(payload)
            host.advance(horizon)
            reports.append(host.epoch_report(horizon))
        return reports

    def mark(self, name: str) -> None:
        for host in self._hosts:
            host.mark(name)

    def finish(self) -> List[Dict]:
        return [host.finalize() for host in self._hosts]

    def close(self) -> None:
        pass


def make_pool(
    host_factory: Callable[[Any], Any],
    specs: Sequence[Any],
    processes: bool,
    start_method: Optional[str] = None,
):
    """Build a process pool, or the inline twin running the same protocol."""
    if processes:
        return ShardPool(host_factory, specs, start_method=start_method)
    return InlineShardPool(host_factory, specs)


# ------------------------------------------------------------------ epochs


def epoch_horizons(start: float, end: float, epoch_seconds: float) -> List[float]:
    """The conservative epoch grid covering ``(start, end]``.

    Horizons land at ``start + k * epoch_seconds`` and the last one is
    the first grid point ``>= end``, so every input time is covered by
    exactly one epoch.  Computed by *index* (not by accumulating floats)
    so every caller derives bit-identical horizons.
    """
    if epoch_seconds <= 0:
        raise ValueError("epoch_seconds must be positive")
    if end <= start:
        return [start + epoch_seconds]
    count = int((end - start) / epoch_seconds)
    horizons = [start + (k + 1) * epoch_seconds for k in range(count)]
    if not horizons or horizons[-1] < end:
        horizons.append(start + (count + 1) * epoch_seconds)
    return horizons


# ------------------------------------------------------------------- merge


def _keyed_lines(lines: Iterable[str]) -> Iterator[Tuple[Tuple[float, int, int], str]]:
    for line in lines:
        record = json.loads(line)
        yield (record["t"], record["node"], record["seq"]), line


def merge_trace_lines(sources: Sequence[Iterable[str]]) -> Iterator[str]:
    """Merge per-shard JSONL trace streams into one canonical stream.

    Each source must already be sorted by ``(t, node, seq)`` -- true of
    any single-node sink, and of any previously merged stream.  The
    merged order is the global event order a shared serial kernel
    produces: time-major, with same-time events from different nodes
    ordered by node id and ``seq`` breaking ties within a node.  Keys
    are unique (``seq`` is dense per node), so the merge is a total
    order independent of how records were partitioned across sources.
    """
    for _, line in heapq.merge(
        *[_keyed_lines(source) for source in sources], key=lambda pair: pair[0]
    ):
        yield line


def _iter_file(path: Path) -> Iterator[str]:
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line:
                yield line


def sha256_lines(lines: Iterable[str]) -> Tuple[int, str]:
    """Count and digest a line stream (newline-terminated, like the files)."""
    digest = hashlib.sha256()
    count = 0
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
        count += 1
    return count, digest.hexdigest()


def merge_trace_files(
    paths: Sequence[str | Path],
    out_path: Optional[str | Path] = None,
    archive_dir: Optional[str | Path] = None,
    archive_bucket_seconds: Optional[float] = None,
) -> Tuple[int, str]:
    """Merge per-node trace files; return ``(events, sha256)``.

    **Constant-memory guarantee**: every input is consumed line by line
    through a heap merge over one buffered reader per file, so peak
    memory is bounded by ``O(len(paths))`` read buffers plus one record
    -- independent of file sizes (regression-tested in
    ``tests/sim/test_merge_memory.py``).  With ``out_path`` the merged
    JSONL is also written; with ``archive_dir`` the merged stream is
    additionally rolled straight into segmented-archive form
    (:mod:`repro.trace.archive`), still in one streaming pass, and the
    archive manifest carries the same composed digest this function
    returns.
    """
    merged = heapq.merge(
        *[_keyed_lines(_iter_file(Path(path))) for path in paths],
        key=lambda pair: pair[0],
    )
    writer = None
    if archive_dir is not None:
        from repro.trace.archive import DEFAULT_BUCKET_SECONDS, ArchiveWriter

        writer = ArchiveWriter(
            archive_dir,
            bucket_seconds=(
                DEFAULT_BUCKET_SECONDS
                if archive_bucket_seconds is None
                else archive_bucket_seconds
            ),
        )
    handle = None
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        handle = out_path.open("w", encoding="utf-8")
    digest = hashlib.sha256()
    count = 0
    try:
        for (t, node, _), line in merged:
            if handle is not None:
                handle.write(line + "\n")
            if writer is not None:
                writer.add(t, node, line)
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
            count += 1
    finally:
        if handle is not None:
            handle.close()
    if writer is not None:
        # The merged stream is canonical, so the writer's input-order
        # digest is the composed digest: safe to stamp the manifest.
        writer.close(manifest=True)
    return count, digest.hexdigest()
