"""Sharded simulation: partition a cluster across worker processes.

A serial cluster run drives every node on one shared
:class:`~repro.sim.kernel.SimKernel`.  That is convenient but caps
replay throughput at one core and keeps every node's state in one
process.  This module supplies the generic machinery for the sharded
alternative: node shards run in separate worker processes, each with its
own kernel, synchronized by a coordinator in *conservative time epochs*.

Protocol
--------
The coordinator owns a :class:`ShardPool` of workers, each built from a
picklable *spec* by a picklable *host factory*.  A host exposes these
methods (duck-typed; :class:`repro.faas.cluster.ClusterShardHost` is the
canonical implementation)::

    window_begin(preamble)  # optional: window-scoped setup (interned defs)
    begin_epoch(payload)    # accept one epoch's inputs (routed arrivals)
    advance(until)          # run the local kernel to the epoch horizon
    epoch_end(horizon)      # optional: per-epoch bounded-memory flush
    epoch_report(horizon)   # -> picklable dict (clock, conservation, loads)
    mark(name)              # phase transition (reset metrics, start trace)
    finalize()              # -> picklable dict (stats, manifests); shuts down

One *window* is one :meth:`ShardPool.window` call: the coordinator
grants every shard a batch of K epoch horizons (plus each epoch's
inputs) in **one framed message** (:mod:`repro.sim.wire`), workers run
the whole window locally -- ``begin_epoch``/``advance``/``epoch_end``
per epoch -- and reply with **one aggregate report** taken at the
window's final horizon.  The call returns when every report is in: a
barrier, but one per window instead of one per epoch, which is what
collapses the per-epoch pipe round-trip constant that made PR 5's
process parallelism protocol-bound.

Batching is safe because all cross-shard interaction (request routing)
flows coordinator -> worker at epoch boundaries and the static
schedulers' routing is a pure function of the arrival sequence: every
epoch of a window can be routed before the window is granted.  Only
routing that feeds on previous-epoch load digests (``least-loaded-live``)
needs fresh reports each epoch; such sessions simply cap the window at
one epoch, recovering the PR 5 cadence exactly where -- and only where
-- conservative-horizon safety demands it.

Epoch horizons
--------------
:func:`epoch_horizons` is the fixed conservative grid.
:func:`adaptive_horizons` replaces it with horizons computed from
submission-log arrival density (:func:`arrival_density`): dense cells
are subdivided, runs of idle cells collapse into one long epoch -- so a
bursty, heavy-tailed log ("Serverless in the Wild") no longer pays
thousands of empty synchronization barriers during its idle stretches.
Both are *index-computed* pure functions of ``(times, start, end,
epoch_seconds)``: every caller -- coordinator or worker, any shard count
-- derives bit-identical horizons, which keeps the merged timeline
shard-count-invariant.

Determinism
-----------
Shard workers produce *node-canonical* event traces
(:class:`~repro.sim.trace.EventTraceSink` with ``normalize_seq=True``):
per-node records do not depend on which process or kernel hosted the
node.  :func:`merge_trace_files` merges the per-node JSONL streams into
one stream ordered by ``(t, node, seq)`` -- the same total order a
shared serial kernel produces -- so the merged trace's SHA-256 is
byte-identical to the serial run's for any shard count.

:class:`InlineShardPool` runs the identical window protocol with
in-process hosts (no forking, no codec); the serial twin of a sharded
run is an inline pool with one shard holding every node.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import multiprocessing
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ShardWorkerError",
    "ShardPool",
    "InlineShardPool",
    "make_pool",
    "run_window",
    "epoch_horizons",
    "adaptive_horizons",
    "arrival_density",
    "merge_trace_lines",
    "merge_trace_files",
    "sha256_lines",
]


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the worker-side traceback.

    Under the batched protocol a worker can die on any epoch of a
    multi-epoch window grant; ``epoch_index`` (position within the
    window) and ``horizon`` then pinpoint the failing epoch, so the
    error surfaces the epoch that raised, not just the window.
    """

    def __init__(
        self,
        shard: int,
        worker_traceback: str,
        epoch_index: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> None:
        where = f"shard worker {shard}"
        if epoch_index is not None:
            where += (
                f" (window epoch {epoch_index}, horizon "
                f"{'drain' if horizon is None else horizon})"
            )
        super().__init__(f"{where} failed:\n{worker_traceback.rstrip()}")
        self.shard = shard
        self.worker_traceback = worker_traceback
        self.epoch_index = epoch_index
        self.horizon = horizon


class _EpochFailure(Exception):
    """Internal: wraps a host exception with its window epoch context."""

    def __init__(self, epoch_index: int, horizon: Optional[float]) -> None:
        super().__init__()
        self.epoch_index = epoch_index
        self.horizon = horizon


def run_window(
    host: Any,
    horizons: Sequence[Optional[float]],
    payloads: Sequence[Sequence[Any]],
    preamble: Any = None,
) -> Dict:
    """Drive one host through a window of epochs; return the aggregate.

    The shared engine of both pool flavors: process workers run it
    worker-side, the inline pool runs it in the caller.  One
    ``begin_epoch``/``advance`` (plus the optional ``epoch_end`` flush
    hook) per epoch, then a single ``epoch_report`` at the window's
    final horizon.  Host exceptions are re-raised wrapped in an
    :class:`_EpochFailure` carrying the failing epoch's index and
    horizon, so the coordinator can report the epoch, not the window.
    """
    if len(horizons) != len(payloads):
        raise ValueError("one payload batch per window epoch required")
    if not horizons:
        raise ValueError("a window needs at least one epoch")
    if preamble is not None:
        window_begin = getattr(host, "window_begin", None)
        if window_begin is not None:
            window_begin(preamble)
    epoch_end = getattr(host, "epoch_end", None)
    for index, (horizon, payload) in enumerate(zip(horizons, payloads)):
        try:
            if payload:
                host.begin_epoch(payload)
            host.advance(horizon)
            if epoch_end is not None:
                epoch_end(horizon)
        except BaseException as exc:
            raise _EpochFailure(index, horizon) from exc
    return host.epoch_report(horizons[-1])


def _worker_main(
    conn, host_factory, spec, env: Dict[str, str], compress: bool = False
) -> None:
    """Worker process entry: build the host, then serve window commands.

    Every command is answered with exactly one framed reply --
    ``("report", dict)``, ``("ok", None)``, ``("result", dict)`` or
    ``("error", info)`` -- so the coordinator can run a strict
    send/recv lockstep per worker.  ``info`` is a dict carrying the
    worker traceback plus, for a mid-window failure, the failing
    epoch's index and horizon.
    """
    from repro import procenv  # local import: keep module picklable footprint small
    from repro.sim import wire

    def send_error(tb: str, epoch_index=None, horizon=None) -> None:
        wire.send_frame(
            conn,
            (
                "error",
                {"traceback": tb, "epoch_index": epoch_index, "horizon": horizon},
            ),
        )

    try:
        procenv.apply(env)
        host = host_factory(spec)
    except BaseException:
        send_error(traceback.format_exc())
        conn.close()
        return
    try:
        while True:
            try:
                message, _ = wire.recv_frame(conn)
            except EOFError:
                return
            command = message[0]
            try:
                if command == "window":
                    _, horizons, payloads, preamble = message
                    report = run_window(host, horizons, payloads, preamble)
                    wire.send_frame(conn, ("report", report), compress=compress)
                elif command == "mark":
                    host.mark(message[1])
                    wire.send_frame(conn, ("ok", None))
                elif command == "snapshot":
                    from repro.sim import checkpoint

                    wire.send_frame(
                        conn,
                        ("report", checkpoint.snapshot_host(host)),
                        compress=compress,
                    )
                elif command == "restore":
                    from repro.sim import checkpoint

                    _, blob, fork = message
                    host = checkpoint.restore_host(blob, fork=fork)
                    wire.send_frame(conn, ("ok", None))
                elif command == "finish":
                    wire.send_frame(
                        conn, ("result", host.finalize()), compress=compress
                    )
                    return
                else:
                    send_error(f"unknown shard command {command!r}")
                    return
            except _EpochFailure as failure:
                send_error(
                    traceback.format_exc(),
                    epoch_index=failure.epoch_index,
                    horizon=failure.horizon,
                )
                return
            except BaseException:
                send_error(traceback.format_exc())
                return
    finally:
        conn.close()


class ShardPool:
    """Coordinator handle over one worker process per shard.

    Tracks protocol-cost counters as it goes: ``round_trips`` (barrier
    exchanges -- one per window/mark/finish, however many shards),
    ``pipe_bytes_sent`` and ``pipe_bytes_received`` (exact framed bytes,
    both directions, summed over shards).  These are what the bench
    suite's ``pipe_bytes`` metric and the CI pipe-bytes regression gate
    measure.
    """

    def __init__(
        self,
        host_factory: Callable[[Any], Any],
        specs: Sequence[Any],
        env: Optional[Dict[str, str]] = None,
        start_method: Optional[str] = None,
        compress: bool = True,
    ) -> None:
        from repro import procenv

        if not specs:
            raise ValueError("need at least one shard spec")
        if env is None:
            env = procenv.snapshot()
        context = multiprocessing.get_context(start_method)
        self._connections = []
        self._processes = []
        #: Deflate large frames both ways (see ``wire.send_frame``).  Off
        #: for the ``unbatched`` comparison leg, whose pipe-byte totals
        #: must reflect the PR 5 protocol it models.
        self.compress = compress
        self.round_trips = 0
        self.pipe_bytes_sent = 0
        self.pipe_bytes_received = 0
        try:
            for spec in specs:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, host_factory, spec, env, compress),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return len(self._connections)

    @property
    def pipe_bytes(self) -> int:
        """Total framed bytes moved through the pipes, both directions."""
        return self.pipe_bytes_sent + self.pipe_bytes_received

    def _send(self, shard: int, message: Tuple) -> None:
        from repro.sim import wire

        try:
            self.pipe_bytes_sent += wire.send_frame(
                self._connections[shard], message, compress=self.compress
            )
        except (BrokenPipeError, OSError):
            # The worker already died (e.g. its host factory raised and
            # it closed the pipe).  Its queued error report -- if it got
            # one out -- still sits in the pipe buffer; the paired
            # _receive surfaces it as a ShardWorkerError.
            pass

    def _receive(self, shard: int) -> Any:
        from repro.sim import wire

        try:
            message, nbytes = wire.recv_frame(self._connections[shard])
        except EOFError as exc:
            raise ShardWorkerError(shard, "worker exited without replying") from exc
        self.pipe_bytes_received += nbytes
        kind, value = message
        if kind == "error":
            raise ShardWorkerError(
                shard,
                value["traceback"],
                epoch_index=value.get("epoch_index"),
                horizon=value.get("horizon"),
            )
        return value

    def window(
        self,
        horizons: Sequence[Optional[float]],
        payloads: Sequence[Sequence[Sequence[Any]]],
        preambles: Optional[Sequence[Any]] = None,
    ) -> List[Dict]:
        """Run a window of epochs on every shard; one barrier, all reports.

        ``horizons`` is the window's epoch horizon list (shared by every
        shard; a ``None`` final horizon drains to quiescence -- only safe
        once no further inputs will be sent for times the drain could
        overrun).  ``payloads[k][j]`` is shard *k*'s input batch for
        window epoch *j*; ``preambles[k]`` (optional) is delivered to
        shard *k*'s ``window_begin`` before the first epoch -- the
        definition-interning channel.
        """
        if len(payloads) != len(self._connections):
            raise ValueError("one payload batch per shard required")
        if preambles is not None and len(preambles) != len(self._connections):
            raise ValueError("one preamble per shard required")
        horizons = list(horizons)
        for shard, shard_payloads in enumerate(payloads):
            if len(shard_payloads) != len(horizons):
                raise ValueError("one payload batch per window epoch required")
            preamble = preambles[shard] if preambles is not None else None
            self._send(
                shard,
                ("window", horizons, [list(p) for p in shard_payloads], preamble),
            )
        self.round_trips += 1
        return [self._receive(shard) for shard in range(len(self._connections))]

    def epoch(self, horizon: Optional[float], payloads: Sequence[Any]) -> List[Dict]:
        """Single-epoch compatibility shim: a window of one."""
        return self.window([horizon], [[payload] for payload in payloads])

    def mark(self, name: str) -> None:
        """Broadcast a phase-transition mark; barrier."""
        for shard in range(len(self._connections)):
            self._send(shard, ("mark", name))
        self.round_trips += 1
        for shard in range(len(self._connections)):
            self._receive(shard)

    def snapshot(self) -> List[bytes]:
        """Collect one checkpoint blob per shard; barrier.

        Each worker pickles its live host (plus the process-global id
        counters) via :func:`repro.sim.checkpoint.snapshot_host` and
        ships the opaque blob back; the coordinator stores the blobs
        inside the session checkpoint.
        """
        for shard in range(len(self._connections)):
            self._send(shard, ("snapshot",))
        self.round_trips += 1
        return [self._receive(shard) for shard in range(len(self._connections))]

    def restore(
        self, blobs: Sequence[bytes], fork: Optional[Dict] = None
    ) -> None:
        """Replace every worker's host with its checkpointed twin; barrier.

        ``fork`` (optional) is broadcast with each blob and applied by
        the worker via the host's ``apply_fork`` hook -- the
        fork-and-explore entry point.
        """
        if len(blobs) != len(self._connections):
            raise ValueError("one checkpoint blob per shard required")
        for shard, blob in enumerate(blobs):
            self._send(shard, ("restore", blob, fork))
        self.round_trips += 1
        for shard in range(len(self._connections)):
            self._receive(shard)

    def finish(self) -> List[Dict]:
        """Collect final results and shut every worker down."""
        for shard in range(len(self._connections)):
            self._send(shard, ("finish",))
        self.round_trips += 1
        results = [self._receive(shard) for shard in range(len(self._connections))]
        self.close()
        return results

    def close(self) -> None:
        """Tear down workers unconditionally (error-path cleanup)."""
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
        self._connections = []
        self._processes = []


class InlineShardPool:
    """The same window protocol, with hosts living in this process.

    Used for the serial twin (one shard, every node) and for debugging a
    sharded run without process boundaries.  Deliberately does *not*
    touch the environment: inline hosts share the caller's live flags.
    No codec runs, so the cost counters stay zero -- which is exactly
    the honest accounting (nothing crossed a pipe).
    """

    def __init__(self, host_factory: Callable[[Any], Any], specs: Sequence[Any]) -> None:
        if not specs:
            raise ValueError("need at least one shard spec")
        self._hosts = [host_factory(spec) for spec in specs]
        self.round_trips = 0
        self.pipe_bytes_sent = 0
        self.pipe_bytes_received = 0

    def __len__(self) -> int:
        return len(self._hosts)

    @property
    def pipe_bytes(self) -> int:
        return 0

    def window(
        self,
        horizons: Sequence[Optional[float]],
        payloads: Sequence[Sequence[Sequence[Any]]],
        preambles: Optional[Sequence[Any]] = None,
    ) -> List[Dict]:
        if len(payloads) != len(self._hosts):
            raise ValueError("one payload batch per shard required")
        if preambles is not None and len(preambles) != len(self._hosts):
            raise ValueError("one preamble per shard required")
        reports = []
        for shard, (host, shard_payloads) in enumerate(zip(self._hosts, payloads)):
            preamble = preambles[shard] if preambles is not None else None
            try:
                reports.append(run_window(host, horizons, shard_payloads, preamble))
            except _EpochFailure as failure:
                raise ShardWorkerError(
                    shard,
                    traceback.format_exc(),
                    epoch_index=failure.epoch_index,
                    horizon=failure.horizon,
                ) from failure.__cause__
        self.round_trips += 1
        return reports

    def epoch(self, horizon: Optional[float], payloads: Sequence[Any]) -> List[Dict]:
        """Single-epoch compatibility shim: a window of one."""
        return self.window([horizon], [[payload] for payload in payloads])

    def mark(self, name: str) -> None:
        for host in self._hosts:
            host.mark(name)

    def snapshot(self) -> List[bytes]:
        # A *real* pickle round-trip even inline: the blob is what a
        # process worker would ship, so inline-pool tests exercise the
        # identical serialization path.
        from repro.sim import checkpoint

        self.round_trips += 1
        return [checkpoint.snapshot_host(host) for host in self._hosts]

    def restore(
        self, blobs: Sequence[bytes], fork: Optional[Dict] = None
    ) -> None:
        from repro.sim import checkpoint

        if len(blobs) != len(self._hosts):
            raise ValueError("one checkpoint blob per shard required")
        self._hosts = [checkpoint.restore_host(blob, fork=fork) for blob in blobs]
        self.round_trips += 1

    def finish(self) -> List[Dict]:
        return [host.finalize() for host in self._hosts]

    def close(self) -> None:
        pass


def make_pool(
    host_factory: Callable[[Any], Any],
    specs: Sequence[Any],
    processes: bool,
    start_method: Optional[str] = None,
    compress: bool = True,
):
    """Build a process pool, or the inline twin running the same protocol."""
    if processes:
        return ShardPool(
            host_factory, specs, start_method=start_method, compress=compress
        )
    return InlineShardPool(host_factory, specs)


# ------------------------------------------------------------------ epochs


def epoch_horizons(start: float, end: float, epoch_seconds: float) -> List[float]:
    """The fixed conservative epoch grid covering ``(start, end]``.

    Horizons land at ``start + k * epoch_seconds`` and the last one is
    the first grid point ``>= end``, so every input time is covered by
    exactly one epoch.  Computed by *index* (not by accumulating floats)
    so every caller derives bit-identical horizons.
    """
    if epoch_seconds <= 0:
        raise ValueError("epoch_seconds must be positive")
    if end <= start:
        return [start + epoch_seconds]
    count = int((end - start) / epoch_seconds)
    horizons = [start + (k + 1) * epoch_seconds for k in range(count)]
    if not horizons or horizons[-1] < end:
        horizons.append(start + (count + 1) * epoch_seconds)
    return horizons


def arrival_density(
    times: Sequence[float], start: float, end: float, cell_seconds: float
) -> List[int]:
    """Arrival counts per fixed grid cell -- the shared density index.

    Cell *k* covers ``[start + k*c, start + (k+1)*c)``; the cell count
    matches :func:`epoch_horizons`'s grid for the same window.  A pure,
    order-insensitive function of the full submission log, so the
    coordinator and every worker -- at any shard count -- derive the
    identical index (property-tested in
    ``tests/sim/test_adaptive_horizons.py``).  Both the adaptive epoch
    horizons and the archive's adaptive bucket sizing
    (:func:`repro.trace.archive.adaptive_bucket_seconds`) feed on it.
    """
    if cell_seconds <= 0:
        raise ValueError("cell_seconds must be positive")
    cells = len(epoch_horizons(start, end, cell_seconds))
    counts = [0] * cells
    span = cells * cell_seconds
    for t in times:
        if start <= t < start + span:
            counts[int((t - start) / cell_seconds)] += 1
    return counts


def adaptive_horizons(
    times: Sequence[float],
    start: float,
    end: float,
    epoch_seconds: float,
    dense_events: int = 64,
    max_merge: int = 16,
    max_split: int = 4,
) -> List[float]:
    """Density-adaptive conservative horizons covering ``(start, end]``.

    Replaces the fixed grid with horizons shaped by the submission log's
    arrival density (:func:`arrival_density` over the base grid):

    * a run of **empty** cells collapses into one long epoch (bounded by
      ``max_merge`` cells), so idle tails stop paying per-cell barriers;
    * a **dense** cell (``>= dense_events`` arrivals) is subdivided into
      up to ``max_split`` equal sub-epochs, index-computed, keeping
      ``least-loaded-live`` load digests fresh through bursts;
    * every other cell keeps its grid horizon.

    Guarantees: horizons are strictly increasing, the last horizon is
    ``>= end`` **and** strictly greater than every arrival time (an
    arrival exactly at the phase end still lands inside an epoch), and
    the result is a pure function of the inputs -- bit-identical on the
    coordinator and every worker at any shard count, because each
    horizon is computed by grid *index*, never by accumulating floats.
    """
    if epoch_seconds <= 0:
        raise ValueError("epoch_seconds must be positive")
    if dense_events < 1 or max_merge < 1 or max_split < 1:
        raise ValueError("dense_events, max_merge and max_split must be >= 1")
    counts = arrival_density(times, start, end, epoch_seconds)
    horizons: List[float] = []
    k = 0
    while k < len(counts):
        if counts[k] == 0:
            # Collapse this idle run (bounded) into one long epoch.
            j = k
            while (
                j + 1 < len(counts)
                and counts[j + 1] == 0
                and (j + 1 - k) < max_merge
            ):
                j += 1
            horizons.append(start + (j + 1) * epoch_seconds)
            k = j + 1
        elif counts[k] >= dense_events:
            splits = min(max_split, counts[k] // dense_events + 1)
            for i in range(1, splits + 1):
                horizons.append(
                    start + k * epoch_seconds + (i * epoch_seconds) / splits
                )
            k += 1
        else:
            horizons.append(start + (k + 1) * epoch_seconds)
            k += 1
    # Cover stragglers at or past the last horizon (an arrival time equal
    # to the phase end would otherwise never satisfy ``t < horizon``).
    last = max(times, default=start)
    cells = len(counts)
    while horizons[-1] <= last:
        cells += 1
        horizons.append(start + cells * epoch_seconds)
    return horizons


# ------------------------------------------------------------------- merge


def _keyed_lines(lines: Iterable[str]) -> Iterator[Tuple[Tuple[float, int, int], str]]:
    for line in lines:
        record = json.loads(line)
        yield (record["t"], record["node"], record["seq"]), line


def merge_trace_lines(sources: Sequence[Iterable[str]]) -> Iterator[str]:
    """Merge per-shard JSONL trace streams into one canonical stream.

    Each source must already be sorted by ``(t, node, seq)`` -- true of
    any single-node sink, and of any previously merged stream.  The
    merged order is the global event order a shared serial kernel
    produces: time-major, with same-time events from different nodes
    ordered by node id and ``seq`` breaking ties within a node.  Keys
    are unique (``seq`` is dense per node), so the merge is a total
    order independent of how records were partitioned across sources.
    """
    for _, line in heapq.merge(
        *[_keyed_lines(source) for source in sources], key=lambda pair: pair[0]
    ):
        yield line


def _iter_file(path: Path) -> Iterator[str]:
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line:
                yield line


#: Lines per SHA-256 / write / archive hand-off in the merge hot loops.
_DIGEST_CHUNK = 1024


def sha256_lines(lines: Iterable[str]) -> Tuple[int, str]:
    """Count and digest a line stream (newline-terminated, like the files).

    Hashes in :data:`_DIGEST_CHUNK`-line batches -- one ``update`` per
    chunk instead of two per line -- producing the identical digest.
    """
    digest = hashlib.sha256()
    count = 0
    chunk: List[str] = []
    for line in lines:
        chunk.append(line)
        count += 1
        if len(chunk) >= _DIGEST_CHUNK:
            digest.update(("\n".join(chunk) + "\n").encode("utf-8"))
            chunk.clear()
    if chunk:
        digest.update(("\n".join(chunk) + "\n").encode("utf-8"))
    return count, digest.hexdigest()


def merge_trace_files(
    paths: Sequence[str | Path],
    out_path: Optional[str | Path] = None,
    archive_dir: Optional[str | Path] = None,
    archive_bucket_seconds: Optional[float] = None,
) -> Tuple[int, str]:
    """Merge per-node trace files; return ``(events, sha256)``.

    **Constant-memory guarantee**: every input is consumed line by line
    through a heap merge over one buffered reader per file, so peak
    memory is bounded by ``O(len(paths))`` read buffers plus one record
    -- independent of file sizes (regression-tested in
    ``tests/sim/test_merge_memory.py``).  With ``out_path`` the merged
    JSONL is also written; with ``archive_dir`` the merged stream is
    additionally rolled straight into segmented-archive form
    (:mod:`repro.trace.archive`), still in one streaming pass, and the
    archive manifest carries the same composed digest this function
    returns.
    """
    merged = heapq.merge(
        *[_keyed_lines(_iter_file(Path(path))) for path in paths],
        key=lambda pair: pair[0],
    )
    writer = None
    if archive_dir is not None:
        from repro.trace.archive import DEFAULT_BUCKET_SECONDS, ArchiveWriter

        writer = ArchiveWriter(
            archive_dir,
            bucket_seconds=(
                DEFAULT_BUCKET_SECONDS
                if archive_bucket_seconds is None
                else archive_bucket_seconds
            ),
        )
    handle = None
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        handle = out_path.open("w", encoding="utf-8")
    digest = hashlib.sha256()
    count = 0
    # Chunked downstream hand-off: the merged stream reaches the digest,
    # the flat file, and the archive (ArchiveWriter.add_many) in
    # _DIGEST_CHUNK-line batches -- identical bytes, a fraction of the
    # per-line call overhead.
    chunk: List[Tuple[float, int, str]] = []

    def drain() -> None:
        payload = "\n".join(entry[2] for entry in chunk) + "\n"
        if handle is not None:
            handle.write(payload)
        if writer is not None:
            writer.add_many(chunk)
        digest.update(payload.encode("utf-8"))
        chunk.clear()

    try:
        for (t, node, _), line in merged:
            chunk.append((t, node, line))
            count += 1
            if len(chunk) >= _DIGEST_CHUNK:
                drain()
        if chunk:
            drain()
    finally:
        if handle is not None:
            handle.close()
    if writer is not None:
        # The merged stream is canonical, so the writer's input-order
        # digest is the composed digest: safe to stamp the manifest.
        writer.close(manifest=True)
    return count, digest.hexdigest()
