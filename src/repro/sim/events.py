"""Structured simulation events.

Everything observable about a run flows through these: the platform and
its components publish :class:`Event` records on the kernel's
:class:`~repro.sim.bus.EventBus`, and observers (memory managers,
telemetry, trace sinks, the cluster front-end) subscribe by kind.

Public kinds (the JSONL trace schema in ``docs/EVENT_TRACE.md``):

====================  =======================================================
kind                  meaning / data fields
====================  =======================================================
``request-arrival``   a request entered the node (``request_id, function``)
``cold-boot``         a new container booted (``instance_id, function,
                      boot_cpu_seconds``)
``thaw``              a frozen container was unpaused (``instance_id,
                      function, thaw_seconds``)
``invocation-end``    a stage's useful work finished (``instance_id,
                      function, request_id, cpu_seconds``)
``freeze``            a container was paused (``instance_id, function``)
``eviction``          the cache destroyed a container (``instance_id,
                      function, freed_bytes``)
``reclaim-start``     a manager sweep began doing work (``frozen_bytes``)
``reclaim-done``      ...and finished (``cpu_seconds, released_bytes``)
``gc``                a collection ran outside normal allocation pressure
                      (``instance_id, function, cpu_seconds, reason``)
``request-done``      the whole request (all stages) completed
                      (``request_id, function, latency, cold_boots``)
``sample``            a telemetry snapshot (the recorder's sample fields)
====================  =======================================================

One internal kind, ``step``, fires after every platform event; it carries
the per-event hook cadence (manager background sweeps, telemetry sampling)
and is excluded from traces by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

REQUEST_ARRIVAL = "request-arrival"
COLD_BOOT = "cold-boot"
THAW = "thaw"
INVOCATION_END = "invocation-end"
FREEZE = "freeze"
EVICTION = "eviction"
RECLAIM_START = "reclaim-start"
RECLAIM_DONE = "reclaim-done"
GC = "gc"
REQUEST_DONE = "request-done"
SAMPLE = "sample"
STEP = "step"

#: Kinds a default trace sink records (everything public).
TRACE_KINDS: Tuple[str, ...] = (
    REQUEST_ARRIVAL,
    COLD_BOOT,
    THAW,
    INVOCATION_END,
    FREEZE,
    EVICTION,
    RECLAIM_START,
    RECLAIM_DONE,
    GC,
    REQUEST_DONE,
    SAMPLE,
)


@dataclass
class Event:
    """One structured occurrence on the bus.

    ``data`` may hold both plain scalars (serialized into traces) and
    live object references (e.g. the :class:`FunctionInstance` a manager
    hook needs); trace sinks keep only the scalars.
    """

    kind: str
    time: float
    node: int = 0
    data: Dict[str, Any] = field(default_factory=dict)
    #: Publication order, assigned by the bus; ties in ``time`` resolve
    #: by ``seq`` in traces.
    seq: int = -1

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)
