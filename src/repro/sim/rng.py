"""Per-component random streams.

Every source of randomness in a simulation gets its *own* named stream
derived from one master seed, so adding a new randomized component (or
reordering draws inside one) never perturbs the others -- the standard
discrete-event-simulation discipline for reproducible experiments.

Derivation is ``crc32(name) ^ master_seed`` rather than Python's
``hash()``, which is salted per process and would break cross-run
determinism.
"""

from __future__ import annotations

import random
import zlib


def derive_seed(master_seed: int, name: str) -> int:
    """Deterministically derive a component seed from the master seed."""
    return (zlib.crc32(name.encode("utf-8")) ^ (master_seed & 0xFFFFFFFF)) & 0xFFFFFFFF


class RngStream(random.Random):
    """A named ``random.Random`` seeded from ``(master_seed, name)``.

    Two streams with the same master seed and name produce identical
    draws; streams with different names are statistically independent.
    """

    def __init__(self, master_seed: int = 0, name: str = "default") -> None:
        self.name = name
        self.master_seed = master_seed
        super().__init__(derive_seed(master_seed, name))

    def restart(self) -> None:
        """Rewind the stream to its initial state."""
        self.seed(derive_seed(self.master_seed, self.name))

    def split(self, label: str) -> "RngStream":
        """Derive an independent child stream named ``label``.

        The child is seeded from ``(master_seed, f"{name}/{label}")``
        alone: splitting consumes no draws from the parent and the
        child's sequence depends only on the two names -- not on when the
        split happened, how many other splits exist, or which shard
        worker performed it.  That is the property that lets shard
        workers (:mod:`repro.sim.shard`) hand every component the same
        stream it would have had in a serial run.
        """
        return RngStream(self.master_seed, f"{self.name}/{label}")

    def __reduce__(self):
        """Pickle with identity *and* position intact.

        ``random.Random.__reduce__`` reconstructs via ``cls()`` +
        ``setstate`` -- which preserves the Mersenne position but
        silently resets ``name``/``master_seed`` to their defaults,
        breaking ``restart``/``split`` after a checkpoint restore.
        Reconstruct through our own constructor instead.
        """
        return (RngStream, (self.master_seed, self.name), self.getstate())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(master_seed={self.master_seed}, name={self.name!r})"
