"""Framed binary wire codec for the shard coordination pipes.

The PR 5 shard protocol pickled one message per shard per epoch, which
made the per-epoch constant factor of a sharded replay *protocol-bound*:
every tuple, float, and FunctionDefinition was re-pickled every epoch
and the coordinator had no visibility into how many bytes it was pushing
through the pipes.  This module replaces that with an explicit,
msgpack-style tagged binary encoding plus length-prefixed framing, so

* the hot message shapes (tuples of floats/ints/strings, lists, dicts)
  encode compactly without the pickle machinery,
* arbitrary Python objects still pass (a ``pickle`` escape tag), so the
  protocol never loses generality,
* every frame reports its exact byte count -- the coordinator's
  ``pipe_bytes`` accounting (and the CI pipe-bytes regression gate) read
  these counters, not estimates.

Fidelity contract
-----------------
``decode(encode(x))`` must be indistinguishable from ``x`` for the
deterministic replay machinery: tuples stay tuples (payload items are
tuples; a list would change downstream hashing), floats round-trip
bit-exactly (horizons are compared with ``==`` across processes), and
ints of any magnitude survive (big ints take the pickle escape).  The
inline pool bypasses the codec entirely, so any codec infidelity would
show up as an inline-vs-process digest divergence -- regression-tested
in ``tests/sim/test_wire.py`` and end-to-end in
``tests/faas/test_sharded_cluster.py``.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, List, Tuple

__all__ = ["encode", "decode", "send_frame", "recv_frame", "WireError"]

#: Length prefix: 4-byte unsigned big-endian frame size.
_LEN = struct.Struct(">I")

#: Frame mode bytes (first byte after the length prefix).
_MODE_RAW = b"r"
_MODE_DEFLATE = b"z"

#: Bodies below this never compress: the zlib header/dictionary overhead
#: dominates and the frames (marks, acks) are latency-sensitive.
_COMPRESS_MIN = 256
_F64 = struct.Struct(">d")
_I64 = struct.Struct(">q")

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

# One-byte type tags.  Order is part of the wire format; never renumber.
_T_NONE = b"n"
_T_TRUE = b"t"
_T_FALSE = b"f"
_T_INT = b"i"  # 8-byte signed big-endian
_T_FLOAT = b"d"  # IEEE-754 binary64, big-endian (bit-exact)
_T_STR = b"s"  # u32 length + utf-8 bytes
_T_BYTES = b"b"  # u32 length + raw bytes
_T_LIST = b"l"  # u32 count + items
_T_TUPLE = b"u"  # u32 count + items
_T_DICT = b"m"  # u32 count + key/value items
_T_PICKLE = b"p"  # u32 length + pickle bytes (escape hatch)


class WireError(ValueError):
    """A frame failed to decode (truncated or corrupt)."""


def _encode_into(obj: Any, out: List[bytes]) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif type(obj) is int:
        if _I64_MIN <= obj <= _I64_MAX:
            out.append(_T_INT)
            out.append(_I64.pack(obj))
        else:  # big ints take the escape hatch
            _encode_pickle(obj, out)
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out.append(_F64.pack(obj))
    elif type(obj) is str:
        data = obj.encode("utf-8")
        out.append(_T_STR)
        out.append(_LEN.pack(len(data)))
        out.append(data)
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        out.append(_LEN.pack(len(obj)))
        out.append(obj)
    elif type(obj) is list:
        out.append(_T_LIST)
        out.append(_LEN.pack(len(obj)))
        for item in obj:
            _encode_into(item, out)
    elif type(obj) is tuple:
        out.append(_T_TUPLE)
        out.append(_LEN.pack(len(obj)))
        for item in obj:
            _encode_into(item, out)
    elif type(obj) is dict:
        out.append(_T_DICT)
        out.append(_LEN.pack(len(obj)))
        for key, value in obj.items():
            _encode_into(key, out)
            _encode_into(value, out)
    else:
        _encode_pickle(obj, out)


def _encode_pickle(obj: Any, out: List[bytes]) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    out.append(_T_PICKLE)
    out.append(_LEN.pack(len(data)))
    out.append(data)


def encode(obj: Any) -> bytes:
    """Encode one message body (no frame header)."""
    out: List[bytes] = []
    _encode_into(obj, out)
    return b"".join(out)


def _decode_at(data: bytes, pos: int) -> Tuple[Any, int]:
    try:
        tag = data[pos : pos + 1]
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_INT:
            return _I64.unpack_from(data, pos)[0], pos + 8
        if tag == _T_FLOAT:
            return _F64.unpack_from(data, pos)[0], pos + 8
        if tag in (_T_STR, _T_BYTES, _T_PICKLE):
            (length,) = _LEN.unpack_from(data, pos)
            pos += 4
            blob = data[pos : pos + length]
            if len(blob) != length:
                raise WireError("truncated frame body")
            pos += length
            if tag == _T_STR:
                return blob.decode("utf-8"), pos
            if tag == _T_BYTES:
                return blob, pos
            return pickle.loads(blob), pos
        if tag in (_T_LIST, _T_TUPLE):
            (count,) = _LEN.unpack_from(data, pos)
            pos += 4
            items = []
            for _ in range(count):
                item, pos = _decode_at(data, pos)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag == _T_DICT:
            (count,) = _LEN.unpack_from(data, pos)
            pos += 4
            result = {}
            for _ in range(count):
                key, pos = _decode_at(data, pos)
                value, pos = _decode_at(data, pos)
                result[key] = value
            return result, pos
    except struct.error as exc:
        raise WireError(f"truncated frame at byte {pos}") from exc
    raise WireError(f"unknown wire tag {tag!r} at byte {pos - 1}")


def decode(data: bytes) -> Any:
    """Decode one message body; the whole buffer must be consumed."""
    obj, pos = _decode_at(data, 0)
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after message")
    return obj


def send_frame(conn, obj: Any, compress: bool = False) -> int:
    """Encode ``obj``, frame it, send it; returns bytes put on the pipe.

    The explicit ``>I`` length prefix travels inside the OS pipe message
    (on top of ``Connection.send_bytes``'s own header) so a receiver can
    detect truncation independently of the transport.  A one-byte mode
    follows the prefix: ``r`` = raw body, ``z`` = zlib-deflated body.
    With ``compress=True``, bodies over ``_COMPRESS_MIN`` bytes are
    deflated when that actually shrinks them -- the batched protocol's
    big frames (window grants, preambles, finish results) are highly
    repetitive; ``zlib.compress`` is deterministic, so byte accounting
    and digests stay exact.  Receivers auto-detect; no negotiation.
    """
    body = encode(obj)
    payload = _MODE_RAW + body
    if compress and len(body) >= _COMPRESS_MIN:
        packed = zlib.compress(body, 6)
        if len(packed) < len(body):
            payload = _MODE_DEFLATE + packed
    frame = _LEN.pack(len(payload)) + payload
    conn.send_bytes(frame)
    return len(frame)


def recv_frame(conn) -> Tuple[Any, int]:
    """Receive one frame; returns ``(message, bytes_received)``.

    Raises :class:`WireError` on a length/prefix mismatch and lets the
    transport's ``EOFError`` (peer gone) propagate unchanged.
    """
    frame = conn.recv_bytes()
    if len(frame) < 5:
        raise WireError(f"short frame ({len(frame)} bytes)")
    (length,) = _LEN.unpack_from(frame, 0)
    if length != len(frame) - 4:
        raise WireError(
            f"frame length prefix {length} != body {len(frame) - 4}"
        )
    mode = frame[4:5]
    body = frame[5:]
    if mode == _MODE_DEFLATE:
        try:
            body = zlib.decompress(body)
        except zlib.error as exc:
            raise WireError(f"corrupt deflated frame: {exc}") from exc
    elif mode != _MODE_RAW:
        raise WireError(f"unknown frame mode {mode!r}")
    return decode(body), len(frame)
