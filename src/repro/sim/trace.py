"""Event-trace sink: export the full simulation timeline as JSONL.

Subscribes to the bus and records every public event as one JSON object
per line (schema in ``docs/EVENT_TRACE.md``).  Two normalizations make
traces *byte-identical* across runs with the same seed:

* only plain scalars from ``Event.data`` are serialized (live object
  references a handler might need are dropped);
* ``request_id`` / ``instance_id`` values are rewritten to dense
  first-appearance indexes, because the underlying counters are global
  to the process and would differ between back-to-back runs.

With ``normalize_seq=True`` the recorded ``seq`` is additionally
rewritten to the sink's own dense record index instead of the bus-wide
publication counter.  A node-filtered sink then emits *node-canonical*
records -- identical whether the node ran on a shared kernel (serial
cluster) or alone in a shard worker, where the bus counter would differ.
The sharded-replay digest gate (:mod:`repro.sim.shard`) is built on
exactly this: per-node canonical traces merge into one stream ordered by
``(t, node, seq)`` whose bytes do not depend on the shard count.

Line *encoding* lives in :mod:`repro.trace.encode`: the default is the
compiled per-``(kind, key-set)`` fast path, with the original generic
``json.dumps`` encoder kept as the differential reference twin
(``REPRO_TRACE_ENCODER=generic``, or ``encoder="generic"`` here).  Both
produce byte-identical lines; the fast path additionally *batches* its
downstream I/O -- lines buffer in the sink and reach the file, the
archive (:meth:`~repro.trace.archive.ArchiveWriter.add_many`), and the
digest stream in chunks, drained at the existing epoch-barrier
:meth:`flush` (and at :meth:`detach` / checkpoint capture), so
checkpoint/restore semantics are untouched.  ``digest_only=True`` runs
the sink as a pure SHA-256 stream -- no stored lines, no file, no
archive -- for measuring emission speed with the digest gate still
armed.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.bus import EventBus, Subscription
from repro.sim.events import TRACE_KINDS, Event

#: data keys holding process-global ids that must be normalized.
_ID_KEYS = ("request_id", "instance_id")

_SCALARS = (str, int, float, bool, type(None))

_encode_mod = None


def _encode():
    """The :mod:`repro.trace.encode` module, imported on first use.

    Importing it at module top would cycle: ``repro.trace``'s package
    init pulls in ``replay``, which imports ``repro.sim`` right back.
    Sinks are constructed at run time, long after both packages settled.
    """
    global _encode_mod
    if _encode_mod is None:
        from repro.trace import encode

        _encode_mod = encode
    return _encode_mod

#: Buffered lines per downstream hand-off on the fast path.  Epoch
#: barriers drain regardless, so this only caps memory between barriers.
_CHUNK_LINES = 1024


class EventTraceSink:
    """Collects bus events; exports (or streams) them as JSONL."""

    def __init__(
        self,
        bus: EventBus,
        kinds: Optional[Iterable[str]] = None,
        node: Optional[int] = None,
        path: Optional[str | Path] = None,
        normalize_seq: bool = False,
        store: bool = True,
        archive: Optional[object] = None,
        archive_dir: Optional[str | Path] = None,
        archive_bucket_seconds: float = 60.0,
        encoder: Optional[str] = None,
        digest_only: bool = False,
    ) -> None:
        self.lines: List[str] = []
        #: Records written (== ``len(self.lines)`` unless ``store=False``).
        self.count = 0
        self._normalize_seq = normalize_seq
        self._id_maps: Dict[str, Dict[object, int]] = {k: {} for k in _ID_KEYS}
        if digest_only and (
            path is not None or archive is not None or archive_dir is not None
        ):
            raise ValueError(
                "digest_only sinks neither store nor write lines; drop "
                "path/archive/archive_dir"
            )
        self._store = store and not digest_only
        self._digest = hashlib.sha256() if digest_only else None
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._path: Optional[Path] = path
            self._file = path.open("w", encoding="utf-8")
        else:
            self._path = None
            self._file = None
        # Segmented-archive backend (docs/TRACE_ARCHIVE.md).  ``archive``
        # is a shared, externally owned ArchiveWriter (e.g. one writer for
        # every node sink in a shard worker); ``archive_dir`` creates a
        # writer this sink owns and finalizes (with manifest) on detach.
        if archive is not None and archive_dir is not None:
            raise ValueError("pass either archive or archive_dir, not both")
        self._archive = archive
        self._owns_archive = False
        if archive_dir is not None:
            from repro.trace.archive import ArchiveWriter  # lazy: avoid cycle

            self._archive = ArchiveWriter(
                archive_dir, bucket_seconds=archive_bucket_seconds
            )
            self._owns_archive = True
        encode = _encode()
        self._encoder_mode = encode.resolve(encoder)
        self._table = (
            encode.EncoderTable() if self._encoder_mode == "fast" else None
        )
        #: The reference encoder, bound once (a top-level function, so
        #: checkpoint pickling carries it by reference).
        self._encode_generic = encode.encode_line_generic
        #: Alias of the table's hot ``kind -> encoder`` dict (one
        #: attribute load per event instead of two).
        self._by_kind = self._table.by_kind if self._table is not None else {}
        #: Fast-path line buffer, drained in chunks: bare lines, or
        #: ``(t, node, line)`` tuples when an archive needs the keys.
        self._pending: List[object] = []
        self._pending_plain = self._archive is None
        self._buffered = self._table is not None and (
            self._file is not None
            or self._archive is not None
            or self._digest is not None
        )
        self._subscription: Optional[Subscription] = bus.subscribe(
            self._record if self._table is None else self._record_fast,
            kinds=tuple(kinds) if kinds is not None else TRACE_KINDS,
            node=node,
        )
        self._bus = bus

    # ------------------------------------------------------------- recording

    def _normalize(self, key: str, value: object) -> object:
        mapping = self._id_maps.get(key)
        if mapping is None:
            return value
        return mapping.setdefault(value, len(mapping) + 1)

    def _record(self, event: Event) -> None:
        """The generic reference encoder leg (line-at-a-time I/O)."""
        t = round(event.time, 9)
        line = self._encode_generic(
            self.count if self._normalize_seq else event.seq,
            t,
            event.node,
            event.kind,
            event.data,
            self._normalize,
        )
        self.count += 1
        if self._store:
            self.lines.append(line)
        if self._file is not None:
            self._file.write(line + "\n")
        if self._archive is not None:
            self._archive.add(t, event.node, line)
        if self._digest is not None:
            self._digest.update(line.encode("utf-8") + b"\n")

    def _record_fast(self, event: Event) -> None:
        """The compiled encoder leg: kind-keyed dispatch, chunked I/O.

        Dispatch is by ``kind`` alone -- no per-event shape tuple.  The
        compiled encoder pins the key-set it was built from and routes
        any other payload shape of the same kind through the full
        ``(kind, key-tuple)`` table (see :meth:`_compile_kind`), so the
        cheap probe never changes bytes.
        """
        data = event.data
        encode_line = self._by_kind.get(event.kind)
        if encode_line is None:
            encode_line = self._table.kind_encoder(event.kind, data)
        t = round(event.time, 9)
        line = encode_line(
            self.count if self._normalize_seq else event.seq,
            t,
            event.node,
            data,
            self._id_maps,
        )
        self.count += 1
        if self._store:
            self.lines.append(line)
        if self._buffered:
            pending = self._pending
            pending.append(line if self._pending_plain else (t, event.node, line))
            if len(pending) >= _CHUNK_LINES:
                self._drain()

    def _drain(self) -> None:
        """Hand buffered lines downstream in one call per consumer."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        if self._pending_plain:
            payload = "\n".join(pending) + "\n"
            if self._file is not None:
                self._file.write(payload)
            if self._digest is not None:
                self._digest.update(payload.encode("utf-8"))
            return
        if self._file is not None or self._digest is not None:
            payload = "\n".join(entry[2] for entry in pending) + "\n"
            if self._file is not None:
                self._file.write(payload)
            if self._digest is not None:
                self._digest.update(payload.encode("utf-8"))
        if self._archive is not None:
            self._archive.add_many(pending)

    # --------------------------------------------------------------- export

    @property
    def sha256(self) -> Optional[str]:
        """Stream digest so far (``digest_only`` sinks; else ``None``).

        Same convention as :func:`repro.sim.shard.sha256_lines`: SHA-256
        over every line newline-terminated.
        """
        if self._digest is None:
            return None
        self._drain()
        return self._digest.hexdigest()

    def detach(self) -> None:
        """Stop recording (and close the streaming file, if any).

        An owned archive (``archive_dir``) is finalized with a manifest:
        a single sink sees records in canonical bus order, so the
        writer's input-order digest *is* the composed digest.  A shared
        external ``archive`` writer is left open for its owner to close.
        """
        if self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None
        self._drain()
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._archive is not None and self._owns_archive:
            self._archive.close(manifest=True)
            self._owns_archive = False
            self._archive = None

    def flush(self) -> None:
        """Push buffered streamed lines to disk (epoch-barrier hook)."""
        self._drain()
        if self._file is not None:
            self._file.flush()
        if self._archive is not None:
            self._archive.flush()

    # ----------------------------------------------------------- checkpoint

    def __getstate__(self) -> dict:
        """Checkpoint state: drop the open stream, record its position.

        Callers capture at epoch barriers, after :meth:`flush`, so the
        on-disk byte count *is* the logical stream position (the defensive
        :meth:`_drain` below keeps that true even for a mid-epoch
        capture).  Restore via :meth:`reopen_outputs` truncates the file
        back to that position and reopens it for append -- any bytes a
        post-checkpoint continuation wrote are discarded, exactly as
        required.
        """
        if self._digest is not None:
            raise TypeError(
                "digest_only sinks cannot be checkpointed: the running "
                "SHA-256 stream state does not pickle"
            )
        self._drain()
        state = dict(self.__dict__)
        # Compiled encoders are a pure function of the event shapes seen;
        # the restore side rebuilds the table lazily from scratch.
        state.pop("_table", None)
        state.pop("_by_kind", None)
        handle = state.pop("_file", None)
        offset = 0
        if handle is not None:
            handle.flush()
            offset = os.fstat(handle.fileno()).st_size
        state["_file_offset"] = offset
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._file = None
        self._table = (
            _encode().EncoderTable() if self._encoder_mode == "fast" else None
        )
        self._by_kind = self._table.by_kind if self._table is not None else {}

    def reopen_outputs(self) -> None:
        """Re-attach the streaming file after a checkpoint restore."""
        offset = self.__dict__.pop("_file_offset", 0)
        if self._path is None or self._file is not None:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        existing = self._path.stat().st_size if self._path.exists() else 0
        if existing < offset:
            raise ValueError(
                f"stream file {self._path} holds {existing} bytes but the "
                f"checkpoint recorded {offset}; cannot resume the stream"
            )
        with open(self._path, "ab") as grow:
            grow.truncate(offset)
        self._file = self._path.open("a", encoding="utf-8")

    def to_jsonl(self) -> str:
        """The whole trace as one newline-terminated string."""
        if not self.lines:
            return ""
        return "\n".join(self.lines) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the collected trace to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    def __len__(self) -> int:
        return self.count
