"""Event-trace sink: export the full simulation timeline as JSONL.

Subscribes to the bus and records every public event as one JSON object
per line (schema in ``docs/EVENT_TRACE.md``).  Two normalizations make
traces *byte-identical* across runs with the same seed:

* only plain scalars from ``Event.data`` are serialized (live object
  references a handler might need are dropped);
* ``request_id`` / ``instance_id`` values are rewritten to dense
  first-appearance indexes, because the underlying counters are global
  to the process and would differ between back-to-back runs.

With ``normalize_seq=True`` the recorded ``seq`` is additionally
rewritten to the sink's own dense record index instead of the bus-wide
publication counter.  A node-filtered sink then emits *node-canonical*
records -- identical whether the node ran on a shared kernel (serial
cluster) or alone in a shard worker, where the bus counter would differ.
The sharded-replay digest gate (:mod:`repro.sim.shard`) is built on
exactly this: per-node canonical traces merge into one stream ordered by
``(t, node, seq)`` whose bytes do not depend on the shard count.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.sim.bus import EventBus, Subscription
from repro.sim.events import TRACE_KINDS, Event

#: data keys holding process-global ids that must be normalized.
_ID_KEYS = ("request_id", "instance_id")

_SCALARS = (str, int, float, bool, type(None))


class EventTraceSink:
    """Collects bus events; exports (or streams) them as JSONL."""

    def __init__(
        self,
        bus: EventBus,
        kinds: Optional[Iterable[str]] = None,
        node: Optional[int] = None,
        path: Optional[str | Path] = None,
        normalize_seq: bool = False,
        store: bool = True,
        archive: Optional[object] = None,
        archive_dir: Optional[str | Path] = None,
        archive_bucket_seconds: float = 60.0,
    ) -> None:
        self.lines: List[str] = []
        #: Records written (== ``len(self.lines)`` unless ``store=False``).
        self.count = 0
        self._normalize_seq = normalize_seq
        self._store = store
        self._id_maps: Dict[str, Dict[object, int]] = {k: {} for k in _ID_KEYS}
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._path: Optional[Path] = path
            self._file = path.open("w", encoding="utf-8")
        else:
            self._path = None
            self._file = None
        # Segmented-archive backend (docs/TRACE_ARCHIVE.md).  ``archive``
        # is a shared, externally owned ArchiveWriter (e.g. one writer for
        # every node sink in a shard worker); ``archive_dir`` creates a
        # writer this sink owns and finalizes (with manifest) on detach.
        if archive is not None and archive_dir is not None:
            raise ValueError("pass either archive or archive_dir, not both")
        self._archive = archive
        self._owns_archive = False
        if archive_dir is not None:
            from repro.trace.archive import ArchiveWriter  # lazy: avoid cycle

            self._archive = ArchiveWriter(
                archive_dir, bucket_seconds=archive_bucket_seconds
            )
            self._owns_archive = True
        self._subscription: Optional[Subscription] = bus.subscribe(
            self._record, kinds=tuple(kinds) if kinds is not None else TRACE_KINDS,
            node=node,
        )
        self._bus = bus

    # ------------------------------------------------------------- recording

    def _normalize(self, key: str, value: object) -> object:
        mapping = self._id_maps.get(key)
        if mapping is None:
            return value
        if value not in mapping:
            mapping[value] = len(mapping) + 1
        return mapping[value]

    def _record(self, event: Event) -> None:
        record: Dict[str, object] = {
            "seq": self.count if self._normalize_seq else event.seq,
            "t": round(event.time, 9),
            "node": event.node,
            "kind": event.kind,
        }
        for key in sorted(event.data):
            value = event.data[key]
            if isinstance(value, _SCALARS):
                if isinstance(value, float):
                    value = round(value, 9)
                record[key] = self._normalize(key, value)
        line = json.dumps(record, sort_keys=False, separators=(",", ":"))
        self.count += 1
        if self._store:
            self.lines.append(line)
        if self._file is not None:
            self._file.write(line + "\n")
        if self._archive is not None:
            self._archive.add(record["t"], record["node"], line)

    # --------------------------------------------------------------- export

    def detach(self) -> None:
        """Stop recording (and close the streaming file, if any).

        An owned archive (``archive_dir``) is finalized with a manifest:
        a single sink sees records in canonical bus order, so the
        writer's input-order digest *is* the composed digest.  A shared
        external ``archive`` writer is left open for its owner to close.
        """
        if self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._archive is not None and self._owns_archive:
            self._archive.close(manifest=True)
            self._owns_archive = False
            self._archive = None

    def flush(self) -> None:
        """Push buffered streamed lines to disk (epoch-barrier hook)."""
        if self._file is not None:
            self._file.flush()
        if self._archive is not None:
            self._archive.flush()

    # ----------------------------------------------------------- checkpoint

    def __getstate__(self) -> dict:
        """Checkpoint state: drop the open stream, record its position.

        Callers capture at epoch barriers, after :meth:`flush`, so the
        on-disk byte count *is* the logical stream position.  Restore via
        :meth:`reopen_outputs` truncates the file back to that position
        and reopens it for append -- any bytes a post-checkpoint
        continuation wrote are discarded, exactly as required.
        """
        state = dict(self.__dict__)
        handle = state.pop("_file", None)
        offset = 0
        if handle is not None:
            handle.flush()
            offset = os.fstat(handle.fileno()).st_size
        state["_file_offset"] = offset
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._file = None

    def reopen_outputs(self) -> None:
        """Re-attach the streaming file after a checkpoint restore."""
        offset = self.__dict__.pop("_file_offset", 0)
        if self._path is None or self._file is not None:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        existing = self._path.stat().st_size if self._path.exists() else 0
        if existing < offset:
            raise ValueError(
                f"stream file {self._path} holds {existing} bytes but the "
                f"checkpoint recorded {offset}; cannot resume the stream"
            )
        with open(self._path, "ab") as grow:
            grow.truncate(offset)
        self._file = self._path.open("a", encoding="utf-8")

    def to_jsonl(self) -> str:
        """The whole trace as one newline-terminated string."""
        return "".join(line + "\n" for line in self.lines)

    def write(self, path: str | Path) -> Path:
        """Write the collected trace to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    def __len__(self) -> int:
        return self.count
