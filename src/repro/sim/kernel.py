"""The simulation kernel: one clock, one event heap, one bus.

A :class:`SimKernel` is the shared spine of every simulation in this
repo.  Components (platform nodes, routers, recorders) *schedule*
callbacks on the kernel's :class:`~repro.sim.queue.EventQueue` and
*observe* each other through its :class:`~repro.sim.bus.EventBus`;
nobody owns a private loop.  A multi-node cluster hands the same kernel
to every node, which merges all node timelines into one globally
time-ordered execution -- the property cross-node policies (load-aware
routing, global pressure) depend on.

Per-component randomness comes from :meth:`rng`, which hands out named
:class:`~repro.sim.rng.RngStream` instances derived from the kernel
seed, so components cannot perturb each other's draws.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro import fastpath
from repro.sim.bus import EventBus, LinearEventBus
from repro.sim.clock import Clock
from repro.sim.queue import EventQueue, ScheduledEvent
from repro.sim.rng import RngStream


class SimKernel:
    """Discrete-event engine shared by every component of a simulation."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.clock = Clock()
        self.queue = EventQueue()
        # Indexed dispatch by default; the linear reference bus when the
        # fast path is globally off (benchmark baselines, differentials).
        self.bus = EventBus() if fastpath.enabled() else LinearEventBus()
        self._rngs: Dict[str, RngStream] = {}
        self._probes: List[Callable[[], None]] = []
        #: Total events dispatched over the kernel's lifetime.
        self.events_processed = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        return self.clock.now

    # ------------------------------------------------------------ scheduling

    def schedule(
        self,
        time: float,
        callback: Callable[[Any], None],
        payload: Any = None,
    ) -> ScheduledEvent:
        """Run ``callback(payload)`` at simulated ``time``.

        Returns a handle whose :meth:`~repro.sim.queue.ScheduledEvent.cancel`
        drops the event before it fires.
        """
        return self.queue.push(time, callback, payload)

    def rng(self, component: str) -> RngStream:
        """The named component's private random stream (memoized)."""
        stream = self._rngs.get(component)
        if stream is None:
            stream = self._rngs[component] = RngStream(self.seed, component)
        return stream

    # ---------------------------------------------------------------- probes

    def add_probe(self, probe: Callable[[], None]) -> Callable[[], None]:
        """Call ``probe()`` after *every* dispatched event.

        This is the invariant oracle's per-event hook point
        (:mod:`repro.check`): unlike a bus subscription it fires even for
        events that publish nothing.  Returns ``probe`` as the handle for
        :meth:`remove_probe`.
        """
        self._probes.append(probe)
        return probe

    def remove_probe(self, probe: Callable[[], None]) -> None:
        self._probes.remove(probe)

    # --------------------------------------------------------------- running

    def run(self, until: Optional[float] = None) -> int:
        """Dispatch events in ``(time, seq)`` order until the queue drains.

        With ``until``, stops *before* the first event past it (the event
        stays queued for a later ``run``).  Returns the number of events
        dispatched by this call.
        """
        dispatched = 0
        while True:
            next_time = self.queue.next_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self.queue.pop()
            if event is None:  # pragma: no cover - raced cancellation
                break
            self.clock.advance(event.time)
            event.callback(event.payload)
            for probe in self._probes:
                probe()
            dispatched += 1
        self.events_processed += dispatched
        return dispatched
