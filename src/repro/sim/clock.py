"""Simulated time.

One :class:`Clock` per kernel; every component reads the same ``now``.
The clock only moves forward: :meth:`advance` clamps against the current
time, so a handler that schedules work "in the past" (possible when a
test rewinds manually) cannot drag the whole simulation backwards.
"""

from __future__ import annotations


class Clock:
    """Monotonic simulated wall clock."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def advance(self, to: float) -> float:
        """Move time forward to ``to`` (no-op when ``to`` is in the past)."""
        if to > self.now:
            self.now = to
        return self.now

    def reset(self, now: float = 0.0) -> None:
        """Hard-set the clock (tests and warmup-reset only)."""
        self.now = float(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self.now:.6f})"
