"""The kernel's event heap.

A stable-ordered priority queue: entries pop by ``(time, seq)`` where
``seq`` is a global insertion counter, so same-time events run in the
order they were scheduled -- the property every deterministic-replay
guarantee in this repo rests on.

Cancellation is lazy: :meth:`ScheduledEvent.cancel` marks the entry and
the heap discards it on the way out, which keeps both operations O(log n)
without the tombstone-dict bookkeeping of ``sched``-style queues.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class ScheduledEvent:
    """Handle for one queued callback; keep it to :meth:`cancel` later."""

    __slots__ = ("time", "seq", "callback", "payload", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[Any], None],
        payload: Any = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = False

    def cancel(self) -> None:
        """Drop the event; the queue skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(t={self.time:.6f}, seq={self.seq}{flag})"


class EventQueue:
    """Stable min-heap of :class:`ScheduledEvent` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        # A plain int rather than itertools.count: the counter is part of
        # the queue's checkpointable state (repro.sim.checkpoint) and must
        # survive pickling with its position intact.
        self._seq = 0

    def push(
        self, time: float, callback: Callable[[Any], None], payload: Any = None
    ) -> ScheduledEvent:
        """Schedule ``callback(payload)`` at ``time``; returns the handle."""
        event = ScheduledEvent(time, self._seq, callback, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Next pending event, or None when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def next_time(self) -> Optional[float]:
        """Timestamp of the next pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel via the queue (same as ``event.cancel()``)."""
        event.cancel()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.next_time() is not None
