"""Deterministic epoch checkpoints: dump/restore full simulation state.

A *checkpoint* captures everything a sharded replay needs to restart
from an epoch barrier and produce byte-identical output: each shard
host's complete object graph (kernel clock, event queue, RNG stream
states, VMM mappings and physical frames, runtime heaps, platform and
cgroup state, keep-alive policies, telemetry/trace stream positions)
plus the coordinator's position (router counters, request-id cursor,
load digests, interned-definition sets, phase cursors) and the handful
of module-global id counters the object graph draws from.

File format
-----------
One UTF-8 JSON header line followed by the raw pickle payload::

    {"magic": "repro-checkpoint", "schema": 1, "meta": {...},
     "env": {...}, "payload_sha256": "...", "payload_bytes": N}\n
    <payload_bytes of pickle protocol 4>

The header is self-verifying: :func:`check_checkpoint` confirms the
magic, the schema version, that the payload is exactly
``payload_bytes`` long, and that its SHA-256 matches -- raising
:class:`CheckpointError` (a :class:`~repro.check.invariants.Violation`)
with a stable invariant name on the first problem, so a corrupt or
truncated checkpoint fails loudly *before* any pickle byte is executed.
:func:`load` additionally refuses to restore into a process whose
``REPRO_FASTPATH`` flag differs from the capturing process's
(``checkpoint-env``): the fast path changes which bus/aggregate code
runs, and state captured under one flavor is not meaningful under the
other.

Invariant names
---------------
``checkpoint-magic``      not a checkpoint file (or a mangled header)
``checkpoint-schema``     schema version this build cannot restore
``checkpoint-truncated``  payload shorter than the header promises
``checkpoint-digest``     payload bytes do not hash to the header digest
``checkpoint-env``        capture/restore environment flags disagree

Module-global counters
----------------------
``Request``, ``FunctionInstance`` and ``Mapping`` draw ids from
module-global ``itertools.count`` objects.  Those ids are *state*: the
LRU tie-break and the trace id-normalization maps depend on them, so a
restored world must continue the id sequence exactly where the captured
one stood.  :func:`capture_counters` peeks each counter (consuming one
value, then re-arming the global at that same value so the live run is
undisturbed) and :func:`restore_counters` re-arms them in the restoring
process.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro import fastpath
from repro.check.invariants import Violation
from repro.memo import toggle as memo_toggle

__all__ = [
    "CHECKPOINT_MAGIC",
    "SCHEMA_VERSION",
    "PICKLE_PROTOCOL",
    "CheckpointError",
    "dump",
    "read_header",
    "check_checkpoint",
    "load",
    "capture_counters",
    "restore_counters",
    "snapshot_host",
    "restore_host",
    "snapshot_world",
    "restore_world",
    "environment_fingerprint",
    "arrivals_digest",
]

CHECKPOINT_MAGIC = "repro-checkpoint"

#: Bump on any change to the payload's logical layout.  A restore across
#: schema versions is refused outright (``checkpoint-schema``): silently
#: reinterpreting old state would break the byte-identity contract in
#: ways no digest can catch.
SCHEMA_VERSION = 1

#: Pinned pickle protocol: part of the format, not a knob, so the same
#: checkpoint bytes restore on every supported interpreter.
PICKLE_PROTOCOL = 4


class CheckpointError(Violation):
    """A checkpoint that cannot be trusted, named by the broken law."""


def _fail(invariant: str, subject: str, detail: str) -> None:
    raise CheckpointError(invariant, subject, detail)


# ------------------------------------------------------- global id counters

#: ``(module, attribute)`` of every module-global ``itertools.count`` the
#: simulation object graph draws ids from.  Keys are the stable names the
#: payload stores them under.
_COUNTER_SITES: Dict[str, Tuple[str, str]] = {
    "faas.platform._request_ids": ("repro.faas.platform", "_request_ids"),
    "faas.instance._instance_ids": ("repro.faas.instance", "_instance_ids"),
    "mem.vmm._mapping_ids": ("repro.mem.vmm", "_mapping_ids"),
}


def capture_counters() -> Dict[str, int]:
    """Snapshot every global id counter without disturbing the live run.

    ``itertools.count`` cannot be read without consuming, so each
    counter is peeked with ``next()`` and the module global immediately
    re-armed at the peeked value -- the next live draw returns exactly
    what it would have returned without the capture.
    """
    values: Dict[str, int] = {}
    for name, (module_name, attribute) in _COUNTER_SITES.items():
        module = importlib.import_module(module_name)
        value = next(getattr(module, attribute))
        setattr(module, attribute, itertools.count(value))
        values[name] = value
    return values


def restore_counters(values: Dict[str, int]) -> None:
    """Re-arm the global id counters at their captured positions."""
    for name, value in values.items():
        module_name, attribute = _COUNTER_SITES[name]
        module = importlib.import_module(module_name)
        setattr(module, attribute, itertools.count(value))


# --------------------------------------------------------------- file format


def environment_fingerprint() -> Dict[str, object]:
    """The flags a checkpoint's state is only meaningful under.

    ``memo`` is recorded for observability but never gated on:
    memoization only changes how fast state is computed, never what it
    is, so a checkpoint captured under either flavor restores under
    either (the effect cache itself is process-local and is dropped, not
    serialized -- a restored run starts cold and re-simulates misses
    organically, byte-identically).
    """
    return {
        "fastpath": fastpath.enabled(),
        "check": os.environ.get("REPRO_CHECK", ""),
        "memo": memo_toggle.enabled(),
    }


def dump(
    path: str | Path, state: Any, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Write ``state`` as a checkpoint file; return the header written.

    The write is atomic (temp file + rename), so a crashed capture never
    leaves a half-written checkpoint that a later resume could trust.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(state, protocol=PICKLE_PROTOCOL)
    header = {
        "magic": CHECKPOINT_MAGIC,
        "schema": SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "env": environment_fingerprint(),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
    }
    staging = path.with_name(path.name + ".tmp")
    with staging.open("wb") as handle:
        handle.write(
            json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
        )
        handle.write(b"\n")
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    staging.replace(path)
    return header


def _read_raw(path: Path) -> Tuple[Dict[str, object], bytes]:
    subject = f"checkpoint {path}"
    try:
        raw = path.read_bytes()
    except OSError as exc:
        _fail("checkpoint-magic", subject, f"unreadable: {exc}")
    newline = raw.find(b"\n")
    if newline < 0:
        _fail("checkpoint-magic", subject, "no header line")
    try:
        header = json.loads(raw[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        _fail("checkpoint-magic", subject, f"header is not JSON: {exc}")
    if not isinstance(header, dict) or header.get("magic") != CHECKPOINT_MAGIC:
        _fail(
            "checkpoint-magic",
            subject,
            f"magic {header.get('magic') if isinstance(header, dict) else header!r} "
            f"!= {CHECKPOINT_MAGIC!r}",
        )
    return header, raw[newline + 1 :]


def read_header(path: str | Path) -> Dict[str, object]:
    """The header alone (magic verified; payload untouched)."""
    header, _ = _read_raw(Path(path))
    return header


def check_checkpoint(path: str | Path) -> Dict[str, object]:
    """Verify a checkpoint file end to end; return its header.

    The invariant gate every restore passes through first: magic and
    schema recognized, payload exactly as long as promised, payload
    SHA-256 matching the header.  No pickle byte is executed.
    """
    path = Path(path)
    subject = f"checkpoint {path}"
    header, payload = _read_raw(path)
    if header.get("schema") != SCHEMA_VERSION:
        _fail(
            "checkpoint-schema",
            subject,
            f"schema {header.get('schema')!r}; this build restores "
            f"schema {SCHEMA_VERSION} only",
        )
    expected = header.get("payload_bytes")
    if not isinstance(expected, int) or len(payload) < expected:
        _fail(
            "checkpoint-truncated",
            subject,
            f"payload holds {len(payload)} bytes, header promises {expected}",
        )
    payload = payload[:expected]
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        _fail(
            "checkpoint-digest",
            subject,
            f"payload sha256 {digest[:12]} != header "
            f"{str(header.get('payload_sha256'))[:12]}",
        )
    return header


def load(path: str | Path) -> Tuple[Dict[str, object], Any]:
    """Verify, env-check, and unpickle a checkpoint.

    Returns ``(header, state)``.  Restoring under a different
    ``REPRO_FASTPATH`` flavor than the capture ran with is refused
    (``checkpoint-env``): the flag selects different bus/aggregate code
    paths, so the captured state would not mean the same thing.
    """
    path = Path(path)
    header = check_checkpoint(path)
    captured = header.get("env", {})
    live = environment_fingerprint()
    if captured.get("fastpath") != live["fastpath"]:
        _fail(
            "checkpoint-env",
            f"checkpoint {path}",
            f"captured with REPRO_FASTPATH={'on' if captured.get('fastpath') else 'off'}, "
            f"restoring with {'on' if live['fastpath'] else 'off'}",
        )
    _, payload = _read_raw(path)
    state = pickle.loads(payload[: header["payload_bytes"]])
    return header, state


# ------------------------------------------------------------- shard hosts


def snapshot_host(host: Any) -> bytes:
    """Pickle one shard host plus the global counters it draws from.

    The worker-side half of the pool ``snapshot`` command: the blob is
    opaque to the coordinator, which stores one per shard inside the
    session checkpoint payload.

    A host carrying deferred memo restores materializes them first (its
    ``memo_flush`` hook): parked effect-cache entries resolve against
    live process state and must not leak into the payload.
    """
    flush = getattr(host, "memo_flush", None)
    if flush is not None:
        flush()
    return pickle.dumps(
        {"host": host, "counters": capture_counters()},
        protocol=PICKLE_PROTOCOL,
    )


def restore_host(blob: bytes, fork: Optional[Dict[str, object]] = None) -> Any:
    """Rebuild a shard host from its snapshot blob.

    Re-arms the restoring process's global id counters, reopens the
    host's streamed outputs (truncating them back to the barrier
    position), and -- for a fork -- applies the changed
    policy/parameters via the host's ``apply_fork`` hook before any
    event runs.
    """
    state = pickle.loads(blob)
    restore_counters(state["counters"])
    host = state["host"]
    reopen = getattr(host, "reopen_outputs", None)
    if reopen is not None:
        reopen()
    if fork:
        host.apply_fork(fork)
    return host


def snapshot_world(world: Any) -> bytes:
    """Pickle an arbitrary in-memory world plus the global id counters.

    The lighter sibling of :func:`snapshot_host` for object graphs with
    no streamed outputs to reopen -- e.g. the fuzzer's world+oracle pair,
    snapshotted mid-schedule so the shrinker can restart from the last
    good snapshot instead of replaying the whole prefix.
    """
    return pickle.dumps(
        {"world": world, "counters": capture_counters()},
        protocol=PICKLE_PROTOCOL,
    )


def restore_world(blob: bytes) -> Any:
    """Rebuild a :func:`snapshot_world` blob, re-arming the id counters."""
    state = pickle.loads(blob)
    restore_counters(state["counters"])
    return state["world"]


# -------------------------------------------------------------- arrival log


def arrivals_digest(arrivals: Iterable[Sequence]) -> str:
    """Order-sensitive digest of a submission log.

    A resume regenerates the arrival sequence from the run's parameters
    instead of storing it in the checkpoint; this digest (recorded in
    the checkpoint meta) proves the regenerated log is the one the
    captured run was actually fed.  Items are ``(time, definition[,
    node, request_id])`` tuples; time, definition name, and routed node
    enter the hash.  Request ids deliberately do not: they come from a
    process-global counter (so back-to-back runs in one process draw
    different ranges) and every consumer -- trace sinks, outcome
    aggregation -- is invariant to their absolute values.
    """
    digest = hashlib.sha256()
    for item in arrivals:
        time = item[0]
        definition = item[1]
        name = getattr(definition, "name", str(definition))
        node = item[2] if len(item) > 2 else None
        digest.update(
            json.dumps([round(float(time), 9), name, node]).encode("utf-8")
        )
        digest.update(b"\n")
    return digest.hexdigest()
