"""repro.sim: the shared discrete-event simulation kernel.

* ``clock``  -- the simulated wall clock.
* ``queue``  -- stable-ordered event heap with cancellation.
* ``rng``    -- per-component seeded random streams.
* ``events`` -- typed structured events and the public kind vocabulary.
* ``bus``    -- synchronous publish/subscribe with cost aggregation.
* ``kernel`` -- :class:`SimKernel`, tying the above together; shared by
  every node of a cluster to produce one merged timeline.
* ``trace``  -- JSONL event-trace sink for offline analysis.
"""

from repro.sim.bus import EventBus, LinearEventBus, Subscription
from repro.sim.clock import Clock
from repro.sim.events import (
    COLD_BOOT,
    EVICTION,
    Event,
    FREEZE,
    GC,
    INVOCATION_END,
    RECLAIM_DONE,
    RECLAIM_START,
    REQUEST_ARRIVAL,
    REQUEST_DONE,
    SAMPLE,
    STEP,
    THAW,
    TRACE_KINDS,
)
from repro.sim.kernel import SimKernel
from repro.sim.queue import EventQueue, ScheduledEvent
from repro.sim.rng import RngStream, derive_seed
from repro.sim.trace import EventTraceSink

__all__ = [
    "Clock",
    "EventBus",
    "LinearEventBus",
    "EventQueue",
    "EventTraceSink",
    "Event",
    "RngStream",
    "ScheduledEvent",
    "SimKernel",
    "Subscription",
    "derive_seed",
    "TRACE_KINDS",
    "REQUEST_ARRIVAL",
    "COLD_BOOT",
    "THAW",
    "INVOCATION_END",
    "FREEZE",
    "EVICTION",
    "RECLAIM_START",
    "RECLAIM_DONE",
    "GC",
    "REQUEST_DONE",
    "SAMPLE",
    "STEP",
]
