"""The typed event bus.

Observers subscribe by event kind (and optionally by node), publishers
call :meth:`EventBus.publish`.  Publication is synchronous and ordered:
handlers run in subscription order, and any numeric value a handler
returns is summed into the publish result -- that is how memory-manager
hooks report the CPU seconds they consumed back to the platform without
the platform calling them directly.

Handlers may publish further events re-entrantly (e.g. a manager bridge
emitting ``reclaim-done`` from inside a ``step``).  Dispatch is
run-to-completion: a nested publish gets the next sequence number but is
queued and delivered only after the outer event's handlers all finish, so
*every* subscriber -- whatever its subscription order -- observes events
in sequence order.  A nested publish therefore returns 0.0 (its handlers
have not run yet); only top-level publishes report handler costs.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Iterable, List, Optional

from repro.sim.events import Event

Handler = Callable[[Event], Optional[float]]


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; use to unsubscribe."""

    __slots__ = ("handler", "kinds", "node", "active")

    def __init__(
        self,
        handler: Handler,
        kinds: Optional[frozenset],
        node: Optional[int],
    ) -> None:
        self.handler = handler
        self.kinds = kinds
        self.node = node
        self.active = True

    def matches(self, event: Event) -> bool:
        if not self.active:
            return False
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.node is not None and event.node != self.node:
            return False
        return True


class EventBus:
    """Synchronous publish/subscribe over :class:`Event`."""

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []
        self._seq = itertools.count()
        self._pending: deque[Event] = deque()
        self._dispatching = False

    def subscribe(
        self,
        handler: Handler,
        kinds: Optional[Iterable[str]] = None,
        node: Optional[int] = None,
    ) -> Subscription:
        """Register ``handler`` for ``kinds`` (all kinds when None) on
        ``node`` (all nodes when None)."""
        subscription = Subscription(
            handler, frozenset(kinds) if kinds is not None else None, node
        )
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.active = False
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def publish(self, event: Event) -> float:
        """Deliver ``event``; returns the sum of numeric handler returns
        (CPU seconds the observers consumed).

        Re-entrant publishes are deferred until the current dispatch
        completes (and return 0.0), keeping delivery in seq order for
        every subscriber.
        """
        event.seq = next(self._seq)
        if self._dispatching:
            self._pending.append(event)
            return 0.0
        self._dispatching = True
        try:
            total = self._dispatch(event)
            while self._pending:
                self._dispatch(self._pending.popleft())
        finally:
            self._dispatching = False
        return total

    def _dispatch(self, event: Event) -> float:
        total = 0.0
        for subscription in list(self._subscriptions):
            if subscription.matches(event):
                result = subscription.handler(event)
                if isinstance(result, (int, float)) and not isinstance(result, bool):
                    total += result
        return total
