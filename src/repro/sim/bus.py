"""The typed event bus.

Observers subscribe by event kind (and optionally by node), publishers
call :meth:`EventBus.publish`.  Publication is synchronous and ordered:
handlers run in subscription order, and any numeric value a handler
returns is summed into the publish result -- that is how memory-manager
hooks report the CPU seconds they consumed back to the platform without
the platform calling them directly.

Handlers may publish further events re-entrantly (e.g. a manager bridge
emitting ``reclaim-done`` from inside a ``step``).  Dispatch is
run-to-completion: a nested publish gets the next sequence number but is
queued and delivered only after the outer event's handlers all finish, so
*every* subscriber -- whatever its subscription order -- observes events
in sequence order.  A nested publish therefore returns 0.0 (its handlers
have not run yet); only top-level publishes report handler costs.

Two implementations share that contract:

* :class:`EventBus` -- indexed dispatch.  Subscriptions live in buckets
  keyed ``(kind, node)`` (``None`` = wildcard); a publish merges the four
  matching buckets back into subscription order, caches the merged list
  per ``(kind, node)``, and invalidates the cache on subscribe or
  unsubscribe.  Unsubscribe compacts the buckets, so dead handlers are
  never scanned again.  :meth:`EventBus.publish_lazy` additionally skips
  *building* events nobody listens to -- while still consuming a sequence
  number, so traces stay byte-identical whether or not a sink happens to
  be attached for other kinds.
* :class:`LinearEventBus` -- the original per-publish scan over one flat
  subscription list, kept as the reference implementation: differential
  tests and the replay benchmark's baseline leg run against it.

Handler *order* is the observable: both buses call the same handlers in
the same sequence, so the floating-point sum of their returned costs --
and therefore every downstream trace byte -- is identical.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.events import Event

Handler = Callable[[Event], Optional[float]]

#: Data factory for :meth:`EventBus.publish_lazy`.
DataFactory = Callable[[], dict]


class Subscription:
    """Handle returned by ``subscribe``; use to unsubscribe.

    ``order`` is the bus-wide subscription counter: the indexed bus
    merges its buckets by it to reproduce exactly the dispatch order a
    single flat list would have had.
    """

    __slots__ = ("handler", "kinds", "node", "active", "order")

    def __init__(
        self,
        handler: Handler,
        kinds: Optional[frozenset],
        node: Optional[int],
        order: int = 0,
    ) -> None:
        self.handler = handler
        self.kinds = kinds
        self.node = node
        self.active = True
        self.order = order

    def matches(self, event: Event) -> bool:
        if not self.active:
            return False
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.node is not None and event.node != self.node:
            return False
        return True


class LinearEventBus:
    """Synchronous publish/subscribe over :class:`Event` (reference).

    Every publish scans the full subscription list.  O(subscriptions)
    per event, trivially correct -- the behavior :class:`EventBus` must
    reproduce bit for bit.
    """

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []
        # Plain ints, not itertools.count: both counters are part of the
        # bus's checkpointable state (repro.sim.checkpoint) and must
        # pickle with their positions intact.
        self._order = 0
        self._seq = 0
        self._pending: deque[Event] = deque()
        self._dispatching = False

    def _next_order(self) -> int:
        order = self._order
        self._order += 1
        return order

    def subscribe(
        self,
        handler: Handler,
        kinds: Optional[Iterable[str]] = None,
        node: Optional[int] = None,
    ) -> Subscription:
        """Register ``handler`` for ``kinds`` (all kinds when None) on
        ``node`` (all nodes when None)."""
        subscription = Subscription(
            handler,
            frozenset(kinds) if kinds is not None else None,
            node,
            self._next_order(),
        )
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.active = False
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def has_subscribers(self, kind: str, node: int = 0) -> bool:
        """Whether a ``(kind, node)`` event would reach any handler."""
        for subscription in self._subscriptions:
            if not subscription.active:
                continue
            if subscription.kinds is not None and kind not in subscription.kinds:
                continue
            if subscription.node is not None and node != subscription.node:
                continue
            return True
        return False

    def publish(self, event: Event) -> float:
        """Deliver ``event``; returns the sum of numeric handler returns
        (CPU seconds the observers consumed).

        Re-entrant publishes are deferred until the current dispatch
        completes (and return 0.0), keeping delivery in seq order for
        every subscriber.
        """
        event.seq = self._seq
        self._seq += 1
        if self._dispatching:
            self._pending.append(event)
            return 0.0
        self._dispatching = True
        try:
            total = self._dispatch(event)
            while self._pending:
                self._dispatch(self._pending.popleft())
        finally:
            self._dispatching = False
        return total

    def publish_lazy(
        self,
        kind: str,
        time: float,
        node: int = 0,
        data_factory: Optional[DataFactory] = None,
    ) -> float:
        """Build and publish a ``(kind, node)`` event only if someone
        listens; otherwise just consume a sequence number.

        Skipped events still burn their seq so the numbering of *traced*
        events is identical whether or not untraced kinds were skipped --
        the byte-identity guarantee of docs/EVENT_TRACE.md depends on it.
        """
        if not self.has_subscribers(kind, node):
            self._seq += 1
            return 0.0
        data = data_factory() if data_factory is not None else {}
        return self.publish(Event(kind, time, node, data))

    def _dispatch(self, event: Event) -> float:
        total = 0.0
        for subscription in list(self._subscriptions):
            if subscription.matches(event):
                result = subscription.handler(event)
                if isinstance(result, (int, float)) and not isinstance(result, bool):
                    total += result
        return total


_BucketKey = Tuple[Optional[str], Optional[int]]


class EventBus(LinearEventBus):
    """Indexed publish/subscribe: O(matching handlers) per event.

    Subscriptions are bucketed under every ``(kind, node)`` pair they
    match (``None`` standing for "any"), so a publish touches only the
    four buckets that can match it instead of the whole list.  The merged
    per-``(kind, node)`` dispatch list is cached and invalidated whenever
    the subscription set changes; ``unsubscribe`` removes the handler
    from its buckets outright (no tombstones to re-scan).

    Subclasses :class:`LinearEventBus` only to inherit the publish /
    pending-queue machinery; ``_subscriptions`` is still maintained (it
    is cheap and keeps introspection working) but never scanned on the
    hot path.
    """

    def __init__(self) -> None:
        super().__init__()
        self._buckets: Dict[_BucketKey, List[Subscription]] = {}
        self._dispatch_cache: Dict[Tuple[str, int], List[Subscription]] = {}

    def _bucket_keys(self, subscription: Subscription) -> List[_BucketKey]:
        kinds: Iterable[Optional[str]] = (
            sorted(subscription.kinds) if subscription.kinds is not None else (None,)
        )
        return [(kind, subscription.node) for kind in kinds]

    def subscribe(
        self,
        handler: Handler,
        kinds: Optional[Iterable[str]] = None,
        node: Optional[int] = None,
    ) -> Subscription:
        subscription = Subscription(
            handler,
            frozenset(kinds) if kinds is not None else None,
            node,
            self._next_order(),
        )
        self._subscriptions.append(subscription)
        for key in self._bucket_keys(subscription):
            self._buckets.setdefault(key, []).append(subscription)
        self._dispatch_cache.clear()
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.active = False
        if subscription not in self._subscriptions:
            return
        self._subscriptions.remove(subscription)
        for key in self._bucket_keys(subscription):
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            if subscription in bucket:
                bucket.remove(subscription)
            if not bucket:
                del self._buckets[key]
        self._dispatch_cache.clear()

    def has_subscribers(self, kind: str, node: int = 0) -> bool:
        buckets = self._buckets
        return bool(
            buckets.get((kind, node))
            or buckets.get((kind, None))
            or buckets.get((None, node))
            or buckets.get((None, None))
        )

    def _dispatch_list(self, kind: str, node: int) -> List[Subscription]:
        cached = self._dispatch_cache.get((kind, node))
        if cached is None:
            merged: List[Subscription] = []
            for key in ((kind, node), (kind, None), (None, node), (None, None)):
                merged.extend(self._buckets.get(key, ()))
            merged.sort(key=lambda subscription: subscription.order)
            cached = self._dispatch_cache[(kind, node)] = merged
        return cached

    def _dispatch(self, event: Event) -> float:
        total = 0.0
        # The cached list is the snapshot: a handler unsubscribing
        # mid-dispatch clears the cache but leaves this reference intact,
        # and the removed subscription is skipped via ``active`` -- the
        # same semantics the linear bus gets from copying its list.
        for subscription in self._dispatch_list(event.kind, event.node):
            if subscription.active:
                result = subscription.handler(event)
                if isinstance(result, (int, float)) and not isinstance(result, bool):
                    total += result
        return total

    def __getstate__(self) -> dict:
        # The merged dispatch cache is a pure index over the buckets;
        # shipping it in a checkpoint would restore stale Subscription
        # references.  Drop it and let the first post-restore publish
        # rebuild it from the buckets.
        state = dict(self.__dict__)
        state["_dispatch_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._dispatch_cache = {}
