"""Command-line interface: run the paper's experiments from a shell.

Subcommands mirror the evaluation protocols::

    python -m repro list
    python -m repro characterize fft --policy desiccant --iterations 100
    python -m repro replay --scale-factor 15 --capacity-mib 1024
    python -m repro overhead sort --reclaimer swap
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.characterize import (
    POLICIES,
    run_overhead_experiment,
    run_single,
)
from repro.analysis.report import render_table
from repro.mem.layout import MIB, fmt_bytes
from repro.workloads import all_definitions, get_definition, table1_rows


def _cmd_list(_args: argparse.Namespace) -> int:
    print(render_table(["language", "function", "description"], table1_rows()))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    names = [args.function] if args.function != "all" else [
        d.name for d in all_definitions()
    ]
    rows = []
    for name in names:
        run = run_single(
            name,
            policy=args.policy,
            iterations=args.iterations,
            memory_budget=args.budget_mib * MIB,
        )
        rows.append(
            [
                run.definition.display_name(),
                run.policy,
                fmt_bytes(run.final_uss),
                fmt_bytes(run.final_ideal),
                f"{run.avg_ratio:.2f}x",
                f"{run.max_ratio:.2f}x",
            ]
        )
        run.destroy()
    print(
        render_table(
            ["function", "policy", "USS", "ideal", "avg_ratio", "max_ratio"],
            rows,
        )
    )
    return 0


def _trace_path_for(template: str, policy: str, multiple: bool) -> str:
    """Per-policy trace filename: ``out.jsonl`` -> ``out.desiccant.jsonl``."""
    if not multiple:
        return template
    path = Path(template)
    return str(path.with_name(f"{path.stem}.{policy}{path.suffix or '.jsonl'}"))


def _archive_dir_for(template: str, policy: str, multiple: bool) -> str:
    """Per-policy archive directory: ``out`` -> ``out.desiccant``."""
    if not multiple:
        return template
    return f"{template}.{policy}"


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core import Desiccant, EagerGcManager, VanillaManager
    from repro.faas.platform import PlatformConfig
    from repro.trace.generator import TraceGenerator
    from repro.trace.replay import (
        ClusterReplayConfig,
        ReplayConfig,
        cluster_replay,
        replay,
    )

    factories = {
        "vanilla": VanillaManager,
        "eager": EagerGcManager,
        "desiccant": Desiccant,
    }
    if args.memo:
        from repro.memo import toggle as memo_toggle

        # Equivalent to REPRO_MEMO=1; procenv.snapshot ships the live
        # flag to shard workers, so --memo covers sharded runs too.
        memo_toggle.set_enabled(True)
    if args.digest_only and (args.event_trace or args.archive or args.nodes):
        print(
            "error: --digest-only neither stores nor writes the trace; "
            "drop --event-trace/--archive/--nodes",
            file=sys.stderr,
        )
        return 2
    checkpointing = (
        args.checkpoint_dir or args.checkpoint_every or args.resume or args.fork
    )
    if checkpointing and not args.nodes:
        print("error: checkpoint options require --nodes", file=sys.stderr)
        return 2
    if checkpointing and args.policy == "all":
        print(
            "error: checkpoint options need a single --policy "
            "(a checkpoint belongs to one session)",
            file=sys.stderr,
        )
        return 2
    if args.set and not args.fork:
        print("error: --set requires --fork", file=sys.stderr)
        return 2
    resume_from = args.resume or args.fork
    fork = None
    if args.fork:
        fork = {}
        for pair in args.set or []:
            key, sep, value = pair.partition("=")
            if not sep:
                print(f"error: --set wants key=value, got {pair!r}", file=sys.stderr)
                return 2
            if key == "policy":
                if value not in factories:
                    print(
                        f"error: unknown policy {value!r}; pick from "
                        f"{sorted(factories)}",
                        file=sys.stderr,
                    )
                    return 2
                fork["manager_factory"] = factories[value]
            elif key == "scheduler":
                fork["scheduler"] = value
            elif key == "reseed":
                fork["reseed"] = value
            else:
                print(
                    f"error: --set key must be policy, scheduler, or reseed "
                    f"(got {key!r})",
                    file=sys.stderr,
                )
                return 2
    chosen = list(factories) if args.policy == "all" else [args.policy]
    generator = TraceGenerator(seed=args.seed)
    rows = []
    for policy in chosen:
        trace_path = None
        if args.event_trace:
            trace_path = _trace_path_for(args.event_trace, policy, len(chosen) > 1)
        archive_dir = None
        if args.archive:
            archive_dir = _archive_dir_for(args.archive, policy, len(chosen) > 1)
        if args.nodes:
            config = ClusterReplayConfig(
                nodes=args.nodes,
                scheduler=args.scheduler,
                shards=args.shards,
                epoch_seconds=args.epoch,
                protocol=args.protocol,
                window_epochs=args.window_epochs,
                scale_factor=args.scale_factor,
                warmup_seconds=args.warmup,
                duration_seconds=args.duration,
                platform=PlatformConfig(capacity_bytes=args.capacity_mib * MIB),
                trace=trace_path is not None,
                event_trace_path=trace_path,
                archive_dir=archive_dir,
                archive_bucket_seconds=args.bucket_seconds,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                resume_from=resume_from,
                fork=fork,
            )
            result = cluster_replay(factories[policy], config, generator)
            stats = result.stats
            if result.checkpoints:
                print(
                    f"captured {len(result.checkpoints)} checkpoints in "
                    f"{args.checkpoint_dir} (last: "
                    f"{result.checkpoints[-1].name})",
                    file=sys.stderr,
                )
            if result.resumed_phase is not None:
                what = "forked" if fork else "resumed"
                print(
                    f"{what} from {resume_from} into the "
                    f"{result.resumed_phase} phase (measure_start "
                    f"{result.measure_start:.3f}s)",
                    file=sys.stderr,
                )
            if args.shards > 1:
                print(
                    f"shard protocol {args.protocol}: {result.round_trips} "
                    f"round trips, {fmt_bytes(result.pipe_bytes)} over pipes "
                    f"({result.epochs} epochs), coordination overhead "
                    f"{result.coordination_overhead:.3f}s",
                    file=sys.stderr,
                )
            if trace_path is not None:
                print(
                    f"wrote {result.trace_events} events to {trace_path} "
                    f"(sha256 {result.trace_sha256[:16]}, merged from "
                    f"{args.nodes} nodes / {args.shards} shards, "
                    f"{result.epochs} epochs)",
                    file=sys.stderr,
                )
            if archive_dir is not None:
                print(
                    f"archived {result.archive_events} events to "
                    f"{archive_dir} (composed sha256 "
                    f"{result.archive_sha256[:16]})",
                    file=sys.stderr,
                )
        else:
            config = ReplayConfig(
                scale_factor=args.scale_factor,
                warmup_seconds=args.warmup,
                duration_seconds=args.duration,
                platform=PlatformConfig(capacity_bytes=args.capacity_mib * MIB),
                event_trace_path=trace_path,
                archive_dir=archive_dir,
                archive_bucket_seconds=(
                    args.bucket_seconds
                    if args.bucket_seconds is not None
                    else 60.0
                ),
                digest_only=args.digest_only,
            )
            result = replay(factories[policy], config, generator)
            stats = result.stats
            if args.digest_only:
                print(
                    f"digest-only [{policy}]: {result.trace_events} events, "
                    f"stream sha256 {result.trace_sha256}",
                    file=sys.stderr,
                )
            if result.trace is not None and trace_path is not None:
                print(
                    f"wrote {len(result.trace)} events to {trace_path}",
                    file=sys.stderr,
                )
            if archive_dir is not None:
                print(
                    f"archived {result.archive_events} events to "
                    f"{archive_dir} (composed sha256 "
                    f"{result.archive_sha256[:16]})",
                    file=sys.stderr,
                )
        memo_stats = result.memo_stats
        if memo_stats is not None:
            lookups = memo_stats["hits"] + memo_stats["misses"]
            rate = memo_stats["hits"] / lookups if lookups else 0.0
            print(
                f"memo [{policy}]: {memo_stats['hits']}/{lookups} hits "
                f"({rate:.1%}), {memo_stats['entries']} entries, "
                f"{fmt_bytes(memo_stats['cached_bytes'])} cached, "
                f"{memo_stats['evictions']} evictions",
                file=sys.stderr,
            )
        rows.append(
            [
                stats.policy,
                f"{stats.cold_boot_rate:.3f}",
                f"{stats.throughput_rps:.1f}",
                f"{stats.cpu_utilization:.0%}",
                f"{stats.p99_latency:.2f}s",
                stats.evictions,
            ]
        )
    print(
        render_table(
            ["policy", "cold/req", "rps", "cpu", "p99", "evictions"], rows
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.shard import sha256_lines
    from repro.trace.archive import ArchiveReader, pack

    if args.trace_command == "pack":
        events, sha = pack(
            args.jsonl, args.archive, bucket_seconds=args.bucket_seconds
        )
        print(f"packed {events} events into {args.archive} (sha256 {sha[:16]})")
        return 0

    if args.trace_command == "ls":
        reader = ArchiveReader(args.archive)
        rows = []
        for info in reader.segments():
            _, footer = reader.read_segment(info.name)
            rows.append(
                [
                    info.name,
                    footer["events"],
                    f"{footer['t_min']:.3f}" if footer["t_min"] is not None else "-",
                    f"{footer['t_max']:.3f}" if footer["t_max"] is not None else "-",
                    fmt_bytes(footer.get("payload_bytes", 0)),
                    str(footer["sha256"])[:12],
                ]
            )
        print(
            render_table(
                ["segment", "events", "t_min", "t_max", "payload", "sha256"],
                rows,
            )
        )
        if reader.manifest is not None:
            m = reader.manifest
            print(
                f"{m['segments']} segments, {m['events']} events, "
                f"bucket {m['bucket_seconds']}s, composed sha256 "
                f"{str(m['sha256'])[:16]}",
                file=sys.stderr,
            )
        return 0

    if args.trace_command == "cat":
        reader = ArchiveReader(args.archive)
        nodes = (
            tuple(int(n) for n in args.nodes.split(",") if n)
            if args.nodes
            else None
        )
        try:
            for line in reader.iter_window(
                t_start=args.t_start, t_end=args.t_end, nodes=nodes
            ):
                print(line)
        except BrokenPipeError:
            # Downstream (e.g. `head`) closed the pipe: normal shutdown.
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0

    if args.trace_command == "verify":
        reader = ArchiveReader(args.archive)
        against = None
        if args.against:
            with open(args.against, "r", encoding="utf-8") as handle:
                _, against = sha256_lines(
                    line.rstrip("\n") for line in handle if line.rstrip("\n")
                )
        problems = reader.verify(against_sha256=against)
        for problem in problems:
            print(f"PROBLEM {problem}", file=sys.stderr)
        if problems:
            return 1
        events, sha = reader.compose(verify=False)
        suffix = f", matches {args.against}" if args.against else ""
        print(
            f"{args.archive}: {len(reader.segments())} segments, "
            f"{events} events verified (composed sha256 {sha[:16]}{suffix})"
        )
        return 0

    raise ValueError(f"unknown trace command {args.trace_command!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.bench import (
        REPLAY_POLICIES,
        BenchSpec,
        build_grid,
        build_replay_macro,
        compare_micro,
        compare_replay,
        load_baseline,
        run_benchmarks,
        summarize,
        verify_coordination,
        verify_trace_identity,
        write_profile_diffs,
        write_results,
    )

    specs = []
    if args.suite in ("micro", "all"):
        specs.append(BenchSpec(kind="micro", size_mib=args.size_mib))
    if args.suite in ("characterize", "all"):
        specs.extend(
            build_grid(
                functions=args.functions.split(","),
                policies=args.policies.split(","),
                scales=(),
                iterations=args.iterations,
                budget_mib=args.budget_mib,
            )
        )
    if args.suite in ("replay", "all"):
        shard_counts = (
            tuple(int(s) for s in args.shards.split(",") if s)
            if args.shards
            else ()
        )
        specs.extend(
            build_replay_macro(
                sizes=args.sizes.split(","),
                policies=[
                    p for p in args.policies.split(",") if p in REPLAY_POLICIES
                ],
                seed=args.seed,
                include_base=not args.fast_only,
                nodes=args.nodes if shard_counts or args.forked else 0,
                shard_counts=shard_counts,
                include_unbatched=args.unbatched_twin,
                include_forked=args.forked,
                include_memo=args.memo_twin,
                memo_sizes=(
                    args.memo_sizes.split(",") if args.memo_sizes else None
                ),
                include_encoder_twin=args.encoder_twin,
                include_digest_only=args.digest_only_twin,
            )
        )
    results = run_benchmarks(specs, jobs=args.jobs, profile_dir=args.profile)
    if args.profile:
        for diff in write_profile_diffs(args.profile, results):
            print(f"wrote {diff}", file=sys.stderr)
    rows = []
    for result in results:
        metrics = result["metrics"]
        key_metric = next(iter(metrics.items())) if metrics else ("-", "-")
        rows.append(
            [
                result["label"],
                f"{result['wall_seconds']:.2f}s",
                f"{result['cpu_seconds']:.2f}s",
                f"{key_metric[0]}={key_metric[1]}",
            ]
        )
    print(render_table(["run", "wall", "cpu", "headline"], rows))
    document = summarize(results)
    if args.json:
        write_results(Path(args.json), document)
        print(f"wrote {args.json}", file=sys.stderr)
    mismatches = verify_trace_identity(results)
    for mismatch in mismatches:
        print(f"TRACE MISMATCH {mismatch}", file=sys.stderr)
    if mismatches:
        return 1
    overhead = verify_coordination(results)
    for violation in overhead:
        print(f"COORDINATION OVERHEAD {violation}", file=sys.stderr)
    if overhead:
        return 1
    if args.check:
        baseline = load_baseline(Path(args.check))
        if baseline is None:
            print(f"error: baseline {args.check} not found", file=sys.stderr)
            return 2
        baseline_runs = baseline.get("runs", ())
        failures = []
        gated = []
        current_micro = next(
            (r["metrics"] for r in results if r["spec"]["kind"] == "micro"), None
        )
        baseline_micro = next(
            (
                r["metrics"]
                for r in baseline_runs
                if r.get("spec", {}).get("kind") == "micro"
            ),
            None,
        )
        if current_micro is not None and baseline_micro is not None:
            failures.extend(compare_micro(current_micro, baseline_micro, args.factor))
            gated.append("micro")
        if any(r["spec"]["kind"] == "replay" for r in results):
            failures.extend(compare_replay(results, baseline_runs, args.factor))
            gated.append("replay")
        if not gated:
            print(
                "error: --check found nothing to gate: the baseline and the "
                "current run share no micro or replay suite",
                file=sys.stderr,
            )
            return 2
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"{' and '.join(gated)} within baseline", file=sys.stderr)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.check.fuzz import parse_seed_spec, replay_case, run_fuzz

    if args.replay:
        failure, header = replay_case(Path(args.replay))
        expected = header.get("kind", "?")
        if failure is None:
            print(f"{args.replay}: no violation (expected {expected})")
            return 0
        print(f"{args.replay}: reproduced {failure.kind} at op {failure.op_index}")
        print(f"  {failure.detail}")
        return 1

    seeds = parse_seed_spec(args.seed)
    results = run_fuzz(
        seeds,
        args.ops,
        check_every=args.check_every,
        jobs=args.jobs,
        case_dir=args.case_dir,
        checkpoint_every=args.checkpoint_every,
    )
    failures = [r for r in results if not r["ok"]]
    checks = sum(r["checks"] for r in results)
    print(
        f"fuzz: {len(results)} seeds x {args.ops} ops, "
        f"{checks} oracle sweeps, {len(failures)} failing"
    )
    for result in failures:
        line = (
            f"  seed {result['seed']}: {result['kind']} at op "
            f"{result['op_index']} (shrunk to {result['shrunk_len']} ops)"
        )
        if result.get("snapshot_index") is not None:
            line += f" [suffix shrink from snapshot @{result['snapshot_index']}]"
        if result.get("case_path"):
            line += f" -> {result['case_path']}"
        print(line)
        print(f"    {result['detail']}")
    return 1 if failures else 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    before, after = run_overhead_experiment(
        args.function,
        reclaimer=args.reclaimer,
        warm_iterations=args.warm,
        probe_iterations=args.probe,
    )
    print(f"{args.function} ({args.reclaimer}): "
          f"{before * 1000:.2f} ms -> {after * 1000:.2f} ms "
          f"({after / before - 1:+.1%})")
    return 0


def _bucket_seconds_arg(value: str):
    """Parse ``--bucket-seconds``: a float, or ``adaptive`` for density-based
    sizing (cluster replay only)."""
    if value.strip().lower() == "adaptive":
        return None
    try:
        return float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds or 'adaptive', got {value!r}"
        )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frozen-garbage characterization and Desiccant reclamation "
        "(EuroSys '24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the Table 1 function suite").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser(
        "characterize", help="run the §3.1/§5.2 single-instance protocol"
    )
    p.add_argument("function", help="Table 1 function name, or 'all'")
    p.add_argument("--policy", choices=POLICIES, default="vanilla")
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--budget-mib", type=int, default=256)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("replay", help="replay the Azure-style trace (§5.3)")
    p.add_argument(
        "--policy",
        choices=("vanilla", "eager", "desiccant", "all"),
        default="all",
    )
    p.add_argument("--scale-factor", type=float, default=15.0)
    p.add_argument("--capacity-mib", type=int, default=1024)
    p.add_argument("--warmup", type=float, default=30.0)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--memo",
        action="store_true",
        help="memoize warm-path invocations through the content-addressed "
        "effect cache (same as REPRO_MEMO=1; output stays byte-identical, "
        "see docs/MEMOIZATION.md)",
    )
    p.add_argument(
        "--event-trace",
        metavar="PATH",
        help="stream a JSONL event trace of the measurement window here "
        "(with --policy all, one file per policy: PATH.<policy>.jsonl)",
    )
    p.add_argument(
        "--archive",
        metavar="DIR",
        help="roll the measurement trace into a segmented archive at DIR "
        "(with --policy all, one directory per policy: DIR.<policy>); "
        "independent of --event-trace, and digest-checked against it "
        "when both are on",
    )
    p.add_argument(
        "--digest-only",
        action="store_true",
        help="compute the measurement window's trace-stream SHA-256 "
        "without storing or writing lines (the fastest equivalence "
        "witness; single platform only, incompatible with "
        "--event-trace/--archive/--nodes)",
    )
    p.add_argument(
        "--bucket-seconds",
        type=_bucket_seconds_arg,
        default=None,
        help="simulated seconds per archive time bucket, or 'adaptive' to "
        "size buckets from the submission log's arrival density (cluster "
        "replay defaults to adaptive; single-platform defaults to 60)",
    )
    p.add_argument(
        "--nodes",
        type=int,
        default=0,
        help="replay on a cluster of this many invoker nodes instead of a "
        "single platform (0 = single platform)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the cluster nodes across this many worker "
        "processes, synchronized in conservative time epochs (1 = the "
        "in-process serial twin; merged traces are byte-identical either "
        "way)",
    )
    p.add_argument(
        "--scheduler",
        choices=("round-robin", "least-assigned", "warm-affinity",
                 "least-loaded-live"),
        default="warm-affinity",
        help="cluster front-end scheduler (--nodes only)",
    )
    p.add_argument(
        "--epoch",
        type=float,
        default=5.0,
        help="simulated seconds per synchronization epoch (--shards only; "
        "the batched protocol treats this as the base grid for adaptive "
        "horizons)",
    )
    p.add_argument(
        "--protocol",
        choices=("batched", "unbatched"),
        default="batched",
        help="shard wire protocol: 'batched' grants multi-epoch windows "
        "over framed pipes with out-of-pipe traces; 'unbatched' is the "
        "per-epoch comparison protocol (--shards only)",
    )
    p.add_argument(
        "--window-epochs",
        type=int,
        default=32,
        help="max epochs granted per coordinator message under the "
        "batched protocol",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="capture checkpoints at epoch barriers into DIR "
        "(docs/CHECKPOINTS.md; --nodes with a single --policy only)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="align barriers (and captures) to every N epochs",
    )
    p.add_argument(
        "--resume",
        metavar="CKPT",
        help="restore this checkpoint and run only the remaining suffix "
        "(byte-identical to the uninterrupted run)",
    )
    p.add_argument(
        "--fork",
        metavar="CKPT",
        help="fork a what-if leg from this checkpoint; combine with --set "
        "to change parameters at the barrier",
    )
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="fork divergence (repeatable): policy=<name>, "
        "scheduler=<name>, or reseed=<label>",
    )
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "trace",
        help="inspect and verify segmented trace archives "
        "(docs/TRACE_ARCHIVE.md)",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    tp = trace_sub.add_parser(
        "pack", help="pack a flat JSONL trace into a segmented archive"
    )
    tp.add_argument("jsonl", help="flat JSONL event trace (docs/EVENT_TRACE.md)")
    tp.add_argument("archive", help="output archive directory (must be fresh)")
    tp.add_argument(
        "--bucket-seconds",
        type=float,
        default=60.0,
        help="simulated seconds per time bucket",
    )
    tp.set_defaults(func=_cmd_trace)

    tp = trace_sub.add_parser("ls", help="list an archive's segments")
    tp.add_argument("archive")
    tp.set_defaults(func=_cmd_trace)

    tp = trace_sub.add_parser(
        "cat", help="stream records (optionally a time/node window) to stdout"
    )
    tp.add_argument("archive")
    tp.add_argument("--t-start", type=float, help="window start (inclusive)")
    tp.add_argument("--t-end", type=float, help="window end (exclusive)")
    tp.add_argument("--nodes", help="comma-separated node ids (default: all)")
    tp.set_defaults(func=_cmd_trace)

    tp = trace_sub.add_parser(
        "verify",
        help="check every segment footer and the composed digest; "
        "nonzero exit on any problem",
    )
    tp.add_argument("archive")
    tp.add_argument(
        "--against",
        metavar="JSONL",
        help="also require the composed digest to equal this flat trace's",
    )
    tp.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "bench",
        help="fan benchmark runs across processes; metrics are "
        "deterministic, only wall/CPU timings vary",
    )
    p.add_argument(
        "--suite",
        choices=("micro", "characterize", "replay", "all"),
        default="all",
    )
    p.add_argument("--functions", default="fft,sort,mapreduce")
    p.add_argument("--policies", default="vanilla,eager,desiccant")
    p.add_argument(
        "--sizes",
        default="small",
        help="replay macro sizes, comma-separated (small, medium, large)",
    )
    p.add_argument(
        "--fast-only",
        action="store_true",
        help="skip the fastpath-off reference legs of the replay suite "
        "(CI smoke: time only the fast path)",
    )
    p.add_argument(
        "--shards",
        default="",
        help="also run cluster replay legs at these shard counts "
        "(comma-separated, e.g. '2,4'); each is digest-gated against an "
        "in-process serial twin of the same cluster",
    )
    p.add_argument(
        "--nodes",
        type=int,
        default=8,
        help="cluster size for the sharded replay legs (with --shards)",
    )
    p.add_argument(
        "--unbatched-twin",
        action="store_true",
        help="also run each sharded leg under the per-epoch 'unbatched' "
        "protocol and gate the batched legs on >=5x fewer round trips "
        "and >=10x fewer pipe bytes",
    )
    p.add_argument(
        "--forked",
        action="store_true",
        help="add a checkpoint-fork sweep leg per cluster replay cell: "
        "capture a measure-start checkpoint, resume a forked twin that "
        "skips the warmup prefix, and gate its merged-trace digest "
        "against the from-scratch run's",
    )
    p.add_argument(
        "--memo-twin",
        action="store_true",
        help="add an effect-cache leg (REPRO_MEMO on, ':memo' label) per "
        "vanilla replay cell, digest-gated byte-identical against the "
        "plain fast leg; with --profile each memo leg also gets a "
        "profile-diff top-30 listing against its twin",
    )
    p.add_argument(
        "--encoder-twin",
        action="store_true",
        help="add a generic-encoder reference leg (':enc' label) per "
        "single-platform replay cell: the original json.dumps "
        "line-at-a-time path, digest-gated byte-identical against the "
        "compiled default and paired as encoder_speedup",
    )
    p.add_argument(
        "--digest-only-twin",
        action="store_true",
        help="add a storeless digest-only leg (':digest-only' label) per "
        "single-platform replay cell, digest-gated against the plain "
        "twin's written trace and paired as digest_only_speedup",
    )
    p.add_argument(
        "--memo-sizes",
        default="medium,large",
        help="replay sizes that get the --memo-twin leg (comma-separated; "
        "'' = all of --sizes).  Defaults to the sizes whose measurement "
        "window is long enough for recurring trajectories to dominate",
    )
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument("--budget-mib", type=int, default=256)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--size-mib", type=int, default=200, help="microbench range size")
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument(
        "--profile",
        metavar="DIR",
        help="run each spec under cProfile; dump <label>.prof and a "
        "cumulative top-30 listing into DIR",
    )
    p.add_argument("--json", metavar="PATH", help="write the full results JSON here")
    p.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare the micro and replay runs against this committed "
        "baseline JSON",
    )
    p.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="allowed slowdown vs the baseline before failing (default 2x)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "fuzz",
        help="deterministic simulation fuzzing under the invariant oracle "
        "(repro.check)",
    )
    p.add_argument(
        "--seed",
        default="0",
        help="seed spec: '7', '0..63' (inclusive range), or '1,5,9'",
    )
    p.add_argument("--ops", type=int, default=2000, help="ops per seed")
    p.add_argument(
        "--check-every",
        type=int,
        default=1,
        help="run a full oracle sweep every N ops (a final sweep always runs)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="snapshot the fuzz world every N ops so shrinking restarts "
        "from the last snapshot before the failure instead of replaying "
        "the whole prefix (the written case stays standalone-replayable)",
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument(
        "--case-dir",
        metavar="DIR",
        help="write shrunk .jsonl repro cases for failing seeds here",
    )
    p.add_argument(
        "--replay",
        metavar="CASE",
        help="re-execute one .jsonl case file instead of fuzzing",
    )
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("overhead", help="post-reclaim overhead (§5.6)")
    p.add_argument("function")
    p.add_argument(
        "--reclaimer",
        choices=("desiccant", "aggressive", "swap"),
        default="desiccant",
    )
    p.add_argument("--warm", type=int, default=130)
    p.add_argument("--probe", type=int, default=10)
    p.set_defaults(func=_cmd_overhead)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
