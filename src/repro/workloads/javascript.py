"""The thirteen JavaScript functions of Table 1.

Calibration anchors from the paper: fft keeps large arrays live across the
whole invocation, so its young generation doubles to the 32 MiB cap on a
256 MiB heap (and ~128 MiB at 1 GiB -- Figure 12d), making it the worst
frozen-garbage offender (avg ratio 3.27x default, 7.11x at 1 GiB); clock is
tiny and budget-insensitive (Figure 12c); unionfind and data-analysis are
JIT-heavy, so aggressive collections slow them 1.74x / 2.14x (§5.6).
"""

from __future__ import annotations

from repro.mem.layout import KIB, MIB
from repro.workloads.model import FunctionDefinition, FunctionSpec


def _spec(name: str, description: str, **kwargs) -> FunctionSpec:
    return FunctionSpec(
        name=name, language="javascript", description=description, **kwargs
    )


def _single(name: str, description: str, **kwargs) -> FunctionDefinition:
    return FunctionDefinition(
        name=name,
        language="javascript",
        description=description,
        stages=(_spec(name, description, **kwargs),),
    )


CLOCK = _single(
    "clock",
    "Returning the executed time of current process",
    base_exec_seconds=0.003,
    ephemeral_bytes=192 * KIB,
    frame_bytes=64 * KIB,
    persistent_bytes=256 * KIB,
    init_ephemeral_bytes=1 * MIB,
    object_size=16 * KIB,
    interp_penalty=1.05,
)

DYNAMIC_HTML = _single(
    "dynamic-html",
    "Generating a HTML file randomly",
    base_exec_seconds=0.016,
    ephemeral_bytes=2 * MIB,
    frame_bytes=1 * MIB,
    persistent_bytes=512 * KIB,
    init_ephemeral_bytes=2 * MIB,
    object_size=24 * KIB,
    interp_penalty=1.2,
)

FACTOR = _single(
    "factor",
    "Calculating the factorization for a large integer",
    base_exec_seconds=0.08,
    ephemeral_bytes=4 * MIB,
    frame_bytes=768 * KIB,
    persistent_bytes=384 * KIB,
    init_ephemeral_bytes=1 * MIB,
    interp_penalty=1.3,
)

FFT = _single(
    "fft",
    "Fast Fourier transform",
    base_exec_seconds=0.12,
    ephemeral_bytes=6 * MIB,
    frame_bytes=10 * MIB,  # working arrays live across the invocation
    persistent_bytes=1 * MIB,
    init_ephemeral_bytes=2 * MIB,
    object_size=64 * KIB,
    interp_penalty=1.35,
)

FIBONACCI = _single(
    "fibonacci",
    "Calculating the nth value in a Fibonacci sequence",
    base_exec_seconds=0.04,
    ephemeral_bytes=1 * MIB,
    frame_bytes=256 * KIB,
    persistent_bytes=256 * KIB,
    init_ephemeral_bytes=1 * MIB,
    object_size=16 * KIB,
    interp_penalty=1.15,
)

FILESYSTEM = _single(
    "filesystem",
    "Accessing the file system",
    base_exec_seconds=0.03,
    ephemeral_bytes=3 * MIB,
    frame_bytes=1 * MIB,
    persistent_bytes=512 * KIB,
    init_ephemeral_bytes=2 * MIB,
    interp_penalty=1.2,
)

MATRIX = _single(
    "matrix",
    "Matrix multiplication",
    base_exec_seconds=0.1,
    ephemeral_bytes=5 * MIB,
    frame_bytes=6 * MIB,
    persistent_bytes=1 * MIB,
    init_ephemeral_bytes=2 * MIB,
    object_size=96 * KIB,
    interp_penalty=1.3,
)

PI = _single(
    "pi",
    "Calculating pi with a given number of iterations",
    base_exec_seconds=0.06,
    ephemeral_bytes=2 * MIB,
    frame_bytes=192 * KIB,
    persistent_bytes=256 * KIB,
    init_ephemeral_bytes=1 * MIB,
    interp_penalty=1.2,
)

UNIONFIND = _single(
    "unionfind",
    "Executing operations over a union-find disjoint set",
    base_exec_seconds=0.07,
    ephemeral_bytes=4 * MIB,
    frame_bytes=3 * MIB,
    persistent_bytes=768 * KIB,
    init_ephemeral_bytes=2 * MIB,
    object_size=24 * KIB,
    code_size=768 * KIB,
    warm_units=32,  # deep optimization pipeline: slow to re-warm
    interp_penalty=1.74,  # the §5.6 deopt-sensitive function
)

WEB_SERVER = _single(
    "web-server",
    "Launching a web server and processing requests",
    base_exec_seconds=0.025,
    ephemeral_bytes=2 * MIB,
    frame_bytes=1 * MIB,
    persistent_bytes=2 * MIB,
    init_ephemeral_bytes=3 * MIB,
    interp_penalty=1.2,
)

DATA_ANALYSIS = FunctionDefinition(
    name="data-analysis",
    language="javascript",
    description="Analyzing data in a database",
    stages=tuple(
        _spec(
            f"data-analysis.{i}",
            stage_desc,
            base_exec_seconds=exec_s,
            ephemeral_bytes=eph * MIB,
            frame_bytes=int(frame * MIB),
            persistent_bytes=1 * MIB,
            init_ephemeral_bytes=2 * MIB,
            object_size=32 * KIB,
            code_size=768 * KIB,
            warm_units=48,
            # The §5.6 deopt-sensitive chain (2.14x end-to-end when its
            # code is collected aggressively); every stage leans on
            # optimized code and re-optimizes slowly.
            interp_penalty=2.4,
        )
        for i, (stage_desc, exec_s, eph, frame) in enumerate(
            [
                ("parse and validate the query", 0.05, 3, 1),
                ("scan rows from the store", 0.09, 8, 4),
                ("filter rows by predicate", 0.06, 5, 2),
                ("aggregate grouped values", 0.07, 6, 2.5),
                ("sort the aggregates", 0.05, 4, 1.5),
                ("render the report", 0.04, 3, 1),
            ]
        )
    ),
)

ALEXA = FunctionDefinition(
    name="alexa",
    language="javascript",
    description="Interacting with smart-home devices",
    stages=tuple(
        _spec(
            f"alexa.{i}",
            stage_desc,
            base_exec_seconds=0.02 + 0.004 * (i % 3),
            ephemeral_bytes=(1 + i % 2) * MIB,
            frame_bytes=512 * KIB,
            persistent_bytes=512 * KIB,
            init_ephemeral_bytes=1 * MIB,
            object_size=16 * KIB,
            interp_penalty=1.15,
        )
        for i, stage_desc in enumerate(
            [
                "parse the utterance",
                "resolve the intent",
                "authenticate the account",
                "look up device state",
                "dispatch the device command",
                "await the device acknowledgement",
                "compose the voice response",
                "log the interaction",
            ]
        )
    ),
)

JAVASCRIPT_DEFINITIONS = (
    CLOCK,
    DYNAMIC_HTML,
    FACTOR,
    FFT,
    FIBONACCI,
    FILESYSTEM,
    MATRIX,
    PI,
    UNIONFIND,
    WEB_SERVER,
    DATA_ANALYSIS,
    ALEXA,
)
