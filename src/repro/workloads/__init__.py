"""Table 1 workload models: the 21 FaaS functions the paper evaluates.

Each function is modelled by the three quantities its memory behaviour
reduces to (per §3 and §5.2):

* **ephemeral bytes** -- garbage that dies inside the invocation (drives
  allocation rate, scavenge frequency, and V8's young-generation doubling),
* **frame bytes**     -- data live until the invocation exits (drives
  survivor copying and promotion; becomes frozen garbage at the freeze
  point),
* **persistent bytes** -- cached state established on first use (the stable
  live set Desiccant's profile estimator relies on),

plus execution time, a JIT profile, and -- for chained functions -- the
intermediate data handed to the next stage (the mapreduce effect in §5.2).
"""

from repro.workloads.model import (
    FunctionDefinition,
    FunctionModel,
    FunctionSpec,
    InvocationResult,
)
from repro.workloads.registry import (
    all_definitions,
    definitions_by_language,
    get_definition,
    table1_rows,
)

__all__ = [
    "FunctionDefinition",
    "FunctionModel",
    "FunctionSpec",
    "InvocationResult",
    "all_definitions",
    "definitions_by_language",
    "get_definition",
    "table1_rows",
]
