"""The eight Java functions of Table 1.

Volumes are calibrated so the characterization reproduces the paper's
shapes: every function generates frozen garbage; the average of maximum
vanilla/ideal ratios is ~2.7x (§3.1); hotel-searching's maximum ratio
exceeds 5; file-hash's eager-GC heap settles below 10 MiB with ~1 MiB
live (§3.2.1); mapreduce's mapper hands 12 MiB to the reducer, defeating
eager GC (§5.2).
"""

from __future__ import annotations

from repro.mem.layout import KIB, MIB
from repro.workloads.model import FunctionDefinition, FunctionSpec


def _spec(name: str, description: str, **kwargs) -> FunctionSpec:
    return FunctionSpec(name=name, language="java", description=description, **kwargs)


TIME = FunctionDefinition(
    name="time",
    language="java",
    description="Returning current time",
    stages=(
        _spec(
            "time",
            "Returning current time",
            base_exec_seconds=0.004,
            ephemeral_bytes=384 * KIB,
            frame_bytes=96 * KIB,
            persistent_bytes=512 * KIB,
            init_ephemeral_bytes=3 * MIB,
            object_size=16 * KIB,
            interp_penalty=1.1,
        ),
    ),
)

SORT = FunctionDefinition(
    name="sort",
    language="java",
    description="Sorting an array of integers",
    stages=(
        _spec(
            "sort",
            "Sorting an array of integers",
            base_exec_seconds=0.065,
            ephemeral_bytes=9 * MIB,
            frame_bytes=384 * KIB,
            persistent_bytes=1 * MIB,
            init_ephemeral_bytes=10 * MIB,
            interp_penalty=1.3,
        ),
    ),
)

FILE_HASH = FunctionDefinition(
    name="file-hash",
    language="java",
    description="Calculating the hash value for a file",
    stages=(
        _spec(
            "file-hash",
            "Calculating the hash value for a file",
            base_exec_seconds=0.08,
            ephemeral_bytes=6 * MIB,
            frame_bytes=256 * KIB,
            persistent_bytes=1 * MIB,  # ~1.07 MiB live after GC in the paper
            init_ephemeral_bytes=9 * MIB,
            object_size=64 * KIB,
            interp_penalty=1.2,
        ),
    ),
)

IMAGE_RESIZE = FunctionDefinition(
    name="image-resize",
    language="java",
    description="Resizing an image",
    stages=(
        _spec(
            "image-resize",
            "Resizing an image",
            base_exec_seconds=0.2,
            ephemeral_bytes=22 * MIB,
            frame_bytes=640 * KIB,
            persistent_bytes=2 * MIB,
            init_ephemeral_bytes=16 * MIB,
            object_size=128 * KIB,
            interp_penalty=1.35,
        ),
    ),
)

IMAGE_PIPELINE = FunctionDefinition(
    name="image-pipeline",
    language="java",
    description="Processing an image with four consecutive functions",
    stages=tuple(
        _spec(
            f"image-pipeline.{i}",
            stage_desc,
            base_exec_seconds=exec_s,
            ephemeral_bytes=eph * MIB,
            frame_bytes=frame * KIB,
            persistent_bytes=1 * MIB,
            init_ephemeral_bytes=11 * MIB,
            object_size=96 * KIB,
            handoff_bytes=3 * MIB if i < 3 else 0,
            interp_penalty=1.3,
        )
        for i, (stage_desc, exec_s, eph, frame) in enumerate(
            [
                ("decode the image", 0.09, 12, 448),
                ("apply a blur filter", 0.14, 16, 512),
                ("overlay a watermark", 0.08, 10, 384),
                ("encode and store the result", 0.11, 14, 448),
            ]
        )
    ),
)

HOTEL_SEARCHING = FunctionDefinition(
    name="hotel-searching",
    language="java",
    description="Searching hotels with preferences",
    stages=tuple(
        _spec(
            f"hotel-searching.{i}",
            stage_desc,
            base_exec_seconds=exec_s,
            ephemeral_bytes=eph * MIB,
            frame_bytes=frame * KIB,
            persistent_bytes=2 * MIB,
            init_ephemeral_bytes=init * MIB,
            object_size=48 * KIB,
            interp_penalty=1.4,
        )
        for i, (stage_desc, exec_s, eph, frame, init) in enumerate(
            [
                ("match hotels against the query", 0.12, 30, 1024, 34),
                ("rank candidates by geo distance", 0.1, 24, 896, 30),
                ("fetch rates and availability", 0.09, 20, 768, 26),
            ]
        )
    ),
)

MAPREDUCE = FunctionDefinition(
    name="mapreduce",
    language="java",
    description="Counting words in a map-reduce fashion",
    stages=(
        _spec(
            "mapreduce.map",
            "tokenize input and emit word counts",
            base_exec_seconds=0.11,
            ephemeral_bytes=5 * MIB,
            frame_bytes=384 * KIB,
            persistent_bytes=1 * MIB,
            init_ephemeral_bytes=4 * MIB,
            handoff_bytes=12 * MIB,  # intermediate data for the reducer
            interp_penalty=1.3,
        ),
        _spec(
            "mapreduce.reduce",
            "merge per-word counts",
            base_exec_seconds=0.07,
            ephemeral_bytes=4 * MIB,
            frame_bytes=256 * KIB,
            persistent_bytes=1 * MIB,
            init_ephemeral_bytes=1 * MIB,
            interp_penalty=1.25,
        ),
    ),
)

SPECJBB2015 = FunctionDefinition(
    name="specjbb2015",
    language="java",
    description="The purchasing transaction in a simulated supermarket",
    stages=tuple(
        _spec(
            f"specjbb2015.{i}",
            stage_desc,
            base_exec_seconds=exec_s,
            ephemeral_bytes=eph * MIB,
            frame_bytes=frame * KIB,
            persistent_bytes=4 * MIB,
            init_ephemeral_bytes=20 * MIB,
            object_size=24 * KIB,
            interp_penalty=1.45,
        )
        for i, (stage_desc, exec_s, eph, frame) in enumerate(
            [
                ("build the customer basket", 0.13, 16, 768),
                ("price and apply promotions", 0.15, 18, 896),
                ("commit the purchase transaction", 0.1, 12, 640),
            ]
        )
    ),
)

JAVA_DEFINITIONS = (
    TIME,
    SORT,
    FILE_HASH,
    IMAGE_RESIZE,
    IMAGE_PIPELINE,
    HOTEL_SEARCHING,
    MAPREDUCE,
    SPECJBB2015,
)
