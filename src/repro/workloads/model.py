"""Function models: how one invocation exercises a managed runtime."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.mem.layout import KIB, MIB
from repro.memo import toggle as memo_toggle
from repro.memo.rng import CountingRandom
from repro.runtime.base import ManagedRuntime


@dataclass(frozen=True)
class FunctionSpec:
    """One function (or one stage of a chained function)."""

    name: str
    language: str  # "java" | "javascript" | "python"
    description: str
    #: Wall execution time of the warm function at its CPU share.
    base_exec_seconds: float
    #: Short-lived garbage allocated per invocation (dies immediately).
    ephemeral_bytes: int
    #: Data live for the whole invocation (dies at exit -> frozen garbage).
    frame_bytes: int
    #: Cached state allocated on the first invocation, live thereafter.
    persistent_bytes: int = 512 * KIB
    #: Extra one-off allocation on the first invocation (class loading,
    #: module initialization) -- mostly garbage afterwards.
    init_ephemeral_bytes: int = 0
    #: Allocation granularity; smaller objects -> more allocator pressure.
    object_size: int = 32 * KIB
    #: JIT profile: code volume, invocations to warm, cold-run penalty.
    code_size: int = 192 * KIB
    warm_units: int = 4
    interp_penalty: float = 1.25
    #: Intermediate data handed to the next chain stage (stays live after
    #: exit until the consumer has run -- the §5.2 mapreduce effect).
    handoff_bytes: int = 0
    #: Relative jitter applied to times and allocation volumes.
    jitter: float = 0.08

    def __post_init__(self) -> None:
        if self.base_exec_seconds <= 0:
            raise ValueError(f"{self.name}: exec time must be positive")
        if min(self.ephemeral_bytes, self.frame_bytes, self.persistent_bytes) < 0:
            raise ValueError(f"{self.name}: byte volumes must be non-negative")


@dataclass(frozen=True)
class FunctionDefinition:
    """A deployable function: one stage, or a chain of stages.

    Chained entries in Table 1 ("mapreduce (2)") run each stage in its own
    instance; the definition is the unit users invoke.
    """

    name: str
    language: str
    description: str
    stages: Tuple[FunctionSpec, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"{self.name}: needs at least one stage")
        for stage in self.stages:
            if stage.language != self.language:
                raise ValueError(f"{self.name}: stage language mismatch")

    @property
    def is_chain(self) -> bool:
        return len(self.stages) > 1

    @property
    def total_exec_seconds(self) -> float:
        return sum(s.base_exec_seconds for s in self.stages)

    def display_name(self) -> str:
        """Table 1 style: chains carry their stage count."""
        if self.is_chain:
            return f"{self.name} ({len(self.stages)})"
        return self.name


@dataclass
class InvocationResult:
    """What one invocation cost and produced."""

    cpu_seconds: float
    gc_seconds: float
    fault_seconds: float
    jit_multiplier: float
    #: Persistent handle for intermediate data to hand to the next stage.
    handoff_oid: Optional[int] = None


class FunctionModel:
    """Drives one :class:`FunctionSpec` against a runtime instance."""

    def __init__(self, spec: FunctionSpec, seed: int = 0) -> None:
        self.spec = spec
        # crc32, not hash(): str hashing is salted per process, and the
        # jitter stream must be reproducible across runs.
        seed_value = (zlib.crc32(spec.name.encode()) ^ seed) & 0x7FFFFFFF
        if memo_toggle.enabled():
            # The memo layer fingerprints invocations by (spec, seed,
            # draws-so-far); CountingRandom exposes the draw count.
            self._rng: random.Random = CountingRandom(seed_value)
            self._memo_ident: Optional[int] = (
                zlib.crc32(repr(spec).encode()) ^ seed_value
            )
        else:
            self._rng = random.Random(seed_value)
            self._memo_ident = None

    def invoke(self, runtime: ManagedRuntime) -> InvocationResult:
        """Execute one invocation: allocate, account JIT, return the cost."""
        spec = self.spec
        first = runtime.invocations == 0
        runtime.begin_invocation()
        # Read the working set: cached state, native structures, library
        # code.  Free when resident; pays the §5.6 fault bill after
        # swapping or library unmapping.
        runtime.touch_live_data()
        step = runtime.jit.invoke(
            spec.name, spec.code_size, spec.warm_units, spec.interp_penalty
        )
        if first:
            # Initialization data (class loading, module parsing) stays
            # referenced for the whole first invocation and becomes garbage
            # afterwards -- the paper's "first execution enlarges the heap".
            self._alloc_volume(runtime, spec.init_ephemeral_bytes, "frame")
            if spec.persistent_bytes:
                self._alloc_volume(runtime, spec.persistent_bytes, "persistent")
        # Interleave short-lived garbage with invocation-scoped data, the
        # way real request handling mixes temporaries and working set.
        # The per-object draws stay untouched (the jitter stream is part of
        # the workload's identity); consecutive same-shaped draws are merely
        # batched into one alloc_cohort call, which the runtime either
        # unrolls (scalar path) or places as a cohort (fast path).
        eph = self._jittered(spec.ephemeral_bytes)
        frame = self._jittered(spec.frame_bytes)
        total = eph + frame
        run_scope = ""
        run_size = 0
        run_count = 0
        while total > 0:
            scope = "ephemeral" if self._rng.random() < eph / max(1, eph + frame) else "frame"
            size = min(spec.object_size, eph if scope == "ephemeral" else frame)
            if size <= 0:
                scope = "ephemeral" if eph > 0 else "frame"
                size = min(spec.object_size, max(eph, frame))
            if scope == run_scope and size == run_size:
                run_count += 1
            else:
                if run_count:
                    runtime.alloc_cohort(run_count, run_size, scope=run_scope)
                run_scope, run_size, run_count = scope, size, 1
            if scope == "ephemeral":
                eph -= size
            else:
                frame -= size
            total = eph + frame
        if run_count:
            runtime.alloc_cohort(run_count, run_size, scope=run_scope)
        handoff = None
        if spec.handoff_bytes:
            # Intermediate data stays persistently rooted until the consumer
            # stage picks it up.  Under vanilla it sits in eden and dies
            # there once consumed; eager GC at the producer's exit cannot
            # collect it (§5.2) and instead promotes it into the old
            # generation, which is the mapreduce regression of Figure 7.
            handoff = runtime.alloc(
                self._jittered(spec.handoff_bytes), scope="persistent"
            )
        runtime.end_invocation()

        exec_seconds = self._jittered_float(spec.base_exec_seconds)
        cpu = (
            exec_seconds * step.multiplier
            + step.compile_seconds
            + runtime.invocation_gc_seconds
            + runtime.invocation_fault_seconds
        )
        return InvocationResult(
            cpu_seconds=cpu,
            gc_seconds=runtime.invocation_gc_seconds,
            fault_seconds=runtime.invocation_fault_seconds,
            jit_multiplier=step.multiplier,
            handoff_oid=handoff,
        )

    def _alloc_volume(self, runtime: ManagedRuntime, volume: int, scope: str) -> None:
        remaining = self._jittered(volume)
        if remaining <= 0:
            return
        full, tail = divmod(remaining, self.spec.object_size)
        runtime.alloc_cohort(full, self.spec.object_size, scope=scope)
        if tail:
            runtime.alloc(tail, scope=scope)

    def _jittered(self, value: int) -> int:
        if value <= 0:
            return 0
        return max(1, int(value * (1.0 + self.spec.jitter * (2 * self._rng.random() - 1))))

    def _jittered_float(self, value: float) -> float:
        return value * (1.0 + self.spec.jitter * (2 * self._rng.random() - 1))
