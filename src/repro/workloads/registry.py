"""Lookup over the Table 1 function suite."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.java import JAVA_DEFINITIONS
from repro.workloads.javascript import JAVASCRIPT_DEFINITIONS
from repro.workloads.model import FunctionDefinition

_ALL: Tuple[FunctionDefinition, ...] = JAVA_DEFINITIONS + JAVASCRIPT_DEFINITIONS
_BY_NAME: Dict[str, FunctionDefinition] = {d.name: d for d in _ALL}


def all_definitions() -> Tuple[FunctionDefinition, ...]:
    """Every Table 1 function, Java first (paper order)."""
    return _ALL


def definitions_by_language(language: str) -> List[FunctionDefinition]:
    """Functions for one language ("java" or "javascript")."""
    matches = [d for d in _ALL if d.language == language]
    if not matches:
        raise KeyError(f"no functions for language {language!r}")
    return matches


def get_definition(name: str) -> FunctionDefinition:
    """Look a function up by its Table 1 name (without the stage count)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def get_stage(stage_name: str):
    """Resolve a stage spec by its full name (e.g. ``mapreduce.map``)."""
    base = stage_name.split(".")[0]
    definition = get_definition(base)
    for stage in definition.stages:
        if stage.name == stage_name:
            return stage
    raise KeyError(f"unknown stage {stage_name!r} in {base!r}")


def table1_rows() -> List[Tuple[str, str, str]]:
    """(language, display name, description) rows reproducing Table 1."""
    return [(d.language, d.display_name(), d.description) for d in _ALL]
