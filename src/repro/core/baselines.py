"""The evaluation's memory-management policies.

Managers are plain policy objects: they never touch the platform's event
loop directly.  A :class:`~repro.faas.platform.ManagerBridge` subscribes
each manager to its node's structured bus events (``invocation-end``,
``freeze``, ``eviction``, and the per-event ``step``) and forwards them
to the hooks below, returning the CPU seconds each hook consumed to the
publisher.  Everything the paper compares is one of these:

* :class:`VanillaManager` -- freeze semantics only; GC runs when the
  runtime decides (allocation pressure).
* :class:`EagerGcManager` -- force a full (aggressive, §4.7) collection at
  every function exit.  Cheap to describe, §3.2 shows why it is not enough,
  and it *promotes* chain handoff data it cannot collect (the mapreduce
  regression in §5.2).
* :class:`SwapManager`    -- the §5.6 alternative: under the same
  activation pressure, push frozen instances' private pages to swap.  It
  frees as much memory as Desiccant but without runtime semantics, so live
  pages come back through major faults.
* Desiccant itself lives in :mod:`repro.core.desiccant`.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

from repro.core.activation import ActivationController
from repro.faas.instance import FunctionInstance, InstanceState
from repro.mem.vmm import SwapOutResult


@runtime_checkable
class PlatformView(Protocol):
    """What a memory manager may observe about the platform."""

    def frozen_instances(self) -> List[FunctionInstance]: ...

    def frozen_bytes(self) -> int: ...

    @property
    def capacity_bytes(self) -> int: ...

    def idle_cpu_share(self) -> float: ...


@runtime_checkable
class MemoryManager(Protocol):
    """Policy hooks, driven by bus events through the manager bridge.
    Hooks return CPU seconds spent."""

    name: str

    def on_invocation_end(self, instance: FunctionInstance, now: float) -> float: ...

    def on_freeze(self, instance: FunctionInstance, now: float) -> float: ...

    def on_eviction(self, instance: FunctionInstance, now: float) -> None: ...

    def step(self, now: float, platform: PlatformView) -> float: ...


class VanillaManager:
    """No memory management beyond the freeze semantics."""

    name = "vanilla"

    def on_invocation_end(self, instance: FunctionInstance, now: float) -> float:
        return 0.0

    def on_freeze(self, instance: FunctionInstance, now: float) -> float:
        return 0.0

    def on_eviction(self, instance: FunctionInstance, now: float) -> None:
        return None

    def step(self, now: float, platform: PlatformView) -> float:
        return 0.0


class EagerGcManager:
    """Trigger a full collection after every function exit (§3.2)."""

    name = "eager"

    def __init__(self, aggressive: bool = True) -> None:
        self.aggressive = aggressive
        self.gc_count = 0

    def on_invocation_end(self, instance: FunctionInstance, now: float) -> float:
        seconds = instance.runtime.full_gc(aggressive=self.aggressive)
        self.gc_count += 1
        return seconds

    def on_freeze(self, instance: FunctionInstance, now: float) -> float:
        return 0.0

    def on_eviction(self, instance: FunctionInstance, now: float) -> None:
        return None

    def step(self, now: float, platform: PlatformView) -> float:
        return 0.0


class SwapManager:
    """Swap out frozen instances' private pages under memory pressure."""

    name = "swap"

    def __init__(
        self,
        activation: ActivationController | None = None,
        freeze_timeout: float = 2.0,
    ) -> None:
        self.activation = activation or ActivationController()
        self.freeze_timeout = freeze_timeout
        self.swapped_instances = 0
        self.swapped_bytes = 0
        #: FILE_CLEAN pages released during swap-out never hit the swap
        #: device (they are re-readable); tracked separately from swapped.
        self.dropped_clean_bytes = 0

    def on_invocation_end(self, instance: FunctionInstance, now: float) -> float:
        return 0.0

    def on_freeze(self, instance: FunctionInstance, now: float) -> float:
        return 0.0

    def on_eviction(self, instance: FunctionInstance, now: float) -> None:
        self.activation.on_eviction(now)

    def step(self, now: float, platform: PlatformView) -> float:
        self.activation.advance(now)
        getter = getattr(platform, "frozen_capacity_bytes", None)
        capacity = getter() if getter is not None else platform.capacity_bytes
        if not self.activation.should_activate(platform.frozen_bytes(), capacity):
            return 0.0
        target = self.activation.target_bytes(capacity)
        cpu = 0.0
        # Oldest-frozen first: no semantics available to do better.
        candidates = sorted(
            (
                i
                for i in platform.frozen_instances()
                if i.frozen_for(now) >= self.freeze_timeout
                and not getattr(i, "swapped_this_freeze", False)
            ),
            key=lambda i: (i.frozen_since or 0.0, i.id),
        )
        for instance in candidates:
            if platform.frozen_bytes() <= target:
                break
            cpu += self.swap_out(instance)
        return cpu

    def swap_out(self, instance: FunctionInstance) -> float:
        """Push every private resident page of the instance to swap."""
        if instance.state is not InstanceState.FROZEN:
            raise RuntimeError("swap targets frozen instances only")
        space = instance.runtime.space
        moved = SwapOutResult()
        for mapping in list(space.mappings()):
            moved += space.swap_out_range(mapping.start, mapping.length)
        instance.swapped_this_freeze = True
        self.swapped_instances += 1
        self.swapped_bytes += moved.swapped * 4096
        self.dropped_clean_bytes += moved.dropped * 4096
        # Swap-out I/O is cheap CPU-wise; charge a nominal cost per page
        # released (swapped or dropped -- both are written/evicted work).
        return moved.total * 1e-6
