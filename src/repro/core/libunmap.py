"""The shared-library unmapping optimization (§4.6).

When a language runtime's libraries are mapped by only one frozen instance
(always on Lambda, sometimes on a quiet OpenWhisk node), their pages are
private and count toward USS.  Desiccant scans smaps for ranges that are
private, unmodified, and file-backed, then drops their pages; the file can
always be re-read, so the next touch simply refaults.
"""

from __future__ import annotations

from repro.mem.smaps import find_unmappable_library_ranges
from repro.mem.vmm import VirtualAddressSpace


def unmap_solo_libraries(space: VirtualAddressSpace) -> int:
    """Release private, clean, file-backed pages; returns bytes released."""
    released_pages = 0
    for entry in find_unmappable_library_ranges(space):
        released_pages += space.discard(entry.start, entry.size)
    return released_pages * 4096
