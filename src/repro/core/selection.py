"""Instance selection by estimated reclamation throughput (§4.3, §4.5.2).

Two principles: only instances frozen longer than a timeout are candidates
(they keep wasting memory), and among those Desiccant prefers the largest

    Throughput = (Mem_heap - Estimated_live_bytes) / Estimated_CPU_time

where ``Mem_heap`` is the instance's current in-heap resident memory (what
``pmap`` over the registered heap range reports) and the estimates come
from :class:`~repro.core.profiles.ProfileStore`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core.profiles import ProfileStore
from repro.faas.instance import FunctionInstance, InstanceState

#: Floor for the CPU-time estimate so a zero-cost profile cannot produce an
#: infinite throughput.
MIN_CPU_SECONDS = 1e-4


def estimated_throughput(
    heap_resident_bytes: int,
    estimated_live_bytes: float,
    estimated_cpu_seconds: float,
) -> float:
    """The §4.5.2 formula, in bytes per CPU-second (clamped at zero)."""
    reclaimable = max(0.0, heap_resident_bytes - estimated_live_bytes)
    return reclaimable / max(estimated_cpu_seconds, MIN_CPU_SECONDS)


def rank_candidates(
    instances: Iterable[FunctionInstance],
    profiles: ProfileStore,
    now: float,
    freeze_timeout: float = 2.0,
) -> List[Tuple[float, FunctionInstance]]:
    """Rank frozen instances by estimated throughput, best first.

    Filters: must be frozen past the timeout, and not already reclaimed
    during this freeze (a second pass would release nothing).
    """
    ranked: List[Tuple[float, FunctionInstance]] = []
    for instance in instances:
        if instance.state is not InstanceState.FROZEN:
            continue
        if instance.frozen_for(now) < freeze_timeout:
            continue
        if getattr(instance, "reclaimed_this_freeze", False):
            continue
        live, cpu = profiles.estimate(instance.id, instance.spec.name)
        throughput = estimated_throughput(
            instance.heap_resident_bytes(), live, cpu
        )
        ranked.append((throughput, instance))
    ranked.sort(key=lambda pair: (-pair[0], pair[1].id))
    return ranked
