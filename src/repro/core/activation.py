"""Desiccant's dynamic activation threshold (§4.2, §4.5.1).

Desiccant sleeps until the memory used by frozen instances crosses a
threshold fraction of the instance-cache capacity.  The threshold adapts:
an eviction means the platform is under real pressure, so it snaps down to
the predefined floor (60% by default) to release more memory; quiet periods
let it creep back up so Desiccant stops burning CPU when memory is ample.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ActivationController:
    """Hysteresis controller over the frozen-memory fraction."""

    #: Threshold Desiccant drops to when evictions happen (paper default).
    floor: float = 0.60
    #: Upper bound the threshold relaxes toward when memory is ample.
    ceiling: float = 0.90
    #: Threshold increase per second of eviction-free operation.
    relax_per_second: float = 0.002
    #: Reclaim until usage falls this far below the threshold (hysteresis).
    hysteresis: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.floor <= self.ceiling <= 1:
            raise ValueError("need 0 < floor <= ceiling <= 1")
        self.threshold = self.floor
        self._last_update = 0.0
        self.activations = 0
        self.evictions_seen = 0

    def on_eviction(self, now: float) -> None:
        """The platform evicted an instance: drop to the floor immediately."""
        self.threshold = self.floor
        self.evictions_seen += 1
        self._last_update = now

    def advance(self, now: float) -> None:
        """Relax the threshold for eviction-free time that has passed."""
        elapsed = max(0.0, now - self._last_update)
        self.threshold = min(self.ceiling, self.threshold + elapsed * self.relax_per_second)
        self._last_update = now

    def should_activate(self, frozen_bytes: int, capacity_bytes: int) -> bool:
        """True when frozen instances' memory crosses the threshold."""
        if capacity_bytes <= 0:
            return False
        active = frozen_bytes / capacity_bytes > self.threshold
        if active:
            self.activations += 1
        return active

    def target_bytes(self, capacity_bytes: int) -> int:
        """Reclaim down to this much frozen memory before going idle."""
        return int(capacity_bytes * max(0.0, self.threshold - self.hysteresis))
