"""Desiccant: the freeze-aware memory manager (§4).

* ``profiles``   -- per-instance / per-function reclamation profiles.
* ``activation`` -- the dynamic memory-pressure threshold (§4.5.1).
* ``selection``  -- estimated-reclamation-throughput ranking (§4.5.2).
* ``libunmap``   -- the shared-library unmapping optimization (§4.6).
* ``reclaimer``  -- one reclamation: runtime ``reclaim`` + libunmap +
  profile collection with share-weighted CPU accounting.
* ``desiccant``  -- the manager tying it all together as the platform's
  background sweeper (Figure 5).
* ``baselines``  -- the evaluation's comparison points: vanilla, eager GC,
  and OS swapping.
"""

from repro.core.activation import ActivationController
from repro.core.baselines import (
    EagerGcManager,
    MemoryManager,
    SwapManager,
    VanillaManager,
)
from repro.core.desiccant import Desiccant, DesiccantConfig
from repro.core.libunmap import unmap_solo_libraries
from repro.core.profiles import ProfileStore, ReclaimProfile
from repro.core.reclaimer import ReclaimReport, reclaim_instance
from repro.core.selection import estimated_throughput, rank_candidates

__all__ = [
    "ActivationController",
    "EagerGcManager",
    "MemoryManager",
    "SwapManager",
    "VanillaManager",
    "Desiccant",
    "DesiccantConfig",
    "unmap_solo_libraries",
    "ProfileStore",
    "ReclaimProfile",
    "ReclaimReport",
    "reclaim_instance",
    "estimated_throughput",
    "rank_candidates",
]
