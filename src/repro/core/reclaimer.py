"""One reclamation, end to end (Figure 6).

The platform tells the instance to ``reclaim``; the runtime runs its GC,
resize, and release phases and reports its memory profile (live bytes);
the platform computes the share-weighted CPU time (§4.5.2) and hands the
combined profile back to Desiccant's store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.libunmap import unmap_solo_libraries
from repro.core.profiles import ProfileStore, ReclaimProfile
from repro.faas.cgroup import weighted_cpu_seconds
from repro.faas.instance import FunctionInstance


@dataclass
class ReclaimReport:
    """Everything one reclamation produced, for callers and benches."""

    instance_id: int
    function: str
    released_bytes: int
    library_bytes: int
    live_bytes: int
    cpu_seconds: float
    wall_seconds: float
    uss_before: int
    uss_after: int


def reclaim_instance(
    instance: FunctionInstance,
    profiles: ProfileStore,
    cpu_share: float = 1.0,
    aggressive: bool = False,
    unmap_libraries: bool = True,
) -> ReclaimReport:
    """Reclaim one frozen instance and record its profile.

    ``cpu_share`` is the (idle) CPU fraction the platform grants the
    reclamation; wall time stretches accordingly while the accumulated CPU
    time stays the same.
    """
    if cpu_share <= 0:
        raise ValueError("cpu_share must be positive")
    uss_before = instance.uss()
    outcome = instance.reclaim(aggressive=aggressive)
    library_bytes = 0
    if unmap_libraries:
        library_bytes = unmap_solo_libraries(instance.runtime.space)
    instance.reclaimed_this_freeze = True

    wall_seconds = outcome.cpu_seconds / cpu_share
    cpu_seconds = weighted_cpu_seconds([(wall_seconds, cpu_share)])
    profile = ReclaimProfile(live_bytes=outcome.live_bytes, cpu_seconds=cpu_seconds)
    profiles.record(instance.id, instance.spec.name, profile)

    return ReclaimReport(
        instance_id=instance.id,
        function=instance.spec.name,
        released_bytes=outcome.released_bytes + library_bytes,
        library_bytes=library_bytes,
        live_bytes=outcome.live_bytes,
        cpu_seconds=cpu_seconds,
        wall_seconds=wall_seconds,
        uss_before=uss_before,
        uss_after=instance.uss(),
    )
