"""Reclamation profiles (§4.5.2).

After each successful reclamation the language runtime reports its in-heap
live bytes and the platform adds the share-weighted CPU time; Desiccant
stores both per instance.  Estimates average an instance's own history; a
new instance borrows the average of same-function instances, and failing
that the global average over all profiled instances.  Profiles die with
their instance to bound memory overhead.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.mem.layout import MIB

#: Keep at most this many samples per instance.
MAX_SAMPLES = 16

#: Priors used before any profile exists anywhere (conservative guesses).
PRIOR_LIVE_BYTES = 8 * MIB
PRIOR_CPU_SECONDS = 0.01


@dataclass(frozen=True)
class ReclaimProfile:
    """One reclamation's memory + CPU profile."""

    live_bytes: int
    cpu_seconds: float

    def __post_init__(self) -> None:
        if self.live_bytes < 0 or self.cpu_seconds < 0:
            raise ValueError("profile values must be non-negative")


class ProfileStore:
    """Per-instance profile history with function-level fallback."""

    def __init__(self) -> None:
        self._by_instance: Dict[int, Deque[ReclaimProfile]] = {}
        self._instance_function: Dict[int, str] = {}
        self._by_function: Dict[str, list] = defaultdict(list)
        #: Bumped on every mutation; estimates are pure functions of the
        #: store's state, so consumers may cache rankings keyed on this.
        self.version = 0

    def record(self, instance_id: int, function: str, profile: ReclaimProfile) -> None:
        """Store one profile for an instance."""
        history = self._by_instance.setdefault(instance_id, deque(maxlen=MAX_SAMPLES))
        history.append(profile)
        self._instance_function[instance_id] = function
        self._by_function[function].append(profile)
        if len(self._by_function[function]) > 8 * MAX_SAMPLES:
            self._by_function[function] = self._by_function[function][-4 * MAX_SAMPLES:]
        self.version += 1

    def drop_instance(self, instance_id: int) -> None:
        """Forget a destroyed instance's history (bounds overhead, §4.5.2).

        Function-level aggregates survive so future same-function instances
        keep a warm prior."""
        if instance_id in self._by_instance or instance_id in self._instance_function:
            self.version += 1
        self._by_instance.pop(instance_id, None)
        self._instance_function.pop(instance_id, None)

    def estimate(self, instance_id: int, function: str) -> Tuple[float, float]:
        """``(estimated_live_bytes, estimated_cpu_seconds)`` for an instance.

        Resolution order: own history -> same-function history -> global
        average -> fixed priors.
        """
        history = self._by_instance.get(instance_id)
        if history:
            return self._mean(history)
        same_function = self._by_function.get(function)
        if same_function:
            return self._mean(same_function)
        all_profiles = [p for ps in self._by_function.values() for p in ps]
        if all_profiles:
            return self._mean(all_profiles)
        return float(PRIOR_LIVE_BYTES), PRIOR_CPU_SECONDS

    def has_history(self, instance_id: int) -> bool:
        return bool(self._by_instance.get(instance_id))

    @staticmethod
    def _mean(profiles) -> Tuple[float, float]:
        n = len(profiles)
        live = sum(p.live_bytes for p in profiles) / n
        cpu = sum(p.cpu_seconds for p in profiles) / n
        return live, cpu
