"""Desiccant, the freeze-aware memory manager (§4).

Wired into the platform as a background sweeper (Figure 5): freezes and
evictions arrive as bus events via the platform's manager bridge, which
also drives :meth:`Desiccant.step` after every simulation event.  On each
step Desiccant checks the activation threshold against the frozen
instances' accumulated memory, and while over it, reclaims the
highest-estimated-throughput candidates using idle CPU; the bridge
publishes ``reclaim-start``/``reclaim-done`` events for any sweep that
did work.  Eviction stays the platform's business -- stateless instances
make racing reclamation and eviction harmless (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import fastpath
from repro.core.activation import ActivationController
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import ReclaimReport, reclaim_instance
from repro.core.selection import rank_candidates
from repro.faas.instance import FunctionInstance


@dataclass
class DesiccantConfig:
    """Tunables for the manager."""

    #: Minimum freeze age before an instance is a candidate (§4.3).  Short
    #: enough that instances refreezing every couple of seconds under high
    #: scale factors still get reclaimed between requests.
    freeze_timeout_seconds: float = 0.5
    #: Use the aggressive GC interface (§4.7 recommends not to).
    aggressive: bool = False
    #: Run the §4.6 shared-library unmap.
    unmap_libraries: bool = True
    #: Most instances reclaimed per activation step (bounds CPU bursts).
    max_reclaims_per_step: int = 8


class Desiccant:
    """Activation + selection + reclamation over a platform's instances."""

    def __init__(
        self,
        config: DesiccantConfig | None = None,
        activation: ActivationController | None = None,
        profiles: ProfileStore | None = None,
    ) -> None:
        self.name = "desiccant"
        self.config = config or DesiccantConfig()
        self.activation = activation or ActivationController()
        self.profiles = profiles or ProfileStore()
        self.reports: List[ReclaimReport] = []
        self.total_released_bytes = 0
        self.total_cpu_seconds = 0.0
        self._fastpath = fastpath.enabled()
        #: ``(fingerprint, ranked, next_eligible_at)``: the ranking is a
        #: pure function of the frozen set, the instances' memory state,
        #: and the profile store -- all carried in the fingerprint -- plus
        #: the clock, whose only effect is the freeze-timeout filter.  The
        #: cache therefore also expires at the instant the next too-young
        #: instance would become eligible.
        self._ranked_cache: Optional[Tuple[tuple, list, float]] = None

    # ---------------------------------------------------- platform hooks

    def on_invocation_end(self, instance: FunctionInstance, now: float) -> float:
        return 0.0

    def on_freeze(self, instance: FunctionInstance, now: float) -> float:
        return 0.0

    def on_eviction(self, instance: FunctionInstance, now: float) -> None:
        """Eviction = real pressure: drop the threshold, forget profiles."""
        self.activation.on_eviction(now)
        self.profiles.drop_instance(instance.id)

    def step(self, now: float, platform) -> float:
        """One background sweep; returns CPU seconds consumed."""
        self.activation.advance(now)
        capacity = self._frozen_capacity(platform)
        if not self.activation.should_activate(platform.frozen_bytes(), capacity):
            return 0.0
        target = self.activation.target_bytes(capacity)
        share = max(0.05, min(1.0, platform.idle_cpu_share()))
        cpu = 0.0
        for _ in range(self.config.max_reclaims_per_step):
            if platform.frozen_bytes() <= target:
                break
            ranked = self._ranked(platform, now)
            if not ranked:
                break
            _throughput, instance = ranked[0]
            cpu += self.reclaim(instance, cpu_share=share)
        return cpu

    def _ranked(self, platform, now: float) -> list:
        """Throughput-ranked candidates, cached between sweeps.

        Each reclaim records a profile (bumping the store's version) and
        dirties the instance's memory, so mid-burst the ranking rebuilds
        per reclaim exactly like the direct computation; between bursts
        the fingerprint holds and the activation check costs O(1)."""
        frozen = platform.frozen_instances()
        timeout = self.config.freeze_timeout_seconds
        if not (self._fastpath and hasattr(frozen, "version")):
            return rank_candidates(frozen, self.profiles, now, freeze_timeout=timeout)
        fingerprint = (frozen.version, frozen.state_version, self.profiles.version)
        cached = self._ranked_cache
        if cached is not None and cached[0] == fingerprint and now < cached[2]:
            return cached[1]
        ranked = rank_candidates(frozen, self.profiles, now, freeze_timeout=timeout)
        next_eligible_at = float("inf")
        for instance in frozen:
            if instance.frozen_since is None:
                continue
            eligible_at = instance.frozen_since + timeout
            if eligible_at > now and eligible_at < next_eligible_at:
                next_eligible_at = eligible_at
        self._ranked_cache = (fingerprint, ranked, next_eligible_at)
        return ranked

    @staticmethod
    def _frozen_capacity(platform) -> int:
        """Capacity the activation fraction is measured against: memory
        actually available to frozen instances when the platform exposes
        it, the raw cache size otherwise."""
        getter = getattr(platform, "frozen_capacity_bytes", None)
        if getter is not None:
            return getter()
        return platform.capacity_bytes

    # ------------------------------------------------------- direct use

    def reclaim(self, instance: FunctionInstance, cpu_share: float = 1.0) -> float:
        """Reclaim one instance now; returns CPU seconds."""
        report = reclaim_instance(
            instance,
            self.profiles,
            cpu_share=cpu_share,
            aggressive=self.config.aggressive,
            unmap_libraries=self.config.unmap_libraries,
        )
        self.reports.append(report)
        self.total_released_bytes += report.released_bytes
        self.total_cpu_seconds += report.cpu_seconds
        return report.cpu_seconds
