"""Scale-factor trace replay (§5.3).

Protocol copied from the paper: warm the system up for 60 seconds at a
fixed scale factor of 15, zero the meters, then replay 180 seconds at the
scale factor under test and report cold-boot rate, throughput, CPU
utilization, and tail latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.core.baselines import MemoryManager
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.sim import EventTraceSink
from repro.trace.generator import TraceGenerator
from repro.trace.stats import ReplayStats


@dataclass
class ReplayConfig:
    """Window and load parameters for one replay."""

    scale_factor: float = 15.0
    warmup_seconds: float = 60.0
    warmup_scale_factor: float = 15.0
    duration_seconds: float = 180.0
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    trace_seed: int = 42
    #: When set, stream a JSONL event trace of the *measurement* window
    #: (warmup excluded) to this path.  See docs/EVENT_TRACE.md.
    event_trace_path: Optional[str | Path] = None


@dataclass
class ReplayResult:
    """Stats plus the platform, for deeper inspection by benches."""

    stats: ReplayStats
    platform: FaasPlatform
    #: The trace sink, when ``event_trace_path`` was configured.
    trace: Optional[EventTraceSink] = None


def replay(
    manager_factory: Callable[[], MemoryManager],
    config: Optional[ReplayConfig] = None,
    generator: Optional[TraceGenerator] = None,
) -> ReplayResult:
    """Run warmup + measurement for one policy and scale factor."""
    config = config or ReplayConfig()
    generator = generator or TraceGenerator(seed=config.trace_seed)
    manager = manager_factory()
    platform = FaasPlatform(config=config.platform, manager=manager)

    warm = generator.arrivals(config.warmup_seconds, config.warmup_scale_factor)
    platform.submit([Request(arrival=t, definition=d) for t, d in warm])
    platform.run()

    platform.reset_metrics()
    sink = None
    if config.event_trace_path is not None:
        sink = EventTraceSink(platform.bus, path=config.event_trace_path)
    measure_start = max(platform.now, config.warmup_seconds)
    measured = generator.arrivals(config.duration_seconds, config.scale_factor)
    platform.submit(
        [Request(arrival=measure_start + t, definition=d) for t, d in measured]
    )
    outcomes = platform.run()
    if sink is not None:
        sink.detach()

    stats = ReplayStats.from_platform(
        platform,
        outcomes,
        duration_seconds=config.duration_seconds,
        policy=getattr(manager, "name", type(manager).__name__),
        scale_factor=config.scale_factor,
    )
    return ReplayResult(stats=stats, platform=platform, trace=sink)
