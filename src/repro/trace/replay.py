"""Scale-factor trace replay (§5.3).

Protocol copied from the paper: warm the system up for 60 seconds at a
fixed scale factor of 15, zero the meters, then replay 180 seconds at the
scale factor under test and report cold-boot rate, throughput, CPU
utilization, and tail latency.

:func:`replay` runs the protocol on a single platform.
:func:`cluster_replay` runs it on a multi-node cluster through
:class:`~repro.faas.cluster.ShardedClusterSession` -- optionally across
worker processes (``shards > 1``) -- and reports the same statistics plus
the merged canonical event trace and its SHA-256, which is byte-identical
for every shard count.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.baselines import MemoryManager
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.memo import cache as memo_cache
from repro.memo import toggle as memo_toggle
from repro.sim import EventTraceSink
from repro.trace.generator import TraceGenerator
from repro.trace.stats import ReplayStats, percentile


@dataclass(frozen=True)
class TraceWindow:
    """A ``[t_start, t_end) x nodes`` slice of a segmented trace archive.

    Passed to a replay config alongside ``archive_dir``, the window is
    range-read back from the finished archive -- touching only the
    segments it addresses -- and the result carries the slice's event
    count, digest, and the exact list of segments read (the I/O witness).
    """

    t_start: Optional[float] = None
    t_end: Optional[float] = None
    nodes: Optional[tuple[int, ...]] = None

    def read(self, archive_dir: str | Path) -> "WindowResult":
        from repro.sim.shard import sha256_lines
        from repro.trace.archive import ArchiveReader

        reader = ArchiveReader(archive_dir)
        events, sha = sha256_lines(
            reader.iter_window(
                t_start=self.t_start,
                t_end=self.t_end,
                nodes=self.nodes,
                verify=True,
            )
        )
        return WindowResult(
            events=events, sha256=sha, segments_read=list(reader.segments_read)
        )


@dataclass
class WindowResult:
    """What a :class:`TraceWindow` read back from the archive."""

    events: int
    sha256: str
    segments_read: List[str]


@dataclass
class ReplayConfig:
    """Window and load parameters for one replay."""

    scale_factor: float = 15.0
    warmup_seconds: float = 60.0
    warmup_scale_factor: float = 15.0
    duration_seconds: float = 180.0
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    trace_seed: int = 42
    #: When set, stream a JSONL event trace of the *measurement* window
    #: (warmup excluded) to this path.  See docs/EVENT_TRACE.md.
    event_trace_path: Optional[str | Path] = None
    #: When set, additionally roll the measurement trace into a segmented
    #: archive at this directory (docs/TRACE_ARCHIVE.md).
    archive_dir: Optional[str | Path] = None
    archive_bucket_seconds: float = 60.0
    #: Range-read this slice back from the archive after the run
    #: (requires ``archive_dir``).
    window: Optional[TraceWindow] = None
    #: Run the trace sink as a pure SHA-256 stream: no stored lines, no
    #: file, no archive -- the digest gate stays armed while the run
    #: measures emission speed alone.  Mutually exclusive with
    #: ``event_trace_path`` / ``archive_dir``.
    digest_only: bool = False


@dataclass
class ReplayResult:
    """Stats plus the platform, for deeper inspection by benches."""

    stats: ReplayStats
    platform: FaasPlatform
    #: The trace sink, when ``event_trace_path`` was configured.
    trace: Optional[EventTraceSink] = None
    #: Measurement-window event count / stream digest, filled for traced
    #: runs (``digest_only`` runs carry the digest here without a file).
    trace_events: int = 0
    trace_sha256: Optional[str] = None
    archive_path: Optional[Path] = None
    archive_events: int = 0
    archive_sha256: Optional[str] = None
    window: Optional[WindowResult] = None
    #: Effect-cache counters for the measurement window (memo runs only):
    #: hits/misses/evictions accumulated after the warmup drain, plus the
    #: live entry/byte footprint at run end.
    memo_stats: Optional[Dict[str, int]] = None


def replay(
    manager_factory: Callable[[], MemoryManager],
    config: Optional[ReplayConfig] = None,
    generator: Optional[TraceGenerator] = None,
) -> ReplayResult:
    """Run warmup + measurement for one policy and scale factor."""
    config = config or ReplayConfig()
    generator = generator or TraceGenerator(seed=config.trace_seed)
    memoizing = memo_toggle.enabled()
    if memoizing:
        # Leg hygiene: a run never inherits entries recorded by an
        # earlier replay in the same process.
        memo_cache.reset()
    manager = manager_factory()
    platform = FaasPlatform(config=config.platform, manager=manager)

    warm = generator.arrivals(config.warmup_seconds, config.warmup_scale_factor)
    platform.submit([Request(arrival=t, definition=d) for t, d in warm])
    platform.run()

    platform.reset_metrics()
    if memoizing:
        # The warmup boundary zeroes every platform meter; memo counters
        # follow the same convention (entries stay -- a warm cache *is*
        # the steady state the measurement window reports on).
        memo_cache.drain_stats()
    if config.window is not None and config.archive_dir is None:
        raise ValueError("window requires archive_dir")
    if config.digest_only and (
        config.event_trace_path is not None or config.archive_dir is not None
    ):
        raise ValueError(
            "digest_only replays neither store nor write the trace; drop "
            "event_trace_path/archive_dir"
        )
    writer = None
    if config.archive_dir is not None:
        from repro.trace.archive import ArchiveWriter

        writer = ArchiveWriter(
            config.archive_dir, bucket_seconds=config.archive_bucket_seconds
        )
    sink = None
    if config.digest_only:
        sink = EventTraceSink(platform.bus, digest_only=True)
    elif config.event_trace_path is not None or writer is not None:
        sink = EventTraceSink(
            platform.bus, path=config.event_trace_path, archive=writer
        )
    measure_start = max(platform.now, config.warmup_seconds)
    measured = generator.arrivals(config.duration_seconds, config.scale_factor)
    platform.submit(
        [Request(arrival=measure_start + t, definition=d) for t, d in measured]
    )
    outcomes = platform.run()
    archive_events = 0
    archive_sha256 = None
    if sink is not None:
        sink.detach()
    if writer is not None:
        # A single-platform sink sees records in canonical order, so the
        # writer's input-order digest is the composed archive digest.
        summary = writer.close(manifest=True)
        archive_events = summary["events"]
        archive_sha256 = summary["sha256"]
    window = (
        config.window.read(config.archive_dir)
        if config.window is not None
        else None
    )

    stats = ReplayStats.from_platform(
        platform,
        outcomes,
        duration_seconds=config.duration_seconds,
        policy=getattr(manager, "name", type(manager).__name__),
        scale_factor=config.scale_factor,
    )
    return ReplayResult(
        stats=stats,
        platform=platform,
        trace=sink,
        trace_events=sink.count if sink is not None else 0,
        trace_sha256=sink.sha256 if sink is not None else None,
        archive_path=(
            Path(config.archive_dir) if config.archive_dir is not None else None
        ),
        archive_events=archive_events,
        archive_sha256=archive_sha256,
        window=window,
        memo_stats=memo_cache.stats() if memoizing else None,
    )


# ----------------------------------------------------------------- cluster


@dataclass
class ClusterReplayConfig:
    """Window, load, and sharding parameters for one cluster replay."""

    nodes: int = 8
    scheduler: str = "warm-affinity"
    #: Worker processes to partition the nodes across (1 = the in-process
    #: serial twin, driven through the identical epoch protocol).
    shards: int = 1
    #: Simulated seconds per conservative synchronization epoch (the base
    #: grid cell of the adaptive horizons under the batched protocol).
    epoch_seconds: float = 5.0
    #: Shard wire protocol: ``"batched"`` (multi-epoch window grants,
    #: adaptive horizons, interned definitions, on-demand load digests)
    #: or ``"unbatched"`` (the PR 5 one-message-per-epoch comparison leg).
    protocol: str = "batched"
    #: Max epochs granted per pipe message under the batched protocol
    #: (deferred schedulers force an effective window of one).
    window_epochs: int = 32
    scale_factor: float = 15.0
    warmup_seconds: float = 60.0
    warmup_scale_factor: float = 15.0
    duration_seconds: float = 180.0
    #: Per-node platform config (deep-copied per node, seeds offset).
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    trace_seed: int = 42
    #: Collect the measurement window's canonical event trace (always on
    #: when ``event_trace_path`` is set), composed into one ``(t, node,
    #: seq)``-ordered stream whose SHA-256 the result carries -- the
    #: cross-shard equivalence witness.  Trace records never cross the
    #: coordination pipes: workers write node-canonical archive segments
    #: into a shared root (a temporary one if ``archive_dir`` is unset)
    #: and ship only per-segment footers; the coordinator composes once.
    trace: bool = False
    event_trace_path: Optional[str | Path] = None
    #: Keep the segmented archive at this shared directory: each shard
    #: worker writes its own nodes' segments and the coordinator
    #: finalizes from the shipped footers (docs/TRACE_ARCHIVE.md).
    archive_dir: Optional[str | Path] = None
    #: Simulated seconds per archive time bucket.  ``None`` sizes the
    #: buckets adaptively from the measurement window's arrival density
    #: (:func:`repro.trace.archive.adaptive_bucket_seconds`): sparse
    #: tails widen, dense traces keep the default width.
    archive_bucket_seconds: Optional[float] = None
    #: Range-read this slice back from the archive after the run
    #: (requires ``archive_dir``).
    window: Optional[TraceWindow] = None
    #: Stream per-node telemetry CSVs into this directory (flushed at
    #: every epoch barrier; identical bytes for every shard count).
    telemetry_dir: Optional[str | Path] = None
    telemetry_interval: float = 1.0
    #: Dump one cProfile per shard worker into this directory.
    profile_dir: Optional[str | Path] = None
    start_method: Optional[str] = None
    #: Force worker processes on/off (default: processes iff shards > 1).
    processes: Optional[bool] = None
    #: Capture checkpoints into this directory: ``warmup-<pos>.ckpt`` and
    #: ``measured-<pos>.ckpt`` at window barriers, plus a
    #: ``measure-start.ckpt`` at the warmup/measurement boundary (the one
    #: a forked what-if leg resumes from to skip the warmup prefix
    #: entirely).  See docs/CHECKPOINTS.md.
    checkpoint_dir: Optional[str | Path] = None
    #: Align barriers (and captures) to every N epochs.
    checkpoint_every: Optional[int] = None
    #: Restore this checkpoint and run only the remaining suffix.  The
    #: run's parameters must match the capturing run's
    #: (``checkpoint-config``) and the regenerated arrival log must hash
    #: to what the capture recorded (``checkpoint-arrivals``).
    resume_from: Optional[str | Path] = None
    #: With ``resume_from``: what-if divergence to apply at the barrier
    #: -- ``{"manager_factory": ..., "scheduler": ..., "reseed": ...}``
    #: (see :meth:`repro.faas.cluster.ShardedClusterSession.restore`).
    fork: Optional[Dict[str, object]] = None


@dataclass
class ClusterReplayResult:
    """Aggregated stats plus the merged-trace equivalence witness."""

    stats: ReplayStats
    per_node: Dict[int, dict]
    per_node_requests: List[int]
    trace_path: Optional[Path] = None
    trace_events: int = 0
    trace_sha256: Optional[str] = None
    archive_path: Optional[Path] = None
    archive_events: int = 0
    archive_sha256: Optional[str] = None
    window: Optional[WindowResult] = None
    epochs: int = 0
    events: int = 0
    #: Coordination-cost accounting (see docs/BENCHMARKS.md):
    #: barrier exchanges (windows + marks + finish), exact framed bytes
    #: through the worker pipes, coordinator wall clock, the slowest
    #: worker's kernel-busy wall, and their difference -- the wall time
    #: spent coordinating rather than simulating.
    round_trips: int = 0
    pipe_bytes: int = 0
    coordinator_wall_seconds: float = 0.0
    worker_busy_seconds: float = 0.0
    coordination_overhead: float = 0.0
    #: Checkpoints this run captured, in capture order.
    checkpoints: List[Path] = field(default_factory=list)
    #: Phase the run resumed into (``"warmup"``/``"measured"``), or
    #: ``None`` for a from-scratch run.
    resumed_phase: Optional[str] = None
    #: Simulated time the measurement window started at.
    measure_start: float = 0.0
    #: Effect-cache counters summed over shards for the measurement
    #: window (memo runs only; ``None`` with ``REPRO_MEMO`` off).
    memo_stats: Optional[Dict[str, int]] = None


def cluster_replay(
    manager_factory: Callable[[], MemoryManager],
    config: Optional[ClusterReplayConfig] = None,
    generator: Optional[TraceGenerator] = None,
) -> ClusterReplayResult:
    """Warmup + measurement on a (possibly process-sharded) cluster.

    Both phases run through the conservative epoch loop regardless of
    shard count, so the only variable between a ``shards=1`` and a
    ``shards=N`` run is how nodes were partitioned across kernels -- and
    the merged canonical trace digest is byte-identical across all of
    them (for the static schedulers; ``least-loaded-live`` routes from
    epoch-boundary digests and is its own deterministic policy).
    """
    from repro import procenv
    from repro.faas.cluster import ClusterConfig, ShardedClusterSession
    from repro.sim import checkpoint
    from repro.trace.archive import adaptive_bucket_seconds

    config = config or ClusterReplayConfig()
    generator = generator or TraceGenerator(seed=config.trace_seed)
    if memo_toggle.enabled():
        # Leg hygiene for the *coordinator's* cache: process workers
        # start cold via procenv.apply, but inline-pool hosts share this
        # process, and entries warmed by a previous leg in it would skew
        # this leg's counters (never its bytes -- entries are
        # content-addressed).
        memo_cache.reset()
    tracing = config.trace or config.event_trace_path is not None
    archiving = config.archive_dir is not None
    if config.window is not None and not archiving:
        raise ValueError("window requires archive_dir")
    if config.fork and config.resume_from is None:
        raise ValueError("fork requires resume_from")
    if config.checkpoint_every is not None and config.checkpoint_dir is None:
        raise ValueError("checkpoint_every requires checkpoint_dir")
    ckpt_dir = (
        Path(config.checkpoint_dir) if config.checkpoint_dir is not None else None
    )
    # Read the header (no pickle executed) up front: a resumed traced run
    # must rewrite the *capturing* run's archive root, whose path the
    # capture recorded in its meta.
    resume_meta: Optional[Dict[str, object]] = None
    if config.resume_from is not None:
        resume_meta = checkpoint.read_header(config.resume_from)["meta"]
    # Both phases' arrivals are drawn up front (same generator call order
    # as always) so the archive bucket width can be sized from the
    # measurement window's density before any worker starts -- a pure
    # function of the submission log, hence shard-count-invariant.
    warm = generator.arrivals(config.warmup_seconds, config.warmup_scale_factor)
    measured_offsets = generator.arrivals(
        config.duration_seconds, config.scale_factor
    )
    bucket_seconds = (
        config.archive_bucket_seconds
        if config.archive_bucket_seconds is not None
        else adaptive_bucket_seconds([t for t, _ in measured_offsets])
    )
    # Out-of-pipe traces: every traced run routes through a segmented
    # archive root shared by all workers (a temporary root when only the
    # flat trace was asked for); no trace record ever crosses the
    # coordination pipes.
    ephemeral_archive = False
    if archiving:
        archive_root: Optional[Path] = Path(config.archive_dir)
    elif tracing:
        if resume_meta is not None and resume_meta.get("archive_root"):
            # Rewrite the capturing run's root: the restored hosts'
            # open segments and shipped footers all point into it.
            archive_root = Path(str(resume_meta["archive_root"]))
        elif ckpt_dir is not None:
            # Pin the root next to the checkpoints so a later resume
            # still finds the segments closed before its barrier.
            archive_root = ckpt_dir / "archive"
        else:
            archive_root = Path(tempfile.mkdtemp(prefix="repro-shard-archive-"))
            ephemeral_archive = True
    else:
        archive_root = None
    cluster_config = ClusterConfig(
        nodes=config.nodes,
        scheduler=config.scheduler,
        node_config=config.platform,
    )
    session = ShardedClusterSession(
        cluster_config,
        manager_factory,
        shards=config.shards,
        epoch_seconds=config.epoch_seconds,
        processes=config.processes,
        protocol=config.protocol,
        window_epochs=config.window_epochs,
        archive_dir=str(archive_root) if archive_root is not None else None,
        archive_bucket_seconds=bucket_seconds,
        telemetry_dir=(
            str(config.telemetry_dir) if config.telemetry_dir is not None else None
        ),
        telemetry_interval=config.telemetry_interval,
        profile_dir=(
            str(config.profile_dir) if config.profile_dir is not None else None
        ),
        start_method=config.start_method,
    )
    checkpoints: List[Path] = []

    def make_barrier(phase_name: str, digest: str, extra: Dict[str, object]):
        if ckpt_dir is None:
            return None

        def on_barrier(s: "ShardedClusterSession", index: int, pos: int) -> None:
            path = ckpt_dir / f"{phase_name}-{pos:06d}.ckpt"
            s.capture(
                path,
                index,
                pos,
                meta={
                    "phase": phase_name,
                    "arrivals_sha256": digest,
                    "archive_root": (
                        str(archive_root) if archive_root is not None else None
                    ),
                    **extra,
                },
            )
            checkpoints.append(path)

        return on_barrier

    def verify_arrivals(digest: str) -> None:
        recorded = resume_meta.get("arrivals_sha256")
        if recorded is not None and recorded != digest:
            raise checkpoint.CheckpointError(
                "checkpoint-arrivals",
                f"checkpoint {config.resume_from}",
                "the regenerated arrival log is not the one the capture "
                "recorded (trace_seed/scale/duration mismatch)",
            )

    resumed_phase: Optional[str] = None
    coordinator_started = procenv.wall_clock()
    try:
        start_index = start_pos = 0
        if config.resume_from is not None:
            cursor = session.restore(config.resume_from, fork=config.fork)
            resume_meta = cursor["meta"]
            resumed_phase = str(resume_meta.get("phase", "measured"))
            start_index, start_pos = cursor["index"], cursor["pos"]
        if resumed_phase in (None, "warmup"):
            warm_digest = checkpoint.arrivals_digest(warm)
            if resumed_phase == "warmup":
                verify_arrivals(warm_digest)
            session.run_phase(
                warm,
                start=0.0,
                end=config.warmup_seconds,
                start_index=start_index,
                start_pos=start_pos,
                checkpoint_every=config.checkpoint_every,
                on_barrier=make_barrier("warmup", warm_digest, {}),
            )
            # Identical for every shard count: the max shard clock is the
            # global last-event time of the (deterministic) warmup drain.
            measure_start = max(session.clock, config.warmup_seconds)
            session.mark("reset-metrics")
            if archive_root is not None:
                session.mark("start-trace")
            start_index = start_pos = 0
            fresh_measurement = True
        else:
            measure_start = float(resume_meta["measure_start"])
            fresh_measurement = False
        measured = [(measure_start + t, d) for t, d in measured_offsets]
        measured_digest = checkpoint.arrivals_digest(measured)
        measured_meta = {"measure_start": measure_start}
        if not fresh_measurement:
            verify_arrivals(measured_digest)
        measured_barrier = make_barrier("measured", measured_digest, measured_meta)
        if ckpt_dir is not None and fresh_measurement:
            # The warmup/measurement boundary: the checkpoint a forked
            # what-if leg resumes from to skip the warmup prefix.
            path = ckpt_dir / "measure-start.ckpt"
            session.capture(
                path,
                0,
                0,
                meta={
                    "phase": "measured",
                    "arrivals_sha256": measured_digest,
                    "archive_root": (
                        str(archive_root) if archive_root is not None else None
                    ),
                    **measured_meta,
                },
            )
            checkpoints.append(path)
        session.run_phase(
            measured,
            start=measure_start,
            end=measure_start + config.duration_seconds,
            start_index=start_index,
            start_pos=start_pos,
            checkpoint_every=config.checkpoint_every,
            on_barrier=measured_barrier,
        )
        nodes = session.finish()
        memo_stats = session.memo_stats
        per_node_requests = list(session.router.assigned)
        epochs, events = session.epochs, session.events
        round_trips = session.round_trips
        pipe_bytes = session.pipe_bytes
        worker_busy = session.worker_busy_seconds
        footers = session.archive_footers
    finally:
        session.close()
    coordinator_wall = procenv.wall_clock() - coordinator_started
    trace_path = (
        Path(config.event_trace_path)
        if config.event_trace_path is not None
        else None
    )
    trace_events = 0
    trace_sha256 = None
    archive_events = 0
    archive_sha256 = None
    window = None
    if archive_root is not None:
        from repro.check import check_segment_manifest
        from repro.trace.archive import finalize_archive

        try:
            # Manifest-driven compose: the workers' shipped footers stand
            # in for the per-segment verify pre-pass, and the flat JSONL
            # twin (when asked for) is written during the same single
            # streaming pass.
            composed_events, composed_sha = finalize_archive(
                archive_root, footers=footers, event_trace_path=trace_path
            )
            check_segment_manifest(footers, composed_events)
            if tracing:
                trace_events, trace_sha256 = composed_events, composed_sha
            if archiving:
                archive_events, archive_sha256 = composed_events, composed_sha
            if config.window is not None:
                window = config.window.read(archive_root)
        finally:
            if ephemeral_archive:
                shutil.rmtree(archive_root, ignore_errors=True)

    outcomes = [pair for node in sorted(nodes) for pair in nodes[node]["outcomes"]]
    latencies = sorted(latency for latency, _ in outcomes) or [0.0]
    completed = len(outcomes)
    cold = sum(cold_boots for _, cold_boots in outcomes)
    busy: Dict[str, float] = {}
    for info in nodes.values():
        for category, seconds in info["cpu_busy"].items():
            busy[category] = busy.get(category, 0.0) + seconds
    total_busy = sum(busy.values())
    cluster_cpus = config.platform.cpus * config.nodes
    name_factory = manager_factory
    if config.fork and config.fork.get("manager_factory") is not None:
        name_factory = config.fork["manager_factory"]
    manager = name_factory()
    stats = ReplayStats(
        policy=getattr(manager, "name", type(manager).__name__),
        scale_factor=config.scale_factor,
        duration_seconds=config.duration_seconds,
        completed=completed,
        cold_boots=cold,
        evictions=sum(info["evictions"] for info in nodes.values()),
        cold_boot_rate=cold / completed if completed else 0.0,
        throughput_rps=completed / config.duration_seconds,
        cpu_utilization=min(
            1.0, total_busy / (config.duration_seconds * cluster_cpus)
        ),
        reclaim_cpu_fraction=busy.get("reclaim", 0.0) / total_busy if total_busy else 0.0,
        eager_gc_cpu_fraction=busy.get("eager_gc", 0.0) / total_busy if total_busy else 0.0,
        p50_latency=percentile(latencies, 50),
        p90_latency=percentile(latencies, 90),
        p95_latency=percentile(latencies, 95),
        p99_latency=percentile(latencies, 99),
    )
    return ClusterReplayResult(
        stats=stats,
        per_node=nodes,
        per_node_requests=per_node_requests,
        trace_path=trace_path,
        trace_events=trace_events,
        trace_sha256=trace_sha256,
        archive_path=(
            Path(config.archive_dir) if config.archive_dir is not None else None
        ),
        archive_events=archive_events,
        archive_sha256=archive_sha256,
        window=window,
        epochs=epochs,
        events=events,
        round_trips=round_trips,
        pipe_bytes=pipe_bytes,
        coordinator_wall_seconds=coordinator_wall,
        worker_busy_seconds=worker_busy,
        coordination_overhead=max(0.0, coordinator_wall - worker_busy),
        checkpoints=checkpoints,
        resumed_phase=resumed_phase,
        measure_start=measure_start,
        memo_stats=memo_stats,
    )
