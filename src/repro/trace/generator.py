"""Synthetic Azure-style arrival generator.

Shapes taken from the Azure Functions 2019 characterization (Shahrad et
al., which the paper replays): function popularity is heavy-tailed (a few
functions receive most invocations), triggers split between timers
(near-periodic arrivals) and events/HTTP (Poisson, sometimes bursty).

The generator deterministically assigns each Table 1 definition an arrival
process; a *scale factor* divides all inter-arrival times (§5.3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.workloads.model import FunctionDefinition
from repro.workloads.registry import all_definitions

_PATTERNS = ("poisson", "periodic", "bursty")


@dataclass(frozen=True)
class FunctionArrivalSpec:
    """One function's arrival process in the synthetic trace."""

    definition: FunctionDefinition
    pattern: str  # "poisson" | "periodic" | "bursty"
    mean_interarrival: float  # seconds, before scaling

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.mean_interarrival <= 0:
            raise ValueError("mean inter-arrival must be positive")


class TraceGenerator:
    """Deterministic synthetic trace over the Table 1 suite."""

    def __init__(
        self,
        definitions: Sequence[FunctionDefinition] | None = None,
        seed: int = 42,
    ) -> None:
        self.definitions = tuple(definitions or all_definitions())
        self.seed = seed
        self.specs = self._assign_specs()

    def _assign_specs(self) -> List[FunctionArrivalSpec]:
        """Give each function a pattern and a heavy-tailed base rate."""
        rng = random.Random(self.seed)
        ranked = sorted(
            self.definitions, key=lambda d: d.total_exec_seconds
        )
        specs = []
        for rank, definition in enumerate(ranked):
            # Zipf-ish popularity: rank 0 is hot (~4 s mean IAT), the tail
            # is cold (minutes) -- matching the Azure skew.
            mean_iat = 4.0 * (rank + 1) ** 1.1
            mean_iat *= 0.7 + 0.6 * rng.random()
            pattern = _PATTERNS[rank % len(_PATTERNS)]
            specs.append(
                FunctionArrivalSpec(
                    definition=definition,
                    pattern=pattern,
                    mean_interarrival=mean_iat,
                )
            )
        return specs

    def arrivals(
        self, horizon_seconds: float, scale_factor: float = 1.0
    ) -> List[Tuple[float, FunctionDefinition]]:
        """All (time, definition) arrivals in ``[0, horizon)``, sorted.

        ``scale_factor`` divides inter-arrival times, increasing load.
        """
        if horizon_seconds <= 0:
            raise ValueError("horizon must be positive")
        if scale_factor <= 0:
            raise ValueError("scale factor must be positive")
        events: List[Tuple[float, FunctionDefinition]] = []
        for index, spec in enumerate(self.specs):
            rng = random.Random((self.seed << 8) ^ index)
            events.extend(
                (t, spec.definition)
                for t in self._one_process(spec, horizon_seconds, scale_factor, rng)
            )
        events.sort(key=lambda pair: pair[0])
        return events

    def _one_process(
        self,
        spec: FunctionArrivalSpec,
        horizon: float,
        scale: float,
        rng: random.Random,
    ) -> List[float]:
        mean = spec.mean_interarrival / scale
        times: List[float] = []
        t = rng.random() * mean  # random phase
        if spec.pattern == "poisson":
            while t < horizon:
                times.append(t)
                t += rng.expovariate(1.0 / mean)
        elif spec.pattern == "periodic":
            while t < horizon:
                times.append(t)
                t += mean * (0.95 + 0.1 * rng.random())
        else:  # bursty: on/off Poisson with 4x rate during bursts
            burst = False
            next_toggle = t + rng.expovariate(1.0 / (10 * mean))
            while t < horizon:
                if burst:
                    times.append(t)
                    t += rng.expovariate(4.0 / mean)
                else:
                    t += rng.expovariate(1.0 / (2 * mean))
                    if t < horizon:
                        times.append(t)
                if t >= next_toggle:
                    burst = not burst
                    next_toggle = t + rng.expovariate(1.0 / (10 * mean))
        return times
