"""Replay metrics: the quantities Figures 9 and 10 plot."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.faas.platform import FaasPlatform, RequestOutcome


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100])."""
    if not values:
        raise ValueError("no values")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile {p} out of range")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    rank = max(1, int(len(ordered) * p / 100.0 + 0.9999999))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class ReplayStats:
    """Summary of one measured replay window."""

    policy: str
    scale_factor: float
    duration_seconds: float
    completed: int
    cold_boots: int
    evictions: int
    cold_boot_rate: float  # cold boots per request
    throughput_rps: float
    cpu_utilization: float  # [0, 1]
    reclaim_cpu_fraction: float  # share of busy CPU spent reclaiming
    eager_gc_cpu_fraction: float
    p50_latency: float
    p90_latency: float
    p95_latency: float
    p99_latency: float

    @classmethod
    def from_platform(
        cls,
        platform: FaasPlatform,
        outcomes: List[RequestOutcome],
        duration_seconds: float,
        policy: str,
        scale_factor: float,
    ) -> "ReplayStats":
        """Summarize one measured window from the platform's meters."""
        latencies = [o.latency for o in outcomes] or [0.0]
        completed = len(outcomes)
        cold = sum(o.cold_boots for o in outcomes)
        return cls(
            policy=policy,
            scale_factor=scale_factor,
            duration_seconds=duration_seconds,
            completed=completed,
            cold_boots=cold,
            evictions=platform.evictions,
            cold_boot_rate=cold / completed if completed else 0.0,
            throughput_rps=completed / duration_seconds,
            cpu_utilization=platform.cpu.utilization(duration_seconds),
            reclaim_cpu_fraction=platform.cpu.category_fraction("reclaim"),
            eager_gc_cpu_fraction=platform.cpu.category_fraction("eager_gc"),
            p50_latency=percentile(latencies, 50),
            p90_latency=percentile(latencies, 90),
            p95_latency=percentile(latencies, 95),
            p99_latency=percentile(latencies, 99),
        )
