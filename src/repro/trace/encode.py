"""Compiled trace-line encoders: the event-emission fast path.

Every digest gate in the repo rests on one byte format --
``json.dumps(record, sort_keys=False, separators=(",", ":"))`` over the
record dict :class:`~repro.sim.trace.EventTraceSink` builds per event.
That generic path pays, per event, a dict construction, a ``sorted()``
over the payload keys, an ``isinstance`` sweep, and the full generic
``json`` encoder machinery -- even though a simulation emits events from
a tiny, fixed set of shapes: the ``(kind, payload key-set)`` pairs are
decided by the emitting call sites and never change mid-run.

This module compiles one :class:`LineEncoder` per ``(kind, key-tuple)``
shape, resolving everything shape-dependent exactly once:

* the canonical key order (``seq``, ``t``, ``node``, ``kind``, then the
  payload keys sorted), baked into a per-key plan;
* the literal JSON fragments between values (``,"cpu_seconds":`` ...),
  interned as ready-to-concatenate strings;
* which keys are normalization slots (``request_id`` / ``instance_id``
  dense first-appearance remap, shared with the sink's id maps).

Steady-state emission is then a dict lookup, one string append per slot,
and one ``"".join`` -- no dict building, no sorting, no generic encoder.

Byte-identity contract
----------------------
The compiled output must be *byte-identical* to the generic encoder's,
which pins three sub-contracts:

* **strings** are escaped by ``json.encoder.encode_basestring_ascii`` --
  literally the same (C-accelerated) function ``json.dumps`` uses with
  the default ``ensure_ascii=True``;
* **floats** go through :func:`format_float`: CPython's encoder emits
  ``repr(value)`` for every finite float and the spellings ``NaN`` /
  ``Infinity`` / ``-Infinity`` for the non-finite ones, so a guarded
  ``repr`` reproduces it exactly (property-pinned in
  ``tests/trace/test_encode.py``, including ``-0.0``);
* **ints / bools / None** map to ``repr`` / ``true`` / ``false`` /
  ``null``; scalar *subclasses* (the generic path serializes them too)
  fall back to ``json.dumps`` on the single value, which byte-matches
  what the value would produce embedded in a record.

The generic encoder itself lives here as :func:`encode_line_generic` --
the differential reference twin, same pattern as ``LinearEventBus`` and
``mem/reference.py``.  It is the only sanctioned ``json.dumps`` on the
event hot path: the determinism lint bans the call in ``sim/trace.py``
so emission cannot silently bypass the compiled/reference pairing.

The active mode is read from ``REPRO_TRACE_ENCODER`` (unset/``fast`` =
compiled, ``generic`` = reference) the first time :func:`mode` is
called; :func:`set_mode` and :func:`override` change it afterwards.
Sinks snapshot the mode at construction, so toggling mid-simulation
never mixes encoders within one run -- and :mod:`repro.procenv` ships
the live value to shard workers.
"""

from __future__ import annotations

import json
import math
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "ID_KEYS",
    "SCALARS",
    "EncoderTable",
    "LineEncoder",
    "compile_shape",
    "encode_line_generic",
    "format_float",
    "mode",
    "set_mode",
    "override",
    "resolve",
]

#: data keys holding process-global ids that must be normalized to dense
#: first-appearance indexes (the sink owns the actual maps).
ID_KEYS = ("request_id", "instance_id")

#: The only ``Event.data`` value types that are serialized; anything else
#: (live object references a handler might need) is dropped.
SCALARS = (str, int, float, bool, type(None))

#: The exact string-escaping function ``json.dumps`` uses with the
#: default ``ensure_ascii=True`` (C-accelerated when available).
_escape = json.encoder.encode_basestring_ascii

_INF = math.inf


def _fsrc(segment: str) -> str:
    """Escape a literal fragment for embedding in generated f-string source.

    Backslashes first (JSON escapes like ``\\n`` must survive the source
    round-trip), then the ``'`` delimiter, then brace doubling so JSON's
    own braces are not read as interpolation fields.
    """
    return (
        segment.replace("\\", "\\\\")
        .replace("'", "\\'")
        .replace("{", "{{")
        .replace("}", "}}")
    )


def format_float(value: float) -> str:
    """``json.dumps`` output for one float, without the encoder machinery.

    CPython's encoder formats every finite float with ``repr`` and spells
    the non-finite values ``NaN`` / ``Infinity`` / ``-Infinity`` (the
    default ``allow_nan=True``).  Guarding the three specials first makes
    a bare ``repr`` byte-exact for everything else, ``-0.0`` included.
    """
    if value != value:
        return "NaN"
    if value == _INF:
        return "Infinity"
    if value == -_INF:
        return "-Infinity"
    return repr(value)


# ------------------------------------------------------------------- mode

_MODES = ("fast", "generic")

_mode: Optional[str] = None


def mode() -> str:
    """The active encoder mode (defaults to ``fast``)."""
    global _mode
    if _mode is None:
        value = os.environ.get("REPRO_TRACE_ENCODER", "fast") or "fast"
        _mode = value if value in _MODES else "fast"
    return _mode


def set_mode(value: str) -> None:
    """Force the mode, overriding the environment."""
    if value not in _MODES:
        raise ValueError(f"unknown encoder mode {value!r} (pick from {_MODES})")
    global _mode
    _mode = value


@contextmanager
def override(value: str) -> Iterator[None]:
    """Temporarily force the mode (bench legs pin one per spec)."""
    previous = mode()
    set_mode(value)
    try:
        yield
    finally:
        set_mode(previous)


def resolve(value: Optional[str]) -> str:
    """A constructor-argument mode (``None`` = the process default)."""
    if value is None:
        return mode()
    if value not in _MODES:
        raise ValueError(f"unknown encoder mode {value!r} (pick from {_MODES})")
    return value


# --------------------------------------------------------------- encoders

#: Sentinel a generated encoder assigns when a slot's value turns out to
#: be non-scalar (``None`` is a real value, so it cannot mark dropping).
_DROP = object()


def _make_cache_escape(cache: Dict[str, str]):
    """Miss path of a fused encoder's per-kind string-escape cache.

    Trace strings repeat heavily (function names, reasons), so fused
    encoders remember ``value -> escaped`` per kind; the cap keeps a
    pathological stream of distinct strings from growing it unboundedly
    (past it, every miss just escapes directly).
    """

    def cache_escape(value, _e=_escape, _cache=cache):
        escaped = _e(value)
        if len(_cache) < 1024:
            _cache[value] = escaped
        return escaped

    return cache_escape


def _encode_fallback(value: object) -> str:
    """Emit one scalar *subclass* exactly like the generic path.

    The generic encoder serializes scalar subclasses through
    ``json.dumps`` (rounding float subclasses first); a standalone dump
    of the single value byte-matches what it produces embedded in a
    record, so the compiled path funnels the rare case here.
    """
    if isinstance(value, float):
        value = round(value, 9)
    return json.dumps(value)


def _compile_polymorphic(kind: str, keys: Tuple[str, ...]):
    """The per-value type-dispatching encoder for one shape.

    Handles every scalar type, scalar subclasses, non-scalar drops, and
    non-finite floats.  :func:`compile_shape` layers the type-specialized
    fused encoder on top and falls back here on any guard miss.
    """
    # ``%`` in baked literals must not read as a format directive; the
    # header keeps its intentional %d/%r/%s placeholders.
    kind_lit = _escape(kind).replace("%", "%%")
    head_finite = '{"seq":%d,"t":%r,"node":%d,"kind":' + kind_lit
    head_any = '{"seq":%d,"t":%s,"node":%d,"kind":' + kind_lit
    src = [
        "def encode(seq, t, node, data, id_maps,",
        "           _e=_e, _ff=_ff, _fb=_fb, _sc=_sc, _drop=_drop,",
        "           _round=round, _isinst=isinstance, _inf=_inf,",
        "           _float=float, _str=str, _int=int, _bool=bool):",
        "    if -_inf < t < _inf:",
        f"        line = {head_finite!r} % (seq, t, node)",
        "    else:",
        f"        line = {head_any!r} % (seq, _ff(t), node)",
    ]
    for key in sorted(keys):
        frag = "," + _escape(key) + ":"
        frag_int = frag.replace("%", "%%") + "%d"
        frag_repr = frag.replace("%", "%%") + "%r"
        src.append(f"    v = data[{key!r}]")
        src.append("    c = v.__class__")
        if key in ID_KEYS:
            # Normalization slot: scalar filter + float rounding first
            # (the map is keyed by the *serialized* value, matching the
            # generic path), then the dense first-appearance remap.
            src += [
                "    if c is _str or c is _int or c is _bool or v is None:",
                "        pass",
                "    elif c is _float:",
                "        v = _round(v, 9)",
                "    elif _isinst(v, _sc):",
                "        if _isinst(v, _float):",
                "            v = _round(v, 9)",
                "    else:",
                "        v = _drop",
                "    if v is not _drop:",
                f"        m = id_maps[{key!r}]",
                f"        line += {frag_int!r} % m.setdefault(v, len(m) + 1)",
            ]
        else:
            src += [
                "    if c is _float:",
                "        v = _round(v, 9)",
                "        if -_inf < v < _inf:",
                f"            line += {frag_repr!r} % v",
                "        else:",
                f"            line += {frag!r} + _ff(v)",
                "    elif c is _str:",
                f"        line += {frag!r} + _e(v)",
                "    elif c is _int:",
                f"        line += {frag_int!r} % v",
                "    elif c is _bool:",
                f"        line += {frag + 'true'!r} if v else {frag + 'false'!r}",
                "    elif v is None:",
                f"        line += {frag + 'null'!r}",
                "    elif _isinst(v, _sc):",
                f"        line += {frag!r} + _fb(v)",
            ]
    src.append("    return line + '}'")
    namespace = {
        "_e": _escape,
        "_ff": format_float,
        "_fb": _encode_fallback,
        "_sc": SCALARS,
        "_drop": _DROP,
        "_inf": _INF,
    }
    exec("\n".join(src), namespace)  # noqa: S102 -- shape-literal codegen
    return namespace["encode"]


def compile_shape(
    kind: str,
    keys: Tuple[str, ...],
    sample: Optional[Mapping[str, object]] = None,
    fallback=None,
):
    """Generate the encode function for one ``(kind, key-tuple)`` shape.

    ``exec``-based codegen (the ``namedtuple`` technique): every literal
    JSON fragment is baked into the function's constants, every payload
    key becomes straight-line code with no per-key loop, no plan tuple,
    and no method dispatch left at emission time.

    With a ``sample`` payload whose values are all *exact* scalar
    classes (the overwhelmingly common case: each emitting call site
    builds its dict with fixed types), the generated function is
    additionally **type-specialized**: one guard expression re-checks
    every value's class (plus finiteness for floats), and on a hit the
    whole line is one fused C-level ``%`` format -- finite floats as
    ``%r`` (exactly the ``json.dumps`` spelling), ints as ``%d``,
    strings through the shared escaper.  Any guard miss (a type changed
    mid-run, a non-finite float, a subclass) falls back to the
    polymorphic twin, which handles everything; so specialization is
    purely a speed bet, never a semantics bet.

    With a ``fallback`` the generated function *also* pins the payload
    key-set: the prelude's ``data[key]`` lookups catch missing keys and
    a ``len(data)`` guard catches extra ones, and either miss routes the
    event to ``fallback(seq, t, node, data, id_maps)`` -- same-shape
    value oddities still take the shape's own polymorphic twin.  That
    key-set guard is what lets a sink key its hot dispatch by ``kind``
    alone (no per-event shape tuple): the fallback re-dispatches by the
    full shape, so a kind re-emitted with a different key-set stays
    byte-correct, just slower.
    """
    poly = _compile_polymorphic(kind, keys)
    ordered = sorted(keys)
    if sample is None or any(
        value.__class__ not in (str, int, float, bool, type(None))
        for value in sample.values()
    ):
        if fallback is None:
            return poly
        # Shape-guarded polymorphic wrapper: membership checks pin the
        # key-set, the poly twin handles the (unspecializable) values.
        checks = [f"len(data) == {len(ordered)}"]
        checks += [f"{key!r} in data" for key in ordered]
        src = [
            "def encode(seq, t, node, data, id_maps, _poly=_poly, _fb=_fb):",
            "    if (" + "\n            and ".join(checks) + "):",
            "        return _poly(seq, t, node, data, id_maps)",
            "    return _fb(seq, t, node, data, id_maps)",
        ]
        namespace = {"_poly": poly, "_fb": fallback}
        exec("\n".join(src), namespace)  # noqa: S102 -- shape-literal codegen
        return namespace["encode"]
    guards = ["-_inf < t < _inf"]
    # The hit line is a generated *f-string*: unlike ``%`` formatting,
    # which re-parses its format string on every call, the interpolation
    # plan is compiled once into the encoder's bytecode.  Literal JSON
    # fragments are source-escaped (braces doubled, quotes/backslashes
    # escaped); interpolation slots only ever reference local variables,
    # trusted helper bindings, and the fixed ID_KEYS literals.
    pieces = ['{{"seq":{seq},"t":{t!r},"node":{node},"kind":', _fsrc(_escape(kind))]
    prelude = []
    for index, key in enumerate(sorted(keys)):
        var = f"v{index}"
        prelude.append(f"    {var} = data[{key!r}]")
        cls = sample[key].__class__
        frag = _fsrc("," + _escape(key) + ":")
        if key in ID_KEYS:
            # The id map is keyed by the serialized value (floats
            # rounded first), so the fused remap matches the generic
            # path's normalize() exactly.
            if cls is float:
                guards.append(f"{var}.__class__ is _float")
                guards.append(f"-_inf < {var} < _inf")
                slot = f"_round({var}, 9)"
            elif cls is type(None):
                guards.append(f"{var} is None")
                slot = var
            else:
                guards.append(
                    f"{var}.__class__ is _{cls.__name__}"
                )
                slot = var
            # Dense indexes start at 1, so ``get() or setdefault()`` is
            # sound and skips the len() on the (dominant) hit path.
            mvar = f"m{index}"
            pieces.append(
                frag + "{" + f'({mvar} := id_maps["{key}"]).get({slot})'
                f" or {mvar}.setdefault({slot}, len({mvar}) + 1)" + "}"
            )
        elif cls is float:
            guards.append(f"{var}.__class__ is _float")
            guards.append(f"-_inf < {var} < _inf")
            pieces.append(frag + "{_round(" + var + ", 9)!r}")
        elif cls is str:
            guards.append(f"{var}.__class__ is _str")
            pieces.append(frag + "{_eg(" + var + ") or _ce(" + var + ")}")
        elif cls is bool:
            guards.append(f"{var}.__class__ is _bool")
            pieces.append(frag + '{"true" if ' + var + ' else "false"}')
        elif cls is int:
            guards.append(f"{var}.__class__ is _int")
            pieces.append(frag + "{" + var + "}")
        else:  # NoneType: bake the literal, no interpolation slot
            guards.append(f"{var} is None")
            pieces.append(frag + "null")
    pieces.append("}}")
    hit = "        return f'" + "".join(pieces) + "'"
    if fallback is None:
        body = [
            *prelude,
            "    if (" + "\n            and ".join(guards) + "):",
            hit,
            "    return _poly(seq, t, node, data, id_maps)",
        ]
    else:
        # The try/except is free on the hot path (zero-cost in 3.11+);
        # it catches *missing* keys, the len() pin catches *extra* ones.
        probe = (
            [
                "    try:",
                *("    " + line for line in prelude),
                "    except KeyError:",
                "        return _fb(seq, t, node, data, id_maps)",
            ]
            if prelude
            else []
        )
        body = [
            *probe,
            "    if ("
            + "\n            and ".join(
                [f"len(data) == {len(ordered)}", *guards]
            )
            + "):",
            hit,
            f"    if len(data) == {len(ordered)}:",
            "        return _poly(seq, t, node, data, id_maps)",
            "    return _fb(seq, t, node, data, id_maps)",
        ]
    escape_cache: Dict[str, str] = {}
    bindings = {
        "_eg": escape_cache.get,
        "_ce": _make_cache_escape(escape_cache),
        "_poly": poly,
        "_fb": fallback,
        "_round": round,
        "_inf": _INF,
        "_float": float,
        "_str": str,
        "_int": int,
        "_bool": bool,
    }
    # Bind only the helpers this shape's code actually names: per-call
    # default filling is proportional to the parameter count.
    text = "\n".join(body)
    needed = [name for name in bindings if name in text]
    src = [
        "def encode(seq, t, node, data, id_maps,",
        "           " + ", ".join(f"{n}={n}" for n in needed) + "):",
        *body,
    ]
    namespace = dict(bindings)
    exec("\n".join(src), namespace)  # noqa: S102 -- shape-literal codegen
    return namespace["encode"]


class LineEncoder:
    """One compiled ``(kind, data key-tuple)`` shape.

    Thin handle around the generated function: ``encode`` *is* the
    compiled function (an instance attribute, so calls skip descriptor
    dispatch).  Signature:
    ``encode(seq, t, node, data, id_maps) -> str``; ``t`` must already
    be rounded to 9 places.
    """

    __slots__ = ("encode", "kind", "keys")

    def __init__(
        self,
        kind: str,
        keys: Tuple[str, ...],
        sample: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.kind = kind
        self.keys = tuple(sorted(keys))
        self.encode = compile_shape(kind, keys, sample)


class EncoderTable:
    """Per-sink registry of compiled encoders, keyed by event shape.

    Two levels.  The hot one, :attr:`by_kind`, maps the event ``kind``
    alone to a type-specialized encoder compiled from the kind's first
    payload -- probing it costs one dict get per event, no shape tuple.
    Each of those encoders guards its own key-set and falls back to the
    full :attr:`encoders` shape table (compiling per-shape twins on
    demand) if the kind is ever re-emitted with different keys, so the
    cheap probe never changes bytes.

    Shapes are keyed by the payload dict's *insertion-order* key tuple
    (cheapest per-event fingerprint); two call sites emitting the same
    keys in different orders simply compile two identical plans.  The
    table is per sink -- no module-level state to leak across legs --
    and rebuilding it after a checkpoint restore is free of semantics:
    compilation is a pure function of the shapes seen.
    """

    __slots__ = ("encoders", "by_kind")

    def __init__(self) -> None:
        #: ``(kind, key-tuple) -> generated function``.  Public so the
        #: sink's record hook can probe it without a call layer.
        self.encoders: Dict[Tuple[str, Tuple[str, ...]], object] = {}
        #: ``kind -> key-set-guarded generated function`` (hot dispatch).
        self.by_kind: Dict[str, object] = {}

    def kind_encoder(self, kind: str, data: Mapping[str, object]):
        """Compile (and register) ``kind``'s hot encoder from ``data``.

        The returned function is type-specialized on ``data``'s values
        and pins its key-set; its fallback re-dispatches through the
        shape table, so it is safe to call for *any* later payload of
        the same kind.
        """
        encoders = self.encoders

        def dispatch(seq, t, node, payload, id_maps):
            shape = (kind, tuple(payload))
            encode = encoders.get(shape)
            if encode is None:
                encode = encoders[shape] = compile_shape(kind, shape[1])
            return encode(seq, t, node, payload, id_maps)

        encoder = compile_shape(kind, tuple(data), data, fallback=dispatch)
        self.by_kind[kind] = encoder
        return encoder

    def line(
        self,
        seq: int,
        t: float,
        node: int,
        kind: str,
        data: Mapping[str, object],
        id_maps: Mapping[str, Dict[object, int]],
    ) -> str:
        shape = (kind, tuple(data))
        encode = self.encoders.get(shape)
        if encode is None:
            encode = self.encoders[shape] = compile_shape(kind, shape[1], data)
        return encode(seq, t, node, data, id_maps)


# -------------------------------------------------------------- reference


def encode_line_generic(
    seq: int,
    t: float,
    node: int,
    kind: str,
    data: Mapping[str, object],
    normalize,
) -> str:
    """The original generic encoder -- the differential reference twin.

    Byte-for-byte the line :class:`~repro.sim.trace.EventTraceSink`
    emitted before the compiled path existed; ``normalize`` is the
    sink's id-map hook.  Kept deliberately naive: every byte-identity
    gate (tests, bench ``:enc`` twins) compares the compiled output
    against exactly this.
    """
    record: Dict[str, object] = {"seq": seq, "t": t, "node": node, "kind": kind}
    for key in sorted(data):
        value = data[key]
        if isinstance(value, SCALARS):
            if isinstance(value, float):
                value = round(value, 9)
            record[key] = normalize(key, value)
    return json.dumps(record, sort_keys=False, separators=(",", ":"))
