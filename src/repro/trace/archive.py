"""Segmented trace archive: compressed, indexed, windowed trace storage.

Flat JSONL event traces scale linearly in both bytes and verification
time: a gigabyte-class Azure-x40 trace can only be checked by scanning it
end to end.  This module replaces "one growing file per run" with an
*archive*: a directory of time-bucketed, node-sharded, gzip-compressed
segments, each carrying an embedded footer index, addressed purely
algorithmically from ``(t, node)`` -- there is no catalog database.

Layout
------
::

    out.trarc/
        MANIFEST.json                  # archive-level summary (see below)
        seg-b00000000-n000.jsonl.gz    # bucket 0, node 0
        seg-b00000000-n003.jsonl.gz    # bucket 0, node 3
        seg-b00000001-n000.jsonl.gz    # bucket 1, node 0
        ...

Segment ``seg-b<B>-n<N>`` holds exactly node ``N``'s records with
``B * bucket_seconds <= t < (B + 1) * bucket_seconds``, in the node's own
canonical ``(t, seq)`` order.  Empty buckets have no file (the archive is
sparse).  The address of any event is a pure function of its time and
node::

    bucket = int(t // bucket_seconds)
    name   = f"seg-b{bucket:08d}-n{node:03d}.jsonl.gz"

Segment file format
-------------------
Two concatenated gzip members (readable as one stream by any gzip tool):

1. the **payload**: the newline-terminated record lines;
2. the **footer**: one JSON line with ``schema``, ``bucket``, ``node``,
   ``bucket_seconds``, ``events``, ``t_min``, ``t_max``, and the SHA-256
   of the exact payload bytes.

Both members are compressed deterministically -- ``mtime=0``, no embedded
filename, pinned :data:`COMPRESSLEVEL` -- so a segment's bytes are a pure
function of its payload.  Because each ``(bucket, node)`` cell is written
by exactly one producer and contains only that node's canonical records,
**archives are byte-identical across runs and shard counts**.

Digest composition
------------------
The pre-existing whole-run witness is ``sha256`` over the canonical
``(t, node, seq)``-ordered JSONL bytes (:func:`repro.sim.shard.sha256_lines`).
Buckets partition time, so that stream is exactly the concatenation, in
bucket order, of the per-bucket ``(t, node, seq)`` merges of the bucket's
per-node segments::

    whole_sha = sha256( ++_{b ascending} merge_{n}(payload[b, n]) )

:func:`ArchiveReader.compose` streams that merge (constant memory),
verifying every footer digest on the way -- so per-segment digests
compose to the existing whole-run SHA-256 and every current digest gate
keeps working unchanged.  ``kind="rows"`` archives (telemetry CSV
segments, which have no ``(t, node, seq)`` key embedded per line)
compose by plain ``(bucket, node)``-ordered concatenation instead.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ARCHIVE_SCHEMA",
    "COMPRESSLEVEL",
    "DEFAULT_BUCKET_SECONDS",
    "MANIFEST_NAME",
    "ArchiveWriter",
    "ArchiveReader",
    "SegmentInfo",
    "bucket_of",
    "segment_name",
    "parse_segment_name",
    "open_deterministic_gzip",
    "gzip_member",
    "pack",
    "finalize_archive",
    "adaptive_bucket_seconds",
]

#: Schema tag stamped into every footer and manifest.
ARCHIVE_SCHEMA = "repro-trace-archive/1"

#: The one pinned compression level.  Part of the byte-identity contract:
#: changing it changes every archive's bytes, so it is a schema property,
#: not a knob.
COMPRESSLEVEL = 6

#: Default simulated seconds per time bucket.
DEFAULT_BUCKET_SECONDS = 60.0

MANIFEST_NAME = "MANIFEST.json"

_SEGMENT_RE = re.compile(r"^seg-b(\d{8,})-n(\d{3,})(\.[a-z]+\.gz)$")

#: sha256 of zero bytes -- the composed digest of an empty archive.
_EMPTY_SHA = hashlib.sha256(b"").hexdigest()


def bucket_of(t: float, bucket_seconds: float) -> int:
    """The time-bucket index of simulated second ``t`` -- the ``f(t)``
    half of the algorithmic segment address.  Bucket ``b`` covers
    ``[b * bucket_seconds, (b + 1) * bucket_seconds)``."""
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")
    if t < 0:
        raise ValueError(f"negative simulated time {t}")
    return int(t // bucket_seconds)


def segment_name(bucket: int, node: int, suffix: str = ".jsonl.gz") -> str:
    """The segment filename for ``(bucket, node)`` -- no catalog lookup."""
    return f"seg-b{bucket:08d}-n{node:03d}{suffix}"


def parse_segment_name(name: str) -> Optional[Tuple[int, int, str]]:
    """``(bucket, node, suffix)`` for a segment filename, else ``None``."""
    match = _SEGMENT_RE.match(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2)), match.group(3)


def open_deterministic_gzip(path: str | Path, mode: str = "rb"):
    """The sanctioned way to open archive gzip files.

    Write modes pin the gzip header -- ``mtime=0``, empty filename field,
    :data:`COMPRESSLEVEL` -- so output bytes are a pure function of the
    payload.  (Bare ``gzip.open`` embeds the wall-clock mtime, which the
    determinism lint therefore bans in ``src/``.)
    """
    if "r" in mode:
        return gzip.open(path, mode, encoding="utf-8" if "t" in mode else None)
    if "w" not in mode and "a" not in mode:
        raise ValueError(f"unsupported gzip mode {mode!r}")
    raw = open(path, mode.replace("t", "") + ("b" if "b" not in mode else ""))
    return gzip.GzipFile(
        filename="", mode="wb", fileobj=raw, compresslevel=COMPRESSLEVEL, mtime=0
    )


def gzip_member(data: bytes) -> bytes:
    """Compress ``data`` as one deterministic gzip member."""
    compressor = zlib.compressobj(COMPRESSLEVEL, zlib.DEFLATED, -zlib.MAX_WBITS)
    body = compressor.compress(data) + compressor.flush()
    header = b"\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff"
    crc = zlib.crc32(data).to_bytes(4, "little")
    size = (len(data) & 0xFFFFFFFF).to_bytes(4, "little")
    return header + body + crc + size


# ------------------------------------------------------------------ writer


class _OpenSegment:
    """One segment mid-write: raw file + gzip member + running footer.

    The payload lines written so far are retained (bounded: one bucket's
    worth per node) so a checkpoint (:mod:`repro.sim.checkpoint`) can
    pickle the segment and a restore can *rewrite* it from scratch.
    Because the writer never sync-flushes the compressor, the final
    segment bytes are a pure function of the payload line sequence --
    rewriting the retained lines through a fresh compressor therefore
    reproduces exactly the bytes an uninterrupted run would emit.
    """

    __slots__ = (
        "bucket", "node", "path", "raw", "zip",
        "events", "t_min", "t_max", "sha", "payload_bytes", "lines",
    )

    def __init__(self, path: Path, bucket: int, node: int) -> None:
        self.bucket = bucket
        self.node = node
        self.path = path
        self.raw = path.open("wb")
        self.zip = gzip.GzipFile(
            filename="", mode="wb", fileobj=self.raw,
            compresslevel=COMPRESSLEVEL, mtime=0,
        )
        self.events = 0
        self.t_min: Optional[float] = None
        self.t_max: Optional[float] = None
        self.sha = hashlib.sha256()
        self.payload_bytes = 0
        self.lines: List[Tuple[float, str]] = []

    def write(self, t: float, line: str) -> None:
        data = line.encode("utf-8") + b"\n"
        self.zip.write(data)
        self.sha.update(data)
        self.payload_bytes += len(data)
        self.events += 1
        if self.t_min is None:
            self.t_min = t
        self.t_max = t
        self.lines.append((t, line))

    def write_many(self, entries: Sequence[Tuple[float, str]]) -> None:
        """Append ``(t, line)`` pairs: one compressor write, one hash
        update, and one bookkeeping pass for the whole run.  Callers
        guarantee nondecreasing times within one segment's bucket."""
        data = "\n".join(line for _, line in entries).encode("utf-8") + b"\n"
        self.zip.write(data)
        self.sha.update(data)
        self.payload_bytes += len(data)
        self.events += len(entries)
        if self.t_min is None:
            self.t_min = entries[0][0]
        self.t_max = entries[-1][0]
        self.lines.extend(entries)

    def __getstate__(self) -> Dict[str, object]:
        # Open OS handles and the running hashlib object cannot pickle;
        # the retained lines are sufficient to rebuild all three.
        return {
            "bucket": self.bucket,
            "node": self.node,
            "path": str(self.path),
            "lines": self.lines,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        rebuilt = _OpenSegment(
            Path(state["path"]), state["bucket"], state["node"]
        )
        for t, line in state["lines"]:
            rebuilt.write(t, line)
        for slot in self.__slots__:
            setattr(self, slot, getattr(rebuilt, slot))

    def close(self, bucket_seconds: float) -> Dict[str, object]:
        """Finish the payload member, append the footer member, return
        the footer (with the segment name and compressed size added)."""
        self.zip.close()
        footer = {
            "schema": ARCHIVE_SCHEMA,
            "bucket": self.bucket,
            "node": self.node,
            "bucket_seconds": bucket_seconds,
            "events": self.events,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "payload_bytes": self.payload_bytes,
            "sha256": self.sha.hexdigest(),
        }
        line = json.dumps(footer, sort_keys=True, separators=(",", ":"))
        self.raw.write(gzip_member(line.encode("utf-8") + b"\n"))
        self.raw.flush()
        compressed = self.raw.tell()
        self.raw.close()
        footer["name"] = self.path.name
        footer["compressed_bytes"] = compressed
        return footer


class ArchiveWriter:
    """Segment-rolling writer: feed ``(t, node, line)``, get an archive.

    Keeps at most one open segment per node; when a node's stream crosses
    into a new bucket the current segment is finalized (footer appended)
    and the next one opened -- memory stays constant no matter how long
    the run is.  Per-node times must be nondecreasing (true of any
    node-canonical event stream and of a ``(t, node, seq)``-merged
    stream), and a closed bucket is never reopened, which is what makes
    the segment bytes independent of how producers were partitioned.

    Several writers may share one ``root`` as long as they write disjoint
    node sets (shard workers do exactly this); pass ``manifest=False`` to
    :meth:`close` and let the coordinator run :func:`finalize_archive`.
    """

    def __init__(
        self,
        root: str | Path,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        kind: str = "events",
        suffix: str = ".jsonl.gz",
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if kind not in ("events", "rows"):
            raise ValueError(f"unknown archive kind {kind!r}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.bucket_seconds = float(bucket_seconds)
        self.kind = kind
        self.suffix = suffix
        self.events = 0
        self._open: Dict[int, _OpenSegment] = {}
        self._last_bucket: Dict[int, int] = {}
        self._closed: List[Dict[str, object]] = []
        #: Running digest over the *input* stream order; equals the
        #: composed archive digest iff the input was already canonical
        #: (single node, or ``(t, node, seq)``-merged).
        self._input_sha = hashlib.sha256()
        #: False after a checkpoint restore: the running input digest
        #: cannot be carried across pickling (hashlib objects do not
        #: pickle), so a restored writer may only close with
        #: ``manifest=False`` (the shard-worker path, whose coordinator
        #: composes digests from footers instead).
        self._input_sha_valid = True
        self._closed_flag = False

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        del state["_input_sha"]
        state["_input_sha_valid"] = False
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._input_sha = hashlib.sha256()

    # ------------------------------------------------------------ writing

    def _segment_for(self, t: float, node: int, bucket: int) -> _OpenSegment:
        """The open segment ``(bucket, node)`` writes into, rolling the
        node's previous segment (footer appended) when the stream crossed
        a bucket boundary, and enforcing per-node monotonicity."""
        segment = self._open.get(node)
        if segment is not None and segment.bucket != bucket:
            if bucket < segment.bucket:
                raise ValueError(
                    f"node {node} time went backwards: bucket {bucket} after "
                    f"{segment.bucket}"
                )
            self._closed.append(segment.close(self.bucket_seconds))
            segment = None
        if segment is None:
            last = self._last_bucket.get(node)
            if last is not None and bucket <= last:
                raise ValueError(
                    f"node {node} bucket {bucket} already finalized "
                    f"(last was {last})"
                )
            segment = _OpenSegment(
                self.root / segment_name(bucket, node, self.suffix), bucket, node
            )
            self._open[node] = segment
            self._last_bucket[node] = bucket
        elif segment.t_max is not None and t < segment.t_max:
            raise ValueError(
                f"node {node} time went backwards: {t} after {segment.t_max}"
            )
        return segment

    def add(self, t: float, node: int, line: str) -> None:
        """Append one record line for ``node`` at simulated time ``t``."""
        if self._closed_flag:
            raise ValueError("archive writer is closed")
        segment = self._segment_for(t, node, bucket_of(t, self.bucket_seconds))
        segment.write(t, line)
        self._input_sha.update(line.encode("utf-8") + b"\n")
        self.events += 1

    def add_many(self, items: Sequence[Tuple[float, int, str]]) -> None:
        """Append a chunk of ``(t, node, line)`` records in one call.

        The batched sibling of :meth:`add` for chunk-draining sinks
        (:class:`repro.sim.trace.EventTraceSink`'s fast path): items are
        grouped into maximal same-``(node, bucket)`` runs, each run hits
        its segment with one compressor write and one SHA-256 update, and
        the input-order digest advances once for the whole chunk.  The
        bytes produced -- segment payloads, footers, and the input-order
        digest -- are identical to ``len(items)`` individual :meth:`add`
        calls; so are the monotonicity and closed-bucket errors (checked
        per run *before* writing it).
        """
        if self._closed_flag:
            raise ValueError("archive writer is closed")
        if not items:
            return
        bucket_seconds = self.bucket_seconds
        i, n = 0, len(items)
        while i < n:
            t, node, _ = items[i]
            bucket = bucket_of(t, bucket_seconds)
            j = i + 1
            while j < n:
                nt, nnode, _ = items[j]
                if nnode != node or bucket_of(nt, bucket_seconds) != bucket:
                    break
                j += 1
            segment = self._segment_for(t, node, bucket)
            run = items[i:j]
            previous = segment.t_max if segment.t_max is not None else t
            for rt, _, _ in run:
                if rt < previous:
                    raise ValueError(
                        f"node {node} time went backwards: {rt} after "
                        f"{previous}"
                    )
                previous = rt
            segment.write_many([(rt, line) for rt, _, line in run])
            i = j
        self._input_sha.update(
            ("\n".join(line for _, _, line in items) + "\n").encode("utf-8")
        )
        self.events += n

    def flush(self) -> None:
        """Push finished compressed bytes to the OS (epoch-barrier hook).

        Deliberately does *not* sync-flush the gzip compressors: a zlib
        sync flush injects marker blocks whose placement would depend on
        barrier timing, breaking byte-identity.  Crash loss is bounded by
        one compressor buffer per node.
        """
        for segment in self._open.values():
            segment.raw.flush()

    # ------------------------------------------------------------ closing

    def close(self, manifest: bool = True) -> Dict[str, object]:
        """Finalize all open segments; optionally write the manifest.

        Only pass ``manifest=True`` when this writer produced the whole
        archive from a canonical stream -- its input-order digest is then
        the composed archive digest.  Multi-writer archives (shard
        workers) close with ``manifest=False`` and are finalized once by
        :func:`finalize_archive`.
        """
        if manifest and not self._input_sha_valid:
            raise ValueError(
                "input-order digest was invalidated by a checkpoint "
                "restore; close with manifest=False and finalize via "
                "finalize_archive()"
            )
        if not self._closed_flag:
            for node in sorted(self._open):
                self._closed.append(self._open[node].close(self.bucket_seconds))
            self._open.clear()
            self._closed_flag = True
        summary = {
            "events": self.events,
            "sha256": self._input_sha.hexdigest(),
            "segments": sorted(
                self._closed, key=lambda f: (f["bucket"], f["node"])
            ),
        }
        if manifest:
            write_manifest(
                self.root,
                bucket_seconds=self.bucket_seconds,
                kind=self.kind,
                suffix=self.suffix,
                footers=summary["segments"],
                sha256=summary["sha256"],
            )
        return summary

    # ----------------------------------------------------------- checking

    def self_check(self) -> List[str]:
        """Internal-consistency problems (empty list == healthy).

        The writer-side half of the digest-composition invariant, cheap
        enough to sweep at every epoch barrier: open segments must agree
        with their own bookkeeping and with the addressing function, and
        closed-segment footers must sum to the writer's global count.
        """
        problems = []
        for node, segment in sorted(self._open.items()):
            subject = f"open segment {segment.path.name}"
            if segment.node != node:
                problems.append(f"{subject}: keyed under node {node}")
            if segment.events == 0:
                problems.append(f"{subject}: open with zero events")
                continue
            if segment.t_min is None or segment.t_max is None:
                problems.append(f"{subject}: missing time range")
                continue
            if segment.t_min > segment.t_max:
                problems.append(
                    f"{subject}: t_min {segment.t_min} > t_max {segment.t_max}"
                )
            for bound in (segment.t_min, segment.t_max):
                if bucket_of(bound, self.bucket_seconds) != segment.bucket:
                    problems.append(
                        f"{subject}: t={bound} addresses bucket "
                        f"{bucket_of(bound, self.bucket_seconds)}, "
                        f"not {segment.bucket}"
                    )
        closed_events = sum(f["events"] for f in self._closed)
        open_events = sum(s.events for s in self._open.values())
        if closed_events + open_events != self.events:
            problems.append(
                f"event count drift: {closed_events} closed + {open_events} "
                f"open != {self.events} written"
            )
        return problems


def write_manifest(
    root: str | Path,
    bucket_seconds: float,
    kind: str,
    suffix: str,
    footers: Sequence[Dict[str, object]],
    sha256: str,
) -> Path:
    """Write the archive-level summary.  Purely informational: addressing
    never consults it, but readers use it for ``bucket_seconds`` and the
    composed digest, and ``repro trace verify`` re-derives every field."""
    events = sum(f["events"] for f in footers)
    manifest = {
        "schema": ARCHIVE_SCHEMA,
        "kind": kind,
        "suffix": suffix,
        "bucket_seconds": bucket_seconds,
        "segments": len(footers),
        "events": events,
        "sha256": sha256,
        "nodes": sorted({f["node"] for f in footers}),
        "buckets": (
            [
                min(f["bucket"] for f in footers),
                max(f["bucket"] for f in footers),
            ]
            if footers
            else []
        ),
        "t_min": min((f["t_min"] for f in footers), default=None),
        "t_max": max((f["t_max"] for f in footers), default=None),
        "compressed_bytes": sum(f["compressed_bytes"] for f in footers),
        "payload_bytes": sum(f.get("payload_bytes", 0) for f in footers),
    }
    path = Path(root) / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


# ------------------------------------------------------------------ reader


@dataclass(frozen=True)
class SegmentInfo:
    """One segment as addressed on disk."""

    name: str
    bucket: int
    node: int


class ArchiveReader:
    """Range reads over an archive, opening only the touched segments.

    Every segment the reader actually opens is appended to
    :attr:`segments_read` -- the I/O witness the windowed-read tests (and
    anyone tuning bucket size) assert against.
    """

    def __init__(
        self, root: str | Path, bucket_seconds: Optional[float] = None
    ) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise FileNotFoundError(f"no archive directory at {self.root}")
        self.manifest: Optional[Dict[str, object]] = None
        manifest_path = self.root / MANIFEST_NAME
        if manifest_path.is_file():
            self.manifest = json.loads(manifest_path.read_text())
        if bucket_seconds is not None:
            self.bucket_seconds = float(bucket_seconds)
        elif self.manifest is not None:
            self.bucket_seconds = float(self.manifest["bucket_seconds"])
        else:
            self.bucket_seconds = self._probe_bucket_seconds()
        self.kind = (self.manifest or {}).get("kind", "events")
        #: Names of segments opened so far, in open order.
        self.segments_read: List[str] = []

    def _probe_bucket_seconds(self) -> float:
        """Without a manifest, any one footer names the bucket width."""
        for info in self.segments():
            footer = self._read_footer(info.name)
            return float(footer["bucket_seconds"])
        return DEFAULT_BUCKET_SECONDS

    # ---------------------------------------------------------- addressing

    def segment_for(self, t: float, node: int, suffix: str = ".jsonl.gz") -> str:
        """The filename holding ``(t, node)`` -- pure computation."""
        return segment_name(bucket_of(t, self.bucket_seconds), node, suffix)

    def segments(self) -> List[SegmentInfo]:
        """Existing segments, sorted by ``(bucket, node)`` -- a directory
        scan, not a catalog read."""
        found = []
        for path in self.root.iterdir():
            parsed = parse_segment_name(path.name)
            if parsed is not None:
                bucket, node, _ = parsed
                found.append(SegmentInfo(path.name, bucket, node))
        return sorted(found, key=lambda s: (s.bucket, s.node))

    # ------------------------------------------------------------- reading

    def _read_footer(self, name: str) -> Dict[str, object]:
        """Parse a segment's footer (its last decompressed line)."""
        lines = self._read_all_lines(name, count_io=False)
        if not lines:
            raise ValueError(f"{name}: empty segment file")
        footer = json.loads(lines[-1])
        if footer.get("schema") != ARCHIVE_SCHEMA:
            raise ValueError(f"{name}: last line is not a footer")
        return footer

    def _read_all_lines(self, name: str, count_io: bool = True) -> List[str]:
        if count_io:
            self.segments_read.append(name)
        with gzip.open(self.root / name, "rt", encoding="utf-8") as handle:
            return [line.rstrip("\n") for line in handle]

    def read_segment(
        self, name: str, verify: bool = False
    ) -> Tuple[List[str], Dict[str, object]]:
        """``(payload_lines, footer)`` of one segment.

        With ``verify=True`` the payload is re-hashed and the footer's
        count, digest, time range, and addressing are all checked.
        """
        lines = self._read_all_lines(name)
        if not lines:
            raise ValueError(f"{name}: empty segment file")
        footer = json.loads(lines[-1])
        if not isinstance(footer, dict) or footer.get("schema") != ARCHIVE_SCHEMA:
            raise ValueError(f"{name}: missing footer (truncated segment?)")
        payload = lines[:-1]
        if verify:
            problems = self._verify_segment(name, payload, footer)
            if problems:
                raise ValueError("; ".join(problems))
        return payload, footer

    def _verify_segment(
        self, name: str, payload: List[str], footer: Dict[str, object]
    ) -> List[str]:
        problems = []
        digest = hashlib.sha256()
        for line in payload:
            digest.update(line.encode("utf-8") + b"\n")
        if digest.hexdigest() != footer["sha256"]:
            problems.append(
                f"{name}: payload sha256 {digest.hexdigest()[:12]} != "
                f"footer {str(footer['sha256'])[:12]}"
            )
        if len(payload) != footer["events"]:
            problems.append(
                f"{name}: {len(payload)} payload lines != footer events "
                f"{footer['events']}"
            )
        parsed = parse_segment_name(name)
        if parsed is not None and (footer["bucket"], footer["node"]) != parsed[:2]:
            problems.append(
                f"{name}: footer addresses (bucket {footer['bucket']}, "
                f"node {footer['node']}) but the filename says {parsed[:2]}"
            )
        width = float(footer["bucket_seconds"])
        for bound in (footer["t_min"], footer["t_max"]):
            if bound is not None and bucket_of(bound, width) != footer["bucket"]:
                problems.append(
                    f"{name}: t={bound} outside bucket {footer['bucket']} "
                    f"(width {width})"
                )
        recorded_bytes = footer.get("payload_bytes")
        actual_bytes = sum(len(line.encode("utf-8")) + 1 for line in payload)
        if recorded_bytes is not None and recorded_bytes != actual_bytes:
            problems.append(
                f"{name}: {actual_bytes} payload bytes != footer "
                f"payload_bytes {recorded_bytes}"
            )
        return problems

    def iter_window(
        self,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        nodes: Optional[Sequence[int]] = None,
        verify: bool = False,
    ) -> Iterator[str]:
        """Stream the canonical record lines of a ``[t_start, t_end)``
        window, touching only the segments the window addresses.

        For ``kind="events"`` archives the per-node segments of each
        bucket are merged by ``(t, node, seq)``, so concatenating the
        buckets reproduces the exact canonical stream -- the composition
        rule.  ``kind="rows"`` archives concatenate in ``(bucket, node)``
        order and window at bucket granularity only.
        """
        from repro.sim.shard import merge_trace_lines

        node_set = None if nodes is None else set(nodes)
        by_bucket: Dict[int, List[SegmentInfo]] = {}
        for info in self.segments():
            if node_set is not None and info.node not in node_set:
                continue
            lo = info.bucket * self.bucket_seconds
            hi = lo + self.bucket_seconds
            if t_start is not None and hi <= t_start:
                continue
            if t_end is not None and lo >= t_end:
                continue
            by_bucket.setdefault(info.bucket, []).append(info)

        def clipped(lines: Iterable[str]) -> Iterator[str]:
            for line in lines:
                if t_start is not None or t_end is not None:
                    t = json.loads(line)["t"]
                    if t_start is not None and t < t_start:
                        continue
                    if t_end is not None and t >= t_end:
                        continue
                yield line

        for bucket in sorted(by_bucket):
            infos = by_bucket[bucket]
            boundary = (
                t_start is not None
                and bucket == bucket_of(t_start, self.bucket_seconds)
            ) or (
                t_end is not None
                and bucket * self.bucket_seconds < t_end <= (bucket + 1) * self.bucket_seconds
            )
            if self.kind == "rows":
                for info in infos:
                    payload, _ = self.read_segment(info.name, verify=verify)
                    yield from payload
                continue
            streams = [
                self.read_segment(info.name, verify=verify)[0] for info in infos
            ]
            merged = merge_trace_lines(streams)
            yield from clipped(merged) if boundary else merged

    def compose(self, verify: bool = True) -> Tuple[int, str]:
        """``(events, sha256)`` of the whole archive in canonical order.

        This *is* the digest-composition rule: with ``verify=True`` every
        segment footer is checked as it streams past, so a matching
        composed digest certifies both the parts and the whole.
        """
        from repro.sim.shard import sha256_lines

        return sha256_lines(self.iter_window(verify=verify))

    # ------------------------------------------------------------ verifying

    def verify(self, against_sha256: Optional[str] = None) -> List[str]:
        """Full integrity sweep; returns problems (empty == verified).

        Checks every segment's footer (digest, count, time range,
        addressing), then the composed whole-archive digest against the
        manifest and, optionally, an external expectation (the flat-file
        twin's SHA-256).
        """
        problems = []
        events = 0
        digest = hashlib.sha256()
        from repro.sim.shard import merge_trace_lines

        infos = self.segments()
        for bucket in sorted({info.bucket for info in infos}):
            streams = []
            for info in infos:
                if info.bucket != bucket:
                    continue
                try:
                    payload, footer = self.read_segment(info.name)
                except (OSError, ValueError, KeyError, EOFError, zlib.error) as exc:
                    problems.append(f"{info.name}: unreadable ({exc})")
                    continue
                problems.extend(self._verify_segment(info.name, payload, footer))
                streams.append(payload)
            bucket_lines = (
                [line for payload in streams for line in payload]
                if self.kind == "rows"
                else list(merge_trace_lines(streams))
            )
            for line in bucket_lines:
                digest.update(line.encode("utf-8") + b"\n")
                events += 1
        composed = digest.hexdigest()
        if self.manifest is not None:
            if self.manifest.get("events") != events:
                problems.append(
                    f"manifest events {self.manifest.get('events')} != "
                    f"{events} composed"
                )
            recorded = self.manifest.get("sha256")
            if recorded is not None and recorded != composed:
                problems.append(
                    f"manifest sha256 {str(recorded)[:12]} != composed "
                    f"{composed[:12]}"
                )
        if against_sha256 is not None and against_sha256 != composed:
            problems.append(
                f"composed digest {composed[:12]} != expected "
                f"{against_sha256[:12]}"
            )
        return problems


# ------------------------------------------------------------- packing


def pack(
    jsonl_path: str | Path,
    root: str | Path,
    bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
) -> Tuple[int, str]:
    """Pack a legacy flat JSONL trace into a segmented archive.

    Streams -- the flat file is never resident -- and returns ``(events,
    sha256)`` where the digest covers the flat file's exact line bytes,
    which (for a canonical input) equals the archive's composed digest.
    """
    root = Path(root)
    if root.exists():
        stale = [
            p.name
            for p in root.iterdir()
            if p.name == MANIFEST_NAME or parse_segment_name(p.name)
        ]
        if stale:
            raise FileExistsError(
                f"{root} already holds an archive ({len(stale)} files); "
                "pack into a fresh directory"
            )
    writer = ArchiveWriter(root, bucket_seconds=bucket_seconds)
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            record = json.loads(line)
            writer.add(record["t"], record["node"], line)
    summary = writer.close(manifest=True)
    return summary["events"], summary["sha256"]


def finalize_archive(
    root: str | Path,
    footers: Optional[Sequence[Dict[str, object]]] = None,
    event_trace_path: Optional[str | Path] = None,
    verify: bool = True,
) -> Tuple[int, str]:
    """Compose a multi-writer archive and stamp its manifest.

    Shard workers write disjoint node segments into a shared root and
    close their writers without a manifest; the coordinator calls this
    once: it streams the canonical composition, writes the manifest, and
    returns ``(events, sha256)``.  Running it on a writer-finalized
    archive is a no-op rewrite of identical bytes.

    Without ``footers`` every segment is re-read and fully verified
    before composing (two passes over the archive).  With ``footers`` --
    the segment manifests the workers shipped over the pipe
    (:class:`ArchiveWriter.close`'s ``segments``: name, event count,
    payload sha256, time range per segment) -- the merge is
    *manifest-driven*: one streaming pass composes the digest, each
    footer is checked against its segment as it streams past (unless
    ``verify=False``), and the composed event count must equal the
    manifest's sum.  ``event_trace_path`` additionally writes the flat
    canonical JSONL twin during that same pass, so a replay that wants
    both forms still reads every segment exactly once.
    """
    root = Path(root)
    suffix = ".jsonl.gz"
    if footers is None:
        reader = ArchiveReader(root)
        footers = []
        for info in reader.segments():
            _, footer = reader.read_segment(info.name, verify=True)
            footer["name"] = info.name
            footer["compressed_bytes"] = (root / info.name).stat().st_size
            footers.append(footer)
            suffix = parse_segment_name(info.name)[2]
        stream_verify = False  # everything above was just verified
    else:
        footers = sorted(footers, key=lambda f: (f["bucket"], f["node"]))
        for footer in footers:
            parsed = parse_segment_name(str(footer.get("name", "")))
            if parsed is not None:
                suffix = parsed[2]
        reader = ArchiveReader(
            root,
            bucket_seconds=(
                float(footers[0]["bucket_seconds"]) if footers else None
            ),
        )
        stream_verify = verify
    digest = hashlib.sha256()
    events = 0
    handle = None
    if event_trace_path is not None:
        event_trace_path = Path(event_trace_path)
        event_trace_path.parent.mkdir(parents=True, exist_ok=True)
        handle = event_trace_path.open("w", encoding="utf-8")
    try:
        for line in reader.iter_window(verify=stream_verify):
            digest.update(line.encode("utf-8") + b"\n")
            events += 1
            if handle is not None:
                handle.write(line + "\n")
    finally:
        if handle is not None:
            handle.close()
    claimed = sum(f["events"] for f in footers)
    if events != claimed:
        raise ValueError(
            f"archive composed {events} events but the segment manifest "
            f"claims {claimed}"
        )
    sha = digest.hexdigest()
    write_manifest(
        root,
        bucket_seconds=reader.bucket_seconds,
        kind=reader.kind,
        suffix=suffix,
        footers=footers,
        sha256=sha,
    )
    return events, sha


def adaptive_bucket_seconds(
    times: Sequence[float],
    base_seconds: float = DEFAULT_BUCKET_SECONDS,
    target_events: int = 256,
    max_scale: int = 64,
) -> float:
    """A deterministic bucket width sized to the trace's arrival density.

    Very sparse workloads -- the idle tails that dominate "Serverless in
    the Wild" style logs -- would shred into thousands of near-empty
    segments at the fixed default width, paying per-segment gzip and
    footer overhead for a handful of events each.  This reuses the
    sharding layer's arrival-density index
    (:func:`repro.sim.shard.arrival_density` over the ``base_seconds``
    grid) to widen buckets until the *occupied* cells average at least
    ``target_events`` arrivals: the width is ``base_seconds`` times the
    smallest power of two that reaches the target, capped at
    ``max_scale``.  Dense traces keep the base width (windowed reads
    stay sharp); only sparsity widens.  A pure, order-insensitive
    function of the submission log, so -- like the adaptive epoch
    horizons -- every shard count derives the identical bucket grid,
    preserving archive byte-identity.
    """
    from repro.sim.shard import arrival_density

    if base_seconds <= 0:
        raise ValueError("base_seconds must be positive")
    if target_events < 1 or max_scale < 1:
        raise ValueError("target_events and max_scale must be >= 1")
    times = list(times)
    if not times:
        return base_seconds
    counts = arrival_density(times, 0.0, max(times), base_seconds)
    occupied = [count for count in counts if count > 0]
    if not occupied:
        return base_seconds
    mean = sum(occupied) / len(occupied)
    scale = 1
    while mean * scale < target_events and scale < max_scale:
        scale *= 2
    return base_seconds * scale
