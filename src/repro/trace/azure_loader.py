"""Loader for the Azure Functions 2019 dataset (the paper's §5.3 trace).

The public dataset (github.com/Azure/AzurePublicDataset) ships CSVs with a
row per function:

* ``invocations_per_function_md.anon.dXX.csv`` -- HashOwner, HashApp,
  HashFunction, Trigger, then 1440 per-minute invocation counts;
* ``function_durations_percentiles.anon.dXX.csv`` -- HashOwner, HashApp,
  HashFunction, Average, Count, Minimum, Maximum, percentile columns.

The dataset itself is not redistributable here, so the repository ships
only this loader; given the files, it reproduces the paper's §5.3 method:
pick the trace function whose average duration is closest to each Table 1
function (chains match against their end-to-end time) and replay the
Table 1 function with that trace function's arrival pattern.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memo import statcache
from repro.workloads.model import FunctionDefinition
from repro.workloads.registry import all_definitions

MINUTES_PER_DAY = 1440


@dataclass(frozen=True)
class AzureFunctionRow:
    """One function's day of per-minute invocation counts."""

    owner: str
    app: str
    function: str
    trigger: str
    per_minute: Tuple[int, ...]

    @property
    def key(self) -> str:
        """The dataset's composite function identity."""
        return f"{self.owner}/{self.app}/{self.function}"

    @property
    def total_invocations(self) -> int:
        """Invocations over the whole day."""
        return sum(self.per_minute)


def load_invocation_counts(path: str | Path) -> List[AzureFunctionRow]:
    """Parse an ``invocations_per_function`` CSV.

    Parses are memoized per file identity (``(path, mtime, size)`` via
    :mod:`repro.memo.statcache`), so bench suites and checkpoint-restore
    arrival regeneration stop re-parsing the same CSV per leg; an edited
    or replaced file re-parses.  Returns a fresh list each call (the rows
    themselves are frozen and shared).
    """
    return list(
        statcache.cached_parse(path, _parse_invocation_counts, tag="azure-inv")
    )


def _parse_invocation_counts(path: Path) -> List[AzureFunctionRow]:
    rows: List[AzureFunctionRow] = []
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"HashOwner", "HashApp", "HashFunction", "Trigger"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: expected Azure invocation-count columns, "
                f"got {reader.fieldnames}"
            )
        minute_columns = [
            name for name in reader.fieldnames if name.isdigit()
        ]
        minute_columns.sort(key=int)
        for record in reader:
            rows.append(
                AzureFunctionRow(
                    owner=record["HashOwner"],
                    app=record["HashApp"],
                    function=record["HashFunction"],
                    trigger=record["Trigger"],
                    per_minute=tuple(
                        int(record[name] or 0) for name in minute_columns
                    ),
                )
            )
    return rows


def load_average_durations(path: str | Path) -> Dict[str, float]:
    """Parse a ``function_durations_percentiles`` CSV into key -> avg ms.

    Memoized per file identity exactly like :func:`load_invocation_counts`;
    returns a fresh dict each call.
    """
    return dict(
        statcache.cached_parse(path, _parse_average_durations, tag="azure-dur")
    )


def _parse_average_durations(path: Path) -> Dict[str, float]:
    durations: Dict[str, float] = {}
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"HashOwner", "HashApp", "HashFunction", "Average"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: expected Azure duration columns, got {reader.fieldnames}"
            )
        for record in reader:
            key = (
                f"{record['HashOwner']}/{record['HashApp']}/"
                f"{record['HashFunction']}"
            )
            durations[key] = float(record["Average"] or 0.0)
    return durations


def select_by_duration(
    rows: Sequence[AzureFunctionRow],
    durations: Dict[str, float],
    definitions: Optional[Sequence[FunctionDefinition]] = None,
    min_invocations: int = 10,
) -> Dict[str, AzureFunctionRow]:
    """The §5.3 selection: for each Table 1 definition, the trace function
    whose average duration is closest to its execution time (chains match
    their whole-chain time).  Each trace function is used at most once.

    Returns ``{definition name: trace row}``.
    """
    definitions = list(definitions or all_definitions())
    candidates = [
        row
        for row in rows
        if row.key in durations and row.total_invocations >= min_invocations
    ]
    if len(candidates) < len(definitions):
        raise ValueError(
            f"need at least {len(definitions)} usable trace functions, "
            f"got {len(candidates)}"
        )
    taken: set = set()
    selection: Dict[str, AzureFunctionRow] = {}
    # Greedy, most-constrained first: longer functions have fewer close
    # matches in the (short-skewed) trace.
    for definition in sorted(
        definitions, key=lambda d: -d.total_exec_seconds
    ):
        target_ms = definition.total_exec_seconds * 1000.0
        best = min(
            (row for row in candidates if row.key not in taken),
            key=lambda row: abs(durations[row.key] - target_ms),
        )
        taken.add(best.key)
        selection[definition.name] = best
    return selection


def arrivals_from_counts(
    row: AzureFunctionRow,
    horizon_seconds: float,
    scale_factor: float = 1.0,
    seed: int = 0,
) -> List[float]:
    """Expand per-minute counts into arrival instants.

    Each minute's invocations spread uniformly at random inside it; the
    scale factor divides all times (compressing inter-arrivals, §5.3), and
    arrivals beyond the horizon are dropped.
    """
    if horizon_seconds <= 0 or scale_factor <= 0:
        raise ValueError("horizon and scale factor must be positive")
    rng = random.Random(seed ^ hash_stable(row.key))
    times: List[float] = []
    for minute, count in enumerate(row.per_minute):
        base = minute * 60.0
        for _ in range(count):
            t = (base + rng.random() * 60.0) / scale_factor
            if t < horizon_seconds:
                times.append(t)
    times.sort()
    return times


def build_replay_arrivals(
    selection: Dict[str, AzureFunctionRow],
    horizon_seconds: float,
    scale_factor: float = 1.0,
    seed: int = 0,
) -> List[Tuple[float, FunctionDefinition]]:
    """(time, definition) pairs replaying Table 1 functions with the
    selected trace functions' arrival patterns."""
    by_name = {d.name: d for d in all_definitions()}
    events: List[Tuple[float, FunctionDefinition]] = []
    for name, row in selection.items():
        definition = by_name[name]
        events.extend(
            (t, definition)
            for t in arrivals_from_counts(row, horizon_seconds, scale_factor, seed)
        )
    events.sort(key=lambda pair: pair[0])
    return events


def hash_stable(text: str) -> int:
    """Process-stable string hash (``hash()`` is salted per process)."""
    import zlib

    return zlib.crc32(text.encode())
