"""Azure-Functions-style trace substrate (§5.3).

The paper replays inter-arrival patterns of 20 production functions
(selected by execution-time similarity) against the Table 1 suite, with a
*scale factor* that divides inter-arrival times.  The real trace is not
shippable here; :mod:`generator` synthesizes arrival processes with the
same statistical shape (heavy-tailed popularity, a mix of periodic and
Poisson/bursty triggers, per Shahrad et al.), and :mod:`replay` drives the
platform through warmup + measurement windows.
"""

from repro.trace.archive import (
    ArchiveReader,
    ArchiveWriter,
    finalize_archive,
    pack,
)
from repro.trace.generator import FunctionArrivalSpec, TraceGenerator
from repro.trace.replay import (
    ReplayConfig,
    ReplayResult,
    TraceWindow,
    WindowResult,
    replay,
)
from repro.trace.stats import ReplayStats, percentile

__all__ = [
    "ArchiveReader",
    "ArchiveWriter",
    "FunctionArrivalSpec",
    "TraceGenerator",
    "ReplayConfig",
    "ReplayResult",
    "TraceWindow",
    "WindowResult",
    "finalize_archive",
    "pack",
    "replay",
    "ReplayStats",
    "percentile",
]
