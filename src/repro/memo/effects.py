"""Effect-delta capture and replay for memoized invocations.

:func:`invoke` wraps ``model.invoke(runtime)`` (the object-level heap
simulation that dominates warm-path wall time).  The fingerprint covers
the invocation's full causal input; on a hit the recorded effect delta
is applied instead of re-simulating:

* the **VMM tape** applies as bulk effects: anonymous touches and
  discards are recorded pre-resolved (``TAPE_SPLICE``/``TAPE_CLEAR``
  carry the run-list window, the replacement pieces, and the counter
  deltas), so a hit splices the recorded residency directly into the
  live mapping and bumps the physical/fault/version counters by the
  recorded amounts -- no per-segment re-derivation.  Operations that
  touch shared state (file-backed faults, page-cache releases) or
  reshape the mapping set (``mmap``/``munmap``/``mprotect``/swap-out)
  stay op-level and re-execute organically through the public
  ``VirtualAddressSpace`` methods, preserving sharer sets, the global
  mapping-id counter, and listener cadence exactly;
* runtime **value fields** (counters, meters, booleans) are assigned
  from the captured post-invocation values;
* runtime **structural state** (object graph, JIT cache, per-runtime
  space bookkeeping) is captured as a pickle with live boundary objects
  (runtime, space, config, mappings) swapped for persistent ids, and
  restored *lazily*: the hit parks the entry on
  ``runtime._memo_pending`` and the unpickle happens only when
  something actually reads structural state (``_memo_materialize``
  guards every such entry point).  Consecutive hits replace the pending
  entry -- captures are absolute -- while per-invocation ``gc_events``
  suffixes accumulate;
* the model RNG fast-forwards to the recorded state and draw count;
* the space digest is *assigned* the recorded post-invocation value:
  the fingerprint match pins the pre-state byte-identically (digest
  induction), so the recorded post-digest is the unique digest organic
  execution would have reached.

Platform-side event emission is untouched: trace lines, telemetry and
aggregate counters are derived from the (byte-identically restored)
post-invocation state through the normal code paths, which is what makes
a memoized leg's merged SHA-256 equal its twin's by construction.
"""

from __future__ import annotations

import copy
import io
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro.mem.layout import Protection
from repro.mem.vmm import Mapping
from repro.memo import cache as memo_cache
from repro.memo import digest


class MemoIntegrityError(RuntimeError):
    """A recorded effect delta failed to re-apply consistently."""


#: The runtime a memo restore is currently rebuilding state for.  Set
#: (and cleared) by :func:`materialize` so the reduce hooks baked into a
#: captured pickle can resolve boundary tokens back to live objects at
#: load time.  Single-threaded by construction: shard workers are
#: separate processes and a restore never nests.
_restore_runtime: Optional[Any] = None


def _load_ref(tag: str, start: int = 0) -> Any:
    """Load-time resolver for boundary tokens inside a captured pickle."""
    runtime = _restore_runtime
    if runtime is None:
        raise MemoIntegrityError("memo payload loaded outside materialize()")
    if tag == "m":
        live = runtime.space._mappings.get(start)
        if live is None:
            raise MemoIntegrityError(
                f"{runtime.space.name}: no live mapping at "
                f"{start:#x} for memo restore"
            )
        return live
    if tag == "rt":
        return runtime
    if tag == "sp":
        return runtime.space
    if tag == "cf":
        return runtime.config
    raise MemoIntegrityError(f"unknown memo boundary tag {tag!r}")


def _dispatch_table(runtime: Any) -> Dict[type, Any]:
    """Per-capture reduce hooks swapping live boundary objects (the
    runtime, its space/config, and every live ``Mapping``) for load-time
    tokens, so aliasing survives and nothing live is serialized.

    A class-keyed ``dispatch_table`` costs one C-level dict lookup per
    pickled instance; a ``persistent_id`` hook would cost one Python
    call per pickled *object* -- tens of millions over a bench leg.
    """
    space = runtime.space
    config = runtime.config

    def reduce_mapping(obj: Any) -> Tuple[Any, ...]:
        return (_load_ref, ("m", obj.start))

    def reduce_identity(tag: str, live: Any):
        def reduce(obj: Any) -> Tuple[Any, ...]:
            if obj is not live:
                # A same-class sibling that is not the boundary object:
                # serialize it normally.
                return obj.__reduce_ex__(pickle.HIGHEST_PROTOCOL)
            return (_load_ref, (tag,))

        return reduce

    return {
        Mapping: reduce_mapping,
        type(runtime): reduce_identity("rt", runtime),
        type(space): reduce_identity("sp", space),
        type(config): reduce_identity("cf", config),
    }


#: Runtime fields that stay live across a hit.  Identity and
#: construction-time wiring (``name``/``config``/``space``), boot-time
#: objects that invocations never reassign (libraries, the native
#: mapping), the append-only ``gc_events`` log (restored as a suffix, so
#: pre-hit history is preserved), the measurement caches (self-keyed on
#: live version counters, so they self-invalidate), and the memo fields
#: themselves.
_EXCLUDED = frozenset(
    {
        "name",
        "config",
        "space",
        "_shared_files",
        "_lib_mappings",
        "_mapped_specs",
        "_native",
        "gc_events",
        "_uss_cache",
        "_hrb_cache",
        "_memo_sig",
        "_memo_pending",
    }
)


def _is_value(value: Any) -> bool:
    if value is None or isinstance(value, (int, float, bool, str)):
        return True
    if isinstance(value, tuple):
        return all(_is_value(item) for item in value)
    return False


class Entry:
    """One recorded effect delta."""

    __slots__ = (
        "tape",
        "result",
        "scalars",
        "payload",
        "gc_suffix",
        "rng_state",
        "rng_draws",
        "runtime_sig",
        "space_sig",
        "cost",
    )


def _pressure(physical: Any) -> int:
    """The platform pressure input: irrelevant (-1) when memory is
    unlimited, else the global used-byte count (an OOM inside an
    invocation depends on it)."""
    if physical.capacity_bytes is None:
        return -1
    return physical.used_bytes


def _fingerprint(instance: Any) -> Tuple[Any, ...]:
    runtime = instance.runtime
    model = instance.model
    space = runtime.space
    return (
        model._memo_ident,
        instance.memo_context,
        runtime._memo_sig,
        space._memo_sig,
        model._rng.draws,
        runtime.invocations,
        _pressure(space.physical),
    )


def invoke(instance: Any) -> Any:
    """Run one invocation through the effect cache (the memo warm path).

    Falls back to the plain model when the instance was constructed with
    memo off (its digests are ``None``).
    """
    runtime = instance.runtime
    model = instance.model
    space = runtime.space
    if runtime._memo_sig is None or space._memo_sig is None:
        return model.invoke(runtime)
    cache = memo_cache.shared()
    key = _fingerprint(instance)
    entry = cache.get(key)
    if entry is not None:
        _apply(runtime, model, entry)
        return copy.copy(entry.result)
    runtime._memo_materialize()
    if not cache.admit(key):
        # First sighting: simulate organically, skip the capture cost.
        result = model.invoke(runtime)
        runtime.memo_note(digest.OP_INVOKE)
        return result
    n_events = len(runtime.gc_events)
    space._memo_tape = []
    try:
        result = model.invoke(runtime)
    except BaseException:
        space._memo_tape = None
        raise
    runtime.memo_note(digest.OP_INVOKE)
    tape = space._memo_tape
    space._memo_tape = None
    if tape is not None:
        # A file-backed mmap mid-invocation drops the tape (unrecordable);
        # everything else is replayable.
        cache.put(
            key,
            _capture(runtime, model, tape, result, runtime.gc_events[n_events:]),
        )
    return result


# --------------------------------------------------------------- capture


def _coalesce(tape: List[Tuple[int, ...]]) -> Tuple[Tuple[int, ...], ...]:
    """Merge consecutive ``TAPE_SPLICE`` records on the same mapping.

    A bump-allocating invocation touches its heap mapping in dozens of
    adjacent or right-extending windows; each consecutive pair whose
    windows are contiguous (``prev.first <= first <= prev.last``) and
    right-extending (``last >= prev.last``) collapses into one splice:
    the earlier pieces clipped to ``[prev.first, first)`` plus the later
    pieces, with counter deltas summed.  ``RunList.splice`` re-merges
    equal-valued neighbours, so the one-shot splice reproduces the exact
    post-state of the recorded sequence.
    """
    out: List[Tuple[int, ...]] = []
    for op in tape:
        if (
            op[0] == digest.TAPE_SPLICE
            and out
            and out[-1][0] == digest.TAPE_SPLICE
            and out[-1][1] == op[1]
        ):
            prev = out[-1]
            prev_first, prev_last = prev[2], prev[3]
            first, last = op[2], op[3]
            if prev_first <= first <= prev_last and last >= prev_last:
                clipped = [run for run in prev[4] if run[0] < first]
                if clipped and clipped[-1][1] > first:
                    s, _, state = clipped[-1]
                    clipped[-1] = (s, first, state)
                out[-1] = (
                    digest.TAPE_SPLICE,
                    op[1],
                    prev_first,
                    last,
                    tuple(clipped) + op[4],
                    prev[5] + op[5],
                    prev[6] + op[6],
                    prev[7] + op[7],
                    prev[8] + op[8],
                    prev[9] + op[9],
                )
                continue
        out.append(op)
    return tuple(out)


def _capture(
    runtime: Any,
    model: Any,
    tape: List[Tuple[int, ...]],
    result: Any,
    gc_suffix: List[Any],
) -> Entry:
    space = runtime.space
    scalars: Dict[str, Any] = {}
    structural: Dict[str, Any] = {}
    for name, value in runtime.__dict__.items():
        if name in _EXCLUDED:
            continue
        if _is_value(value):
            scalars[name] = value
        else:
            structural[name] = value
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.dispatch_table = _dispatch_table(runtime)
    pickler.dump(structural)
    entry = Entry()
    entry.tape = _coalesce(tape)
    entry.result = copy.copy(result)
    entry.scalars = scalars
    entry.payload = buffer.getvalue()
    entry.gc_suffix = tuple(copy.copy(event) for event in gc_suffix)
    entry.rng_state = model._rng.getstate()
    entry.rng_draws = model._rng.draws
    entry.runtime_sig = runtime._memo_sig
    entry.space_sig = space._memo_sig
    # Real payload bytes drive the byte-bounded LRU; tape/scalars/result
    # overhead is estimated.
    entry.cost = (
        512 + len(entry.payload) + 64 * len(entry.tape) + 48 * len(scalars)
    )
    return entry


# ----------------------------------------------------------------- apply


def _apply(runtime: Any, model: Any, entry: Entry) -> None:
    space = runtime.space
    _replay_tape(space, entry.tape)
    # The fingerprint pinned the pre-state digest; the recorded
    # post-digest is therefore the unique value organic execution would
    # reach.  Bulk tape records do not fold, so assign rather than check.
    space._memo_sig = entry.space_sig
    runtime.__dict__.update(entry.scalars)
    runtime._memo_sig = entry.runtime_sig
    rng = model._rng
    rng.setstate(entry.rng_state)
    rng.draws = entry.rng_draws
    pending = runtime._memo_pending
    if pending is None:
        runtime._memo_pending = (entry, [entry.gc_suffix])
    else:
        # Structural captures are absolute: the newest entry wins.  The
        # per-invocation gc_events suffixes are relative and accumulate.
        suffixes = pending[1]
        suffixes.append(entry.gc_suffix)
        runtime._memo_pending = (entry, suffixes)


def _replay_tape(space: Any, tape: Tuple[Tuple[int, ...], ...]) -> None:
    phys = space.physical
    mappings = space._mappings
    faults = space.faults
    for op in tape:
        code = op[0]
        if code == digest.TAPE_SPLICE:
            _, start, first, last, pieces, anon_d, swap_d, minor, major, changed = op
            mapping = mappings.get(start)
            if mapping is None:
                raise MemoIntegrityError(
                    f"{space.name}: no live mapping at {start:#x} for memo splice"
                )
            mapping._runs.splice(first, last, pieces)
            mapping.n_anon += anon_d
            if anon_d:
                phys.alloc_anon(anon_d)
            if swap_d:
                # Swap-ins only: touches never push pages out.
                mapping.n_swapped += swap_d
                phys.swap.swap_in(-swap_d)
            faults.minor += minor
            faults.major += major
            space.version += changed
        elif code == digest.TAPE_CLEAR:
            _, start, first, last, anon_freed, swap_freed = op
            mapping = mappings.get(start)
            if mapping is None:
                raise MemoIntegrityError(
                    f"{space.name}: no live mapping at {start:#x} for memo clear"
                )
            mapping._runs.clear(first, last)
            if anon_freed:
                mapping.n_anon -= anon_freed
                phys.free_anon(anon_freed)
            if swap_freed:
                mapping.n_swapped -= swap_freed
                phys.swap.discard(swap_freed)
            space.version += 1
            space.release_epoch += 1
        elif code == digest.OP_TOUCH:
            space.touch(op[1], op[2], write=bool(op[3]))
        elif code == digest.OP_DISCARD:
            space.discard(op[1], op[2])
        elif code == digest.OP_MMAP:
            mapping = space.mmap(op[1], prot=Protection(op[2]), name=op[3])
            if mapping.start != op[4]:
                raise MemoIntegrityError(
                    f"{space.name}: replayed mmap landed at "
                    f"{mapping.start:#x}, recorded {op[4]:#x}"
                )
        elif code == digest.OP_MUNMAP:
            space.munmap(op[1], op[2])
        elif code == digest.OP_MPROTECT:
            space.mprotect(op[1], op[2], Protection(op[3]))
        elif code == digest.OP_SWAP_OUT:
            space.swap_out_range(op[1], op[2])
        else:
            raise MemoIntegrityError(f"unknown memo tape op {code!r}")


def materialize(runtime: Any, pending: Tuple[Entry, List[Tuple[Any, ...]]]) -> None:
    """Restore the deferred structural state (called from the runtime's
    ``_memo_materialize`` guard; ``runtime._memo_pending`` is already
    cleared by the caller)."""
    entry, suffixes = pending
    global _restore_runtime
    _restore_runtime = runtime
    try:
        restored = pickle.loads(entry.payload)
    finally:
        _restore_runtime = None
    state = runtime.__dict__
    for name, value in restored.items():
        state[name] = value
    events = runtime.gc_events
    for suffix in suffixes:
        events.extend(copy.copy(event) for event in suffix)
