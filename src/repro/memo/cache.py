"""The bounded per-process effect-cache LRU.

One cache per process, shared by every platform and instance in it: the
fingerprint already encodes everything instance-specific, so entries
recorded by one instance replay on any other at the same causal state --
that cross-instance reuse (a hot function's fresh containers re-walking
the exact trajectory earlier containers walked) is where the hit rate
comes from.  Shard workers each hold their own process-local cache and
never coordinate, which is what makes memoization shard-count-invariant
by construction.

Admission defaults to first-touch (capture on the first miss): captures
are pickled effect deltas cheap enough that paying one per distinct
fingerprint beats losing the second sighting to a candidate round trip,
and every repeat visit of a trajectory is a hit from the start.
``admit_threshold=2`` switches to two-touch admission (first sighting
only marks a candidate, the second records), which trades hit rate for
skipping captures of one-shot keys.

Counters follow drain semantics: :func:`drain_stats` returns what
accumulated since the previous drain and zeroes only the counters (not
the entries), so per-window and per-shard reports can be summed without
double counting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

#: Default bounds; ``configure`` overrides them (``repro bench`` keeps the
#: defaults so committed baselines are comparable).  The entry cap is
#: sized to hold the full working set of an x40 Azure-derived leg with
#: headroom -- entry-cap thrash turns evicted keys back into captures,
#: which cost far more than the retained bytes.
DEFAULT_MAX_ENTRIES = 32768
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class EffectCache:
    """LRU over effect entries with hit/miss/eviction/bytes counters."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        admit_threshold: int = 1,
    ) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.admit_threshold = admit_threshold
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._candidates: Dict[Any, None] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cached_bytes = 0

    def get(self, key: Any) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def admit(self, key: Any) -> bool:
        """True when this miss should capture (see ``admit_threshold``)."""
        if self.admit_threshold <= 1:
            return True
        if key in self._candidates:
            return True
        if len(self._candidates) >= self.max_entries * 4:
            # Candidate set is bookkeeping, not payload; cap it so a run
            # of never-repeating keys cannot grow it without bound.
            self._candidates.clear()
        self._candidates[key] = None
        return False

    def put(self, key: Any, entry: Any) -> None:
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.cached_bytes -= previous.cost
        self._entries[key] = entry
        self.cached_bytes += entry.cost
        while self._entries and (
            len(self._entries) > self.max_entries
            or self.cached_bytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self.cached_bytes -= evicted.cost
            self.evictions += 1

    # ------------------------------------------------------------- stats

    def stats(self) -> Dict[str, int]:
        """Live snapshot (the ``/stats``-ready probe shape)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_bytes": self.cached_bytes,
            "entries": len(self._entries),
        }

    def drain_stats(self) -> Dict[str, int]:
        """Counters since the last drain; resets counters, keeps entries."""
        stats = self.stats()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        return stats

    def reset(self) -> None:
        """Drop entries, candidates, and counters (fresh run)."""
        self._entries.clear()
        self._candidates.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cached_bytes = 0


#: The per-process cache (repro/memo is the lint-sanctioned home for
#: module-level mutable caches).
_CACHE = EffectCache()


def shared() -> EffectCache:
    return _CACHE


def configure(
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
    admit_threshold: Optional[int] = None,
) -> None:
    if max_entries is not None:
        _CACHE.max_entries = max_entries
    if max_bytes is not None:
        _CACHE.max_bytes = max_bytes
    if admit_threshold is not None:
        _CACHE.admit_threshold = admit_threshold


def stats() -> Dict[str, int]:
    return _CACHE.stats()


def drain_stats() -> Dict[str, int]:
    return _CACHE.drain_stats()


def reset() -> None:
    _CACHE.reset()
