"""Incremental FNV-1a folding for the memo fingerprints.

Both content digests that address the effect cache are maintained as
64-bit FNV-1a folds over integer operation records:

* ``VirtualAddressSpace._memo_sig`` folds every state-changing VMM
  operation (the op code plus its raw arguments), so two spaces with
  equal digests have executed the same mutation history from the same
  construction -- and, by induction, hold identical page-table state;
* ``ManagedRuntime._memo_sig`` starts from a construction token (class,
  config repr, fastpath flavor) and folds the externally driven
  mutations that are invisible to the space digest (``full_gc``,
  ``free_persistent``, ``reclaim``) plus one ``OP_INVOKE`` marker per
  completed invocation, so the *interleaving* of invocations and
  external operations is part of the address.

FNV-1a is not cryptographic; a 64-bit fold per component is plenty for a
cache key that is ultimately backstopped by the streaming SHA-256 trace
digest gates (a colliding key would surface as a digest mismatch, not a
silent wrong answer).  ``zlib.crc32`` seeds the construction tokens --
the builtin ``hash()`` is per-process salted and banned by the
determinism lint.
"""

from __future__ import annotations

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF

#: VMM tape opcodes (folded into the space digest and replayed on a hit).
OP_MMAP = 1
OP_MUNMAP = 2
OP_MPROTECT = 3
OP_TOUCH = 4
OP_DISCARD = 5
OP_SWAP_OUT = 6

#: Runtime-level opcodes (folded into the runtime digest only).
OP_FULL_GC = 7
OP_FREE_PERSISTENT = 8
OP_RECLAIM = 9
OP_INVOKE = 10

#: Tape-only opcodes (never folded into a digest): pre-resolved effect
#: records the hit path applies directly instead of re-deriving them
#: through the public VMM methods.  ``TAPE_SPLICE`` is one touch's
#: residency splice on one anonymous mapping; ``TAPE_CLEAR`` is one
#: discard's release on one anonymous mapping.  Operations involving
#: shared-file state stay op-level on the tape and replay organically.
TAPE_SPLICE = 100
TAPE_CLEAR = 101


def fold(sig: int, *values: int) -> int:
    """Fold ``values`` into ``sig`` (64-bit FNV-1a, value-at-a-time)."""
    for value in values:
        sig = ((sig ^ (value & _MASK)) * FNV_PRIME) & _MASK
    return sig
