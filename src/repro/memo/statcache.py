"""Stat-keyed file parse cache: re-parse only when the file changed.

Bench suites and checkpoint-restore arrival regeneration hand the same
Azure submission CSVs to the loader once per leg; parsing a
1440-column-per-row CSV repeatedly dominates setup time without ever
producing a different result.  :func:`cached_parse` memoizes the parsed
value per ``(path, tag)`` and invalidates on the file's identity stamp --
``(mtime_ns, size)`` from one ``stat`` call -- so an edited, rewritten,
or replaced file is always re-parsed while an unchanged one never is.

Lives in :mod:`repro.memo` because this package is the one sanctioned
home for module-level mutable caches (the determinism lint bans them
everywhere else under ``src/repro``): the cache is content-addressed by
the file stamp, so a stale entry can never satisfy a lookup, and
:func:`reset` gives legs the same hygiene hook the effect cache has.

Callers that return mutable containers must copy on the way out --
the cached value is shared across every hit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Tuple, TypeVar

T = TypeVar("T")

#: Cached parses: ``(resolved path, tag) -> ((mtime_ns, size), value)``.
_entries: Dict[Tuple[str, str], Tuple[Tuple[int, int], object]] = {}

_counters = {"hits": 0, "misses": 0, "invalidations": 0}

#: Entries kept before the oldest is dropped (a run touches a handful of
#: data files; the cap only guards against pathological sweeps).
MAX_ENTRIES = 32


def cached_parse(
    path: str | Path, parser: Callable[[Path], T], tag: str = ""
) -> T:
    """``parser(path)``, memoized until the file's ``(mtime, size)`` moves.

    ``tag`` namespaces different parsers over the same file.  The parser
    runs at most once per file identity; a changed stamp counts as an
    invalidation and re-parses in place.
    """
    path = Path(path)
    stat = path.stat()
    stamp = (stat.st_mtime_ns, stat.st_size)
    key = (str(path.resolve()), tag)
    entry = _entries.get(key)
    if entry is not None:
        if entry[0] == stamp:
            _counters["hits"] += 1
            return entry[1]  # type: ignore[return-value]
        _counters["invalidations"] += 1
    _counters["misses"] += 1
    value = parser(path)
    if key not in _entries and len(_entries) >= MAX_ENTRIES:
        _entries.pop(next(iter(_entries)))
    _entries[key] = (stamp, value)
    return value


def stats() -> Dict[str, int]:
    """Counter snapshot (plus the live entry count)."""
    return {**_counters, "entries": len(_entries)}


def reset() -> None:
    """Drop every entry and zero the counters (leg hygiene hook)."""
    _entries.clear()
    for key in _counters:
        _counters[key] = 0
