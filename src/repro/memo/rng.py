"""A draw-counting ``random.Random`` for the memo fingerprint.

The jitter stream position is part of an invocation's causal input: two
invocations of the same function at the same heap state but different
stream offsets draw different volumes and must never share a cache
entry.  ``CountingRandom`` counts ``random()`` calls (the only primitive
the function models use) so the position is an O(1) read instead of a
state-tuple comparison.

``__reduce__`` is overridden because ``random.Random``'s C-level default
reduce rebuilds from ``getstate()`` alone and would silently drop the
``draws`` attribute -- which matters when a checkpoint pickles a host
whose models carry counting RNGs (docs/CHECKPOINTS.md).
"""

from __future__ import annotations

import random
from typing import Any, Tuple


class CountingRandom(random.Random):
    """Seeded RNG that counts its ``random()`` draws."""

    def __init__(self, seed: Any = None) -> None:
        super().__init__(seed)
        self.draws = 0

    def random(self) -> float:
        self.draws += 1
        return super().random()

    def __reduce__(self) -> Tuple[Any, ...]:
        return (_rebuild_counting_random, (self.getstate(), self.draws))


def _rebuild_counting_random(state: Tuple[Any, ...], draws: int) -> CountingRandom:
    rng = CountingRandom()
    rng.setstate(state)
    rng.draws = draws
    return rng
