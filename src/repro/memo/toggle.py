"""The ``REPRO_MEMO`` switch for the invocation effect cache.

Mirrors :mod:`repro.fastpath` exactly, with the opposite default: the
memo layer is opt-in (unset/""/"0" = off, "1" = on) because it only pays
off on long repeat-heavy replays, and benchmarks want the non-memo twin
to stay the measured baseline.  Components snapshot the flag when they
are constructed -- a runtime built with memo off never starts folding
digests mid-run, so toggling between legs in one process is safe as long
as each leg builds fresh platforms (which the bench harness does).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

_enabled: Optional[bool] = None


def enabled() -> bool:
    """Whether the invocation effect cache is active (defaults to off)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_MEMO", "0") not in ("", "0")
    return _enabled


def set_enabled(value: bool) -> None:
    """Force the flag, overriding the environment."""
    global _enabled
    _enabled = bool(value)


@contextmanager
def override(value: bool) -> Iterator[None]:
    """Temporarily force the flag (tests and paired benchmark runs)."""
    previous = enabled()
    set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)
