"""Warm-path memoization: the content-addressed invocation effect cache.

``REPRO_MEMO=1`` layers on top of ``REPRO_FASTPATH``: every invocation is
fingerprinted by its full causal input (function identity, runtime/heap
state digest, policy context, physical pressure, RNG position) and, on a
repeat, the recorded effect delta is applied instead of re-simulating the
object-level allocation and GC work.  Every memoized leg stays pinned
byte-identical to its non-memo twin through the streaming SHA-256 trace
digest gates.  See docs/MEMOIZATION.md.

Submodules:

* :mod:`repro.memo.toggle` -- the ``REPRO_MEMO`` flag (mirrors
  :mod:`repro.fastpath`; construction-time snapshot, never flips mid-run);
* :mod:`repro.memo.digest` -- the FNV-1a incremental fold and effect
  opcodes shared by the VMM tap and the runtime layer;
* :mod:`repro.memo.rng` -- a draw-counting ``random.Random`` so the jitter
  stream position can join the fingerprint;
* :mod:`repro.memo.cache` -- the bounded per-process LRU with
  hit/miss/eviction/bytes counters;
* :mod:`repro.memo.statcache` -- the ``(path, mtime, size)``-stamped file
  parse cache (Azure CSV loads and friends re-parse only on change);
* :mod:`repro.memo.effects` -- fingerprinting, effect-delta capture, and
  the record/replay entry point (:func:`repro.memo.effects.invoke`).

This package is the one sanctioned home for module-level mutable caches;
the determinism lint bans ad-hoc caching everywhere else under
``src/repro``.
"""

from repro.memo import cache, digest, statcache, toggle

__all__ = ["cache", "digest", "statcache", "toggle"]
