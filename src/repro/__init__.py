"""repro: a from-scratch reproduction of *Characterization and Reclamation
of Frozen Garbage in Managed FaaS Workloads* (EuroSys '24) -- the Desiccant
freeze-aware memory manager -- over simulated substrates.

Layers (bottom up):

* :mod:`repro.mem`      -- page-granular virtual memory with USS/RSS/PSS.
* :mod:`repro.sim`      -- the discrete-event kernel (clock, event heap,
  typed event bus, per-component RNG streams, JSONL trace sink).
* :mod:`repro.runtime`  -- HotSpot, V8, and CPython runtime simulators.
* :mod:`repro.workloads`-- the Table 1 function suite.
* :mod:`repro.faas`     -- the OpenWhisk/Lambda-like platforms, hosted on
  the sim kernel.
* :mod:`repro.trace`    -- Azure-style trace generation and replay.
* :mod:`repro.core`     -- Desiccant itself plus the evaluation baselines.
* :mod:`repro.analysis` -- characterization harnesses and reporting.

Quickstart::

    from repro import run_single
    run = run_single("fft", policy="desiccant")
    print(run.final_uss, run.final_ideal)
"""

from repro.analysis import run_concurrent_instances, run_overhead_experiment, run_single
from repro.core import (
    ActivationController,
    Desiccant,
    DesiccantConfig,
    EagerGcManager,
    ProfileStore,
    SwapManager,
    VanillaManager,
    estimated_throughput,
    reclaim_instance,
)
from repro.faas import (
    FaasPlatform,
    FunctionInstance,
    LambdaPlatform,
    PlatformConfig,
    SharedLibraryPool,
)
from repro.faas.platform import Request
from repro.sim import EventBus, EventTraceSink, RngStream, SimKernel
from repro.runtime import CPythonRuntime, HotSpotRuntime, ManagedRuntime, V8Runtime
from repro.trace import ReplayConfig, TraceGenerator, replay
from repro.workloads import all_definitions, definitions_by_language, get_definition

__version__ = "1.0.0"

__all__ = [
    "run_concurrent_instances",
    "run_overhead_experiment",
    "run_single",
    "ActivationController",
    "Desiccant",
    "DesiccantConfig",
    "EagerGcManager",
    "ProfileStore",
    "SwapManager",
    "VanillaManager",
    "estimated_throughput",
    "reclaim_instance",
    "FaasPlatform",
    "FunctionInstance",
    "LambdaPlatform",
    "PlatformConfig",
    "SharedLibraryPool",
    "Request",
    "EventBus",
    "EventTraceSink",
    "RngStream",
    "SimKernel",
    "CPythonRuntime",
    "HotSpotRuntime",
    "ManagedRuntime",
    "V8Runtime",
    "ReplayConfig",
    "TraceGenerator",
    "replay",
    "all_definitions",
    "definitions_by_language",
    "get_definition",
    "__version__",
]
