"""The object graph shared by every runtime simulator.

Objects are nodes with a byte size and strong reference edges.  Roots come in
three flavours:

* **frame roots** -- live for one function invocation (temporaries); the
  runtime pops them at invocation exit, at which point the temporaries are
  garbage -- *frozen garbage* once the instance is paused.
* **persistent roots** -- the function's cached state (loaded libraries,
  connection pools); live across invocations.
* **weak roots** -- reachable only through a weak edge (V8's JIT code cache
  is modelled this way).  Normal collections retain them; *aggressive*
  collections (§4.7) clear them, triggering deoptimization on the next run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple


@dataclass
class HeapObject:
    """One allocated object: identity, size, and outgoing strong edges."""

    oid: int
    size: int
    refs: List[int] = field(default_factory=list)
    age: int = 0  # young collections survived (promotion decisions)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"object size must be positive, got {self.size}")

    @property
    def member_count(self) -> int:
        """How many mutator-visible objects this node stands for."""
        return 1


@dataclass
class CohortObject(HeapObject):
    """A run of ``count`` same-sized temporaries folded into one node.

    Workload models allocate long runs of identical objects that live and
    die together (one invocation's temporaries); representing each run as
    a single contiguous node keeps graph, GC, and placement costs
    O(cohorts) instead of O(objects).  ``size == count * unit`` always
    holds, so every byte-based query (live bytes, sweep volume, page
    masks) is exactly what the equivalent individual objects would give;
    ``member_count`` keeps object *counts* exact too.
    """

    count: int = 1
    unit: int = 0

    @property
    def member_count(self) -> int:
        return self.count


class ObjectGraph:
    """Object table plus root sets, with reachability tracing.

    Placement (which space / address an object lives at) is the runtime's
    job; the graph only knows identity, sizes, and edges.
    """

    def __init__(self) -> None:
        # Plain int, not itertools.count: the graph is part of the
        # checkpointable runtime state (repro.sim.checkpoint) and
        # pickling itertools iterators is deprecated since 3.12.
        self._next_id = 1
        self.objects: Dict[int, HeapObject] = {}
        self.persistent_roots: Set[int] = set()
        self.weak_roots: Set[int] = set()
        self._frames: List[Set[int]] = []

    # ------------------------------------------------------------- mutation

    def new_object(self, size: int, refs: Iterable[int] = ()) -> int:
        """Create an object and return its id (caller decides rooting)."""
        oid = self._next_id
        self._next_id += 1
        ref_list = list(refs)
        for child in ref_list:
            self._require(child)
        self.objects[oid] = HeapObject(oid, size, ref_list)
        return oid

    def new_cohort(self, count: int, unit: int) -> int:
        """Create one node standing for ``count`` objects of ``unit`` bytes."""
        if count <= 0:
            raise ValueError(f"cohort count must be positive, got {count}")
        if unit <= 0:
            raise ValueError(f"cohort unit must be positive, got {unit}")
        oid = self._next_id
        self._next_id += 1
        self.objects[oid] = CohortObject(oid, count * unit, [], 0, count, unit)
        return oid

    def add_ref(self, parent: int, child: int) -> None:
        """Add a strong edge parent -> child."""
        self._require(parent)
        self._require(child)
        self.objects[parent].refs.append(child)

    def push_frame(self) -> None:
        """Open a new invocation frame (its roots die with the frame)."""
        self._frames.append(set())

    def pop_frame(self) -> Set[int]:
        """Close the current frame, returning the roots it held."""
        if not self._frames:
            raise RuntimeError("no invocation frame to pop")
        return self._frames.pop()

    @property
    def frame_depth(self) -> int:
        """Number of open invocation frames."""
        return len(self._frames)

    def root_in_frame(self, oid: int) -> None:
        """Root ``oid`` in the current invocation frame."""
        self._require(oid)
        if not self._frames:
            raise RuntimeError("no open invocation frame")
        self._frames[-1].add(oid)

    def root_persistent(self, oid: int) -> None:
        """Root ``oid`` across invocations."""
        self._require(oid)
        self.persistent_roots.add(oid)

    def unroot_persistent(self, oid: int) -> None:
        """Drop a persistent root (idempotent)."""
        self.persistent_roots.discard(oid)

    def root_weak(self, oid: int) -> None:
        """Hold ``oid`` via a weak root (cleared by aggressive GC)."""
        self._require(oid)
        self.weak_roots.add(oid)

    def unroot_weak(self, oid: int) -> None:
        """Drop a weak root (idempotent)."""
        self.weak_roots.discard(oid)

    # ------------------------------------------------------------- tracing

    def all_roots(self, include_weak: bool) -> Set[int]:
        """The current root set."""
        roots: Set[int] = set(self.persistent_roots)
        for frame in self._frames:
            roots |= frame
        if include_weak:
            roots |= self.weak_roots
        # Roots may point at already-removed objects only through bugs;
        # filter defensively so tracing never KeyErrors.
        return {oid for oid in roots if oid in self.objects}

    def reachable(self, include_weak: bool = True) -> Set[int]:
        """Transitive closure of the roots over strong edges."""
        live: Set[int] = set()
        stack = list(self.all_roots(include_weak))
        while stack:
            oid = stack.pop()
            if oid in live:
                continue
            live.add(oid)
            for child in self.objects[oid].refs:
                if child not in live and child in self.objects:
                    stack.append(child)
        return live

    def live_bytes(self, include_weak: bool = True) -> int:
        """Total size of currently reachable objects."""
        return sum(self.objects[oid].size for oid in self.reachable(include_weak))

    def sweep(self, live: Set[int]) -> Tuple[int, int]:
        """Drop every object not in ``live``.

        Returns ``(collected_count, collected_bytes)``.  Also clears weak
        roots pointing at collected objects.
        """
        dead = [oid for oid in self.objects if oid not in live]
        collected_bytes = 0
        collected_count = 0
        for oid in dead:
            obj = self.objects[oid]
            collected_bytes += obj.size
            collected_count += obj.member_count
            del self.objects[oid]
        self.weak_roots &= live
        self.persistent_roots &= live
        for frame in self._frames:
            frame &= live
        return collected_count, collected_bytes

    def total_bytes(self) -> int:
        """Sum of all object sizes, live or not."""
        return sum(obj.size for obj in self.objects.values())

    def _require(self, oid: int) -> None:
        if oid not in self.objects:
            raise KeyError(f"unknown object id {oid}")

    # ------------------------------------------------------------ pickling

    def __getstate__(self) -> Tuple[object, ...]:
        """Compact pickle state: one small tuple per node instead of a
        class-tagged ``__dict__`` each.  Graph serialization sits on two
        hot paths -- memo effect capture (``repro.memo.effects``) and
        epoch checkpoints (``repro.sim.checkpoint``) -- and the flat form
        dumps several times faster at roughly half the bytes."""
        nodes: List[Tuple[object, ...]] = []
        append = nodes.append
        for obj in self.objects.values():
            if type(obj) is CohortObject:
                append((obj.oid, obj.size, obj.refs, obj.age, obj.count, obj.unit))
            else:
                append((obj.oid, obj.size, obj.refs, obj.age))
        return (
            self._next_id,
            nodes,
            self.persistent_roots,
            self.weak_roots,
            self._frames,
        )

    def __setstate__(self, state: Tuple[object, ...]) -> None:
        next_id, nodes, persistent, weak, frames = state
        self._next_id = next_id
        objects: Dict[int, HeapObject] = {}
        for row in nodes:
            if len(row) == 6:
                oid, size, refs, age, count, unit = row
                objects[oid] = CohortObject(oid, size, refs, age, count, unit)
            else:
                oid, size, refs, age = row
                objects[oid] = HeapObject(oid, size, refs, age)
        self.objects = objects
        self.persistent_roots = persistent
        self.weak_roots = weak
        self._frames = frames
