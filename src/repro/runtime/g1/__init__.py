"""G1GC simulator (the paper's §7 / §5.4 discussion).

The paper studies the serial collector because Lambda uses it, but §7
argues Desiccant applies to G1 unchanged: it is still HotSpot, it can
estimate reclamation throughput, and it knows which regions are free.
"""

from repro.runtime.g1.runtime import G1Config, G1Runtime
from repro.runtime.g1.regions import Region, RegionManager

__all__ = ["G1Config", "G1Runtime", "Region", "RegionManager"]
