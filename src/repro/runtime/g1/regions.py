"""G1's region-structured heap.

The heap is one reserved mapping carved into fixed-size regions (1 MiB
here; real G1 picks 1-32 MiB).  Each region is EDEN, SURVIVOR, OLD,
HUMONGOUS, or FREE.  Collections evacuate live data from a *collection
set* of regions into fresh ones, chosen garbage-first: most-garbage
regions evacuate cheapest per reclaimed byte.

The frozen-garbage mechanics mirror the serial collector's: a FREE region's
pages stay committed and dirty after evacuation (G1 only uncommits at the
concurrent-cycle sizing points), which is exactly what Desiccant releases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mem.layout import MIB, PAGE_SIZE, page_ceil

#: Modelled region size (real G1 would pick this from the heap size).
REGION_SIZE = 1 * MIB


class RegionKind(enum.Enum):
    FREE = "free"
    EDEN = "eden"
    SURVIVOR = "survivor"
    OLD = "old"
    HUMONGOUS = "humongous"


@dataclass
class Region:
    """One fixed-size heap region."""

    index: int
    kind: RegionKind = RegionKind.FREE
    top: int = 0  # bytes bump-allocated
    #: (oid, offset) pairs, address order.
    objects: List[Tuple[int, int]] = field(default_factory=list)
    #: High-water mark of dirtied bytes (demand paging bookkeeping).
    touched: int = 0
    #: For humongous objects spanning several regions: the span head.
    humongous_head: Optional[int] = None

    def __getstate__(self) -> tuple:
        """Compact pickle state (a flat tuple, the kind by value): the
        region array dominates the G1 portion of memo effect payloads and
        epoch checkpoints, and the flat form dumps faster at fewer bytes."""
        return (
            self.index,
            self.kind.value,
            self.top,
            self.objects,
            self.touched,
            self.humongous_head,
        )

    def __setstate__(self, state: tuple) -> None:
        index, kind, top, objects, touched, humongous_head = state
        self.index = index
        self.kind = RegionKind(kind)
        self.top = top
        self.objects = objects
        self.touched = touched
        self.humongous_head = humongous_head

    @property
    def free(self) -> int:
        return REGION_SIZE - self.top

    def fits(self, size: int) -> bool:
        return size <= self.free

    def bump(self, oid: int, size: int) -> int:
        if not self.fits(size):
            raise AssertionError(
                f"region {self.index}: bump of {size} exceeds free {self.free}"
            )
        offset = self.top
        self.objects.append((oid, offset))
        self.top += size
        return offset

    def live_bytes(self, sizes: Dict[int, int]) -> int:
        """Bytes of still-live objects in the region."""
        return sum(sizes.get(oid, 0) for oid, _ in self.objects)

    def garbage_bytes(self, sizes: Dict[int, int]) -> int:
        """The garbage-first ranking quantity: dead bytes in the region."""
        return self.top - self.live_bytes(sizes)

    def reset(self) -> None:
        """Return the region to the free list (pages stay dirty!)."""
        self.kind = RegionKind.FREE
        self.objects.clear()
        self.top = 0
        self.humongous_head = None


class RegionManager:
    """Allocation and kind-tracking over the region array."""

    def __init__(self, num_regions: int) -> None:
        if num_regions < 4:
            raise ValueError("G1 needs at least a handful of regions")
        self.regions = [Region(i) for i in range(num_regions)]
        #: Region currently taking allocations of each mutable kind.
        self._current: Dict[RegionKind, Optional[Region]] = {
            RegionKind.EDEN: None,
            RegionKind.SURVIVOR: None,
            RegionKind.OLD: None,
        }

    # ------------------------------------------------------------- queries

    def by_kind(self, kind: RegionKind) -> List[Region]:
        return [r for r in self.regions if r.kind is kind]

    def free_count(self) -> int:
        return sum(1 for r in self.regions if r.kind is RegionKind.FREE)

    def committed_kinds_bytes(self) -> int:
        """Bytes in non-free regions (the used heap, region-granular)."""
        return sum(
            REGION_SIZE for r in self.regions if r.kind is not RegionKind.FREE
        )

    def used_bytes(self) -> int:
        return sum(r.top for r in self.regions if r.kind is not RegionKind.FREE)

    # ---------------------------------------------------------- allocation

    def take_free(self, kind: RegionKind) -> Optional[Region]:
        """Claim a free region for ``kind`` (lowest index first)."""
        for region in self.regions:
            if region.kind is RegionKind.FREE:
                region.kind = kind
                return region
        return None

    def allocate(self, kind: RegionKind, oid: int, size: int):
        """Bump ``oid`` into the current region of ``kind``.

        Returns ``(region, offset)`` or ``None`` when no free region is
        available (the caller collects and retries).
        """
        if size > REGION_SIZE:
            raise ValueError("use allocate_humongous for multi-region objects")
        current = self._current.get(kind)
        if current is None or current.kind is not kind or not current.fits(size):
            current = self.take_free(kind)
            if current is None:
                return None
            self._current[kind] = current
        return current, current.bump(oid, size)

    def allocate_humongous(self, oid: int, size: int) -> Optional[List[Region]]:
        """Place a >= region-sized object in a contiguous run of free
        regions (G1's humongous allocation).  Returns the span or None."""
        needed = (size + REGION_SIZE - 1) // REGION_SIZE
        run: List[Region] = []
        for region in self.regions:
            if region.kind is RegionKind.FREE:
                run.append(region)
                if len(run) == needed:
                    head = run[0]
                    for member in run:
                        member.kind = RegionKind.HUMONGOUS
                        member.humongous_head = head.index
                    head.objects.append((oid, 0))
                    head.top = min(size, REGION_SIZE)
                    for member in run[1:]:
                        member.top = min(
                            REGION_SIZE, size - run.index(member) * REGION_SIZE
                        )
                    return run
            else:
                run = []
        return None

    def humongous_span(self, head_index: int) -> List[Region]:
        return [
            r for r in self.regions if r.humongous_head == head_index
        ]

    def retire_current(self) -> None:
        """Stop bump allocation in all current regions (GC boundary)."""
        for kind in self._current:
            self._current[kind] = None
