"""The G1 runtime simulator.

Collection model (simplified but structurally faithful):

* **Young collections** evacuate every eden+survivor region; survivors age
  and promote to old regions after ``tenure_threshold`` copies.
* When old-region occupancy crosses the **IHOP** fraction, a marking cycle
  runs and subsequent **mixed collections** add the most-garbage old
  regions to the collection set -- the garbage-first heuristic.
* Humongous objects (>= half a region) take contiguous region runs and die
  at marking.
* Evacuated regions return to the FREE list, but their pages remain
  committed and dirty -- G1 hands memory back to the OS even more rarely
  than the serial collector, so the frozen-garbage story is unchanged and
  §7's claim holds: Desiccant reclaims by running a collection and then
  releasing every FREE region's pages plus the allocated regions' tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mem.layout import MIB, PAGE_SIZE, Protection, page_ceil
from repro.mem.vmm import Mapping
from repro.runtime import costs
from repro.runtime.base import (
    HeapStats,
    LibrarySpec,
    ManagedRuntime,
    OutOfMemory,
    ReclaimOutcome,
    RuntimeConfig,
)
from repro.runtime.g1.regions import REGION_SIZE, Region, RegionKind, RegionManager


@dataclass
class G1Config(RuntimeConfig):
    """G1-specific knobs."""

    #: Old-occupancy fraction starting a marking cycle (InitiatingHeapOccupancyPercent).
    ihop: float = 0.45
    #: Young collections an object survives before promotion.
    tenure_threshold: int = 4
    #: Eden regions allowed before a young collection triggers.
    young_target_regions: int = 4
    #: Old regions evacuated per mixed collection (G1MixedGCCountTarget-ish).
    mixed_regions_per_gc: int = 8
    #: Old regions below this garbage fraction are not worth evacuating
    #: (G1HeapWastePercent-ish).
    mixed_garbage_threshold: float = 0.15
    boot_seconds: float = 0.45
    native_boot_bytes: int = 6 * MIB  # G1's remembered sets cost extra
    native_init_bytes: int = 3 * MIB


class G1Runtime(ManagedRuntime):
    """Region-based garbage-first collector."""

    language = "java"
    default_libraries = (
        LibrarySpec("/usr/lib/jvm/libjvm.so", 18 * MIB, touched_fraction=0.55),
        LibrarySpec("/usr/lib/jvm/lib-java-base.so", 7 * MIB, touched_fraction=0.6),
    )

    def __init__(self, name, config: G1Config | None = None, **kwargs) -> None:
        super().__init__(name, config or G1Config(), **kwargs)
        self._heap: Mapping | None = None
        self._regions: RegionManager | None = None
        self._where: Dict[int, Region] = {}
        self._marking_done = False
        self.young_gc_count = 0
        self.mixed_gc_count = 0
        self.full_gc_count = 0

    # ------------------------------------------------------------------ heap

    def _setup_heap(self) -> float:
        cfg: G1Config = self.config  # type: ignore[assignment]
        num_regions = max(8, cfg.max_heap // REGION_SIZE)
        self._heap = self.space.mmap(
            num_regions * REGION_SIZE, prot=Protection.NONE, name="[g1 heap]"
        )
        self._regions = RegionManager(num_regions)
        return 0.0

    def _region_base(self, region: Region) -> int:
        return self._heap.start + region.index * REGION_SIZE

    def _commit_region(self, region: Region) -> None:
        base = self._region_base(region)
        mapping = self.space.find_mapping(base)
        if mapping is not None and mapping.prot & Protection.WRITE:
            return
        self.space.commit(base, REGION_SIZE)

    def _materialize(self, region: Region) -> None:
        if region.top <= region.touched:
            return
        counts = self.space.touch(
            self._region_base(region) + region.touched,
            region.top - region.touched,
        )
        self._charge_faults(counts.minor, counts.major)
        region.touched = page_ceil(region.top)

    # ------------------------------------------------------------ placement

    def _place(self, oid: int) -> None:
        size = self.graph.objects[oid].size
        if size >= REGION_SIZE // 2:
            self._place_humongous(oid, size)
            return
        placed = self._try_bump(RegionKind.EDEN, oid, size)
        if placed is None:
            self.collect(full=False)
            placed = self._try_bump(RegionKind.EDEN, oid, size)
        if placed is None:
            self.collect(full=True)
            placed = self._try_bump(RegionKind.EDEN, oid, size)
        if placed is None:
            raise OutOfMemory(f"{self.name}: no free region for {size} bytes")
        if len(self._regions.by_kind(RegionKind.EDEN)) > self._young_target():
            self.collect(full=False)

    def _young_target(self) -> int:
        cfg: G1Config = self.config  # type: ignore[assignment]
        return cfg.young_target_regions

    def _try_bump(self, kind: RegionKind, oid: int, size: int) -> Optional[Region]:
        result = self._regions.allocate(kind, oid, size)
        if result is None:
            return None
        region, _offset = result
        self._commit_region(region)
        self._where[oid] = region
        self._materialize(region)
        return region

    def _place_humongous(self, oid: int, size: int) -> None:
        span = self._regions.allocate_humongous(oid, size)
        if span is None:
            self.collect(full=True)
            span = self._regions.allocate_humongous(oid, size)
        if span is None:
            raise OutOfMemory(f"{self.name}: no contiguous run for {size} bytes")
        for region in span:
            self._commit_region(region)
            self._materialize(region)
        self._where[oid] = span[0]

    # ------------------------------------------------------------------- GC

    def collect(self, full: bool, aggressive: bool = False) -> float:
        self._check_booted()
        if full:
            return self._full_gc(aggressive)
        return self._young_or_mixed_gc(aggressive)

    def _young_or_mixed_gc(self, aggressive: bool) -> float:
        cfg: G1Config = self.config  # type: ignore[assignment]
        live = self.graph.reachable(include_weak=not aggressive)
        sizes = {
            oid: self.graph.objects[oid].size
            for oid in live
            if oid in self.graph.objects
        }

        collection_set = self._regions.by_kind(RegionKind.EDEN) + self._regions.by_kind(
            RegionKind.SURVIVOR
        )
        mixed = False
        if self._marking_done:
            candidates = sorted(
                self._regions.by_kind(RegionKind.OLD),
                key=lambda r: -r.garbage_bytes(sizes),
            )
            chosen = [
                r
                for r in candidates[: cfg.mixed_regions_per_gc]
                if r.garbage_bytes(sizes) > cfg.mixed_garbage_threshold * REGION_SIZE
            ]
            if chosen:
                collection_set.extend(chosen)
                mixed = True
            self._marking_done = False

        seconds = self._evacuate(collection_set, live, sizes)
        self._sweep_humongous(live)
        self._collect_dead(live)

        # IHOP check: heavy old occupancy schedules marking, making the
        # *next* young collection a mixed one.
        old_bytes = sum(r.top for r in self._regions.by_kind(RegionKind.OLD))
        if old_bytes > cfg.ihop * len(self._regions.regions) * REGION_SIZE:
            self._marking_done = True
            seconds += costs.trace_cost(sum(sizes.values()))

        if mixed:
            self.mixed_gc_count += 1
        else:
            self.young_gc_count += 1
        self._record_gc(
            "mixed" if mixed else "young", seconds, 0, sum(sizes.values())
        )
        return seconds

    def _full_gc(self, aggressive: bool) -> float:
        """Evacuate everything: the compacting fallback."""
        live = self.graph.reachable(include_weak=not aggressive)
        sizes = {
            oid: self.graph.objects[oid].size
            for oid in live
            if oid in self.graph.objects
        }
        collection_set = [
            r
            for r in self._regions.regions
            if r.kind in (RegionKind.EDEN, RegionKind.SURVIVOR, RegionKind.OLD)
        ]
        seconds = self._evacuate(
            collection_set, live, sizes, promote_everything=True
        )
        self._sweep_humongous(live)
        self._collect_dead(live)
        self._marking_done = False
        self.full_gc_count += 1
        self._record_gc("full", seconds, 0, sum(sizes.values()))
        return seconds

    def _evacuate(
        self,
        collection_set: List[Region],
        live: set,
        sizes: Dict[int, int],
        promote_everything: bool = False,
    ) -> float:
        cfg: G1Config = self.config  # type: ignore[assignment]
        survivors: List[int] = []
        for region in collection_set:
            survivors.extend(oid for oid, _ in region.objects if oid in live)
            region.reset()  # FREE again; pages stay dirty
        self._regions.retire_current()

        copied = 0
        for oid in survivors:
            obj = self.graph.objects[oid]
            obj.age += 1
            # Young survivors age toward promotion; anything already past
            # the threshold (including mixed-cset old objects) re-lands in
            # old regions.
            promote = promote_everything or obj.age >= cfg.tenure_threshold
            kind = RegionKind.OLD if promote else RegionKind.SURVIVOR
            placed = self._try_bump(kind, oid, obj.size)
            if placed is None:
                raise OutOfMemory(
                    f"{self.name}: evacuation failure for {obj.size} bytes"
                )
            copied += obj.size
        return self._parallel_pause(
            costs.trace_cost(copied) + costs.copy_cost(copied)
        )

    def _sweep_humongous(self, live: set) -> None:
        for region in self._regions.by_kind(RegionKind.HUMONGOUS):
            if region.humongous_head != region.index:
                continue
            head_objects = [oid for oid, _ in region.objects]
            if any(oid in live for oid in head_objects):
                continue
            for member in self._regions.humongous_span(region.index):
                member.reset()
            for oid in head_objects:
                self._where.pop(oid, None)

    def _collect_dead(self, live: set) -> None:
        _count, _bytes = self.graph.sweep(live)
        for oid in list(self._where):
            if oid not in self.graph.objects:
                del self._where[oid]

    # -------------------------------------------------------------- reclaim

    def reclaim(self, aggressive: bool = False) -> ReclaimOutcome:
        """§7 adapter: run a full collection, then release every FREE
        region's pages and the allocated regions' free tails."""
        uss_before = self.uss()
        gc_seconds = self._full_gc(aggressive)
        released_pages = 0
        for region in self._regions.regions:
            base = self._region_base(region)
            if region.kind is RegionKind.FREE:
                released_pages += self.space.discard(base, REGION_SIZE)
                region.touched = 0
            else:
                tail = page_ceil(region.top)
                if REGION_SIZE > tail:
                    released_pages += self.space.discard(
                        base + tail, REGION_SIZE - tail
                    )
                    region.touched = min(region.touched, tail)
        discarded = released_pages * PAGE_SIZE
        uss_after = self.uss()
        return ReclaimOutcome(
            live_bytes=self.last_gc_live_bytes,
            released_bytes=max(discarded, uss_before - uss_after),
            cpu_seconds=gc_seconds + costs.release_cost(discarded),
            uss_before=uss_before,
            uss_after=uss_after,
            aggressive=aggressive,
        )

    # -------------------------------------------------------------- metrics

    def heap_stats(self) -> HeapStats:
        """Committed/used/live-estimate snapshot."""
        self._memo_materialize()
        return HeapStats(
            committed=self._regions.committed_kinds_bytes(),
            used=self._regions.used_bytes(),
            live_estimate=self.last_gc_live_bytes,
        )

    def _touch_live_heap(self) -> float:
        spans = []
        for region in self._regions.regions:
            if region.kind is RegionKind.FREE:
                continue
            base = self._region_base(region)
            for oid, offset in region.objects:
                obj = self.graph.objects.get(oid)
                if obj is not None:
                    spans.append((base + offset, min(obj.size, REGION_SIZE - offset)))
        return self._touch_object_spans(spans)

    def _heap_mappings(self) -> List[Mapping]:
        start = self._heap.start
        end = start + len(self._regions.regions) * REGION_SIZE
        return [
            m for m in self.space.mappings() if m.start < end and m.end > start
        ]
