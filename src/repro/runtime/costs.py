"""Cost-model constants shared by all runtime simulators.

Times are seconds of CPU.  The absolute values are calibrated to commodity
server hardware (the paper's Xeon Gold 6138) so end-to-end shapes -- GC
pauses in the low milliseconds, reclaim CPU in the paper's "10 ms" ballpark
(§4.5.2), post-reclaim fault overhead averaging single-digit percent
(Figure 13) -- come out in the right regime.
"""

from repro.mem.layout import MIB

#: Tracing cost per MiB of live data (mark phase of any tracing collector).
TRACE_SECONDS_PER_MIB = 0.0011

#: Copy/evacuation cost per MiB of surviving data (young GC, compaction).
COPY_SECONDS_PER_MIB = 0.0032

#: Sweep cost per MiB of heap swept without copying (V8 mark-sweep).
SWEEP_SECONDS_PER_MIB = 0.0004

#: Fixed per-collection overhead (safepoint, root scanning).
GC_BASE_SECONDS = 0.0006

#: A zero-fill (minor) page fault.
MINOR_FAULT_SECONDS = 2.0e-6

#: A swap-in (major) page fault -- SSD-backed swap under load.
MAJOR_FAULT_SECONDS = 2.5e-4

#: madvise/munmap cost per MiB released back to the OS.
RELEASE_SECONDS_PER_MIB = 0.00012


def trace_cost(live_bytes: int) -> float:
    """CPU seconds to trace ``live_bytes`` of reachable data."""
    return GC_BASE_SECONDS + TRACE_SECONDS_PER_MIB * (live_bytes / MIB)


def copy_cost(copied_bytes: int) -> float:
    """CPU seconds to evacuate ``copied_bytes`` of survivors."""
    return COPY_SECONDS_PER_MIB * (copied_bytes / MIB)


def sweep_cost(swept_bytes: int) -> float:
    """CPU seconds to sweep ``swept_bytes`` of heap."""
    return SWEEP_SECONDS_PER_MIB * (swept_bytes / MIB)


def fault_cost(minor: int, major: int = 0) -> float:
    """CPU seconds to service the given fault counts."""
    return minor * MINOR_FAULT_SECONDS + major * MAJOR_FAULT_SECONDS


def release_cost(released_bytes: int) -> float:
    """CPU seconds to return ``released_bytes`` to the OS."""
    return RELEASE_SECONDS_PER_MIB * (released_bytes / MIB)
