"""Go runtime simulator (the second §7 generalization)."""

from repro.runtime.golang.runtime import GoConfig, GoRuntime

__all__ = ["GoConfig", "GoRuntime"]
