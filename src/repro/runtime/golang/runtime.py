"""The Go runtime simulator, per the paper's §7 discussion.

Go's heap lives in a few contiguous arenas; the pacer triggers a
mark-sweep when the heap reaches ``(1 + GOGC/100)`` times the live size of
the previous cycle.  Crucially, swept memory is *not* returned to the OS:
the background scavenger hands free pages back gradually (minutes of
retention) -- and the scavenger is a goroutine, so a frozen instance never
runs it.  That is exactly the frozen-garbage shape again, and §7's recipe
applies: Desiccant runs the collector, then uses the runtime's span
structures to find free regions and releases them immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mem.layout import KIB, MIB, PAGE_SIZE, page_ceil
from repro.mem.vmm import Mapping
from repro.runtime import costs
from repro.runtime.base import (
    HeapStats,
    LibrarySpec,
    ManagedRuntime,
    OutOfMemory,
    ReclaimOutcome,
    RuntimeConfig,
)
from repro.runtime.v8.chunks import ChunkedSpace

#: Modelled arena granularity (real Go uses 64 MiB arenas carved into 8 KiB
#: spans; 4 MiB keeps the free-page math meaningful at FaaS scale).
ARENA_SIZE = 4 * MIB


@dataclass
class GoConfig(RuntimeConfig):
    """Go-specific knobs."""

    #: The GOGC pacing knob: collect when heap = live * (1 + gogc/100).
    gogc: int = 100
    #: Smallest heap that triggers the pacer (Go's 4 MiB minimum).
    min_trigger: int = 4 * MIB
    #: Background-scavenger retention: free memory younger than this stays
    #: resident (and the scavenger never runs while frozen anyway).
    scavenger_retention_seconds: float = 300.0
    large_object_threshold: int = 512 * KIB
    boot_seconds: float = 0.04  # static binaries start fast
    native_boot_bytes: int = 4 * MIB
    native_init_bytes: int = 1 * MIB


class GoRuntime(ManagedRuntime):
    """Arena allocator + GOGC-paced mark-sweep, no eager release."""

    language = "go"
    default_libraries = (
        # Statically linked: one binary image holds runtime and function.
        LibrarySpec("/var/task/handler-go", 16 * MIB, touched_fraction=0.5),
    )

    def __init__(self, name, config: GoConfig | None = None, **kwargs) -> None:
        super().__init__(name, config or GoConfig(), **kwargs)
        self._arenas: ChunkedSpace | None = None
        self._large: Dict[int, Mapping] = {}
        self._next_gc = 0
        self.gc_count = 0

    def _setup_heap(self) -> float:
        cfg: GoConfig = self.config  # type: ignore[assignment]
        self._arenas = ChunkedSpace(
            "go-arena",
            self.space,
            chunk_size=ARENA_SIZE,
            unmap_empty_on_sweep=False,  # the sweeper keeps spans for reuse
        )
        self._next_gc = cfg.min_trigger
        return 0.0

    # ------------------------------------------------------------ placement

    def _place(self, oid: int) -> None:
        cfg: GoConfig = self.config  # type: ignore[assignment]
        size = self.graph.objects[oid].size
        if self._heap_used() + size >= self._next_gc:
            self.collect(full=True)
        if size >= cfg.large_object_threshold:
            self._place_large(oid, size)
            return
        if self._over_budget(size):
            self.collect(full=True)
            if self._over_budget(size):
                raise OutOfMemory(f"{self.name}: arenas over heap budget")
        chunk, offset, _new = self._arenas.allocate(oid, size)
        counts = self.space.touch(chunk.mapping.start + PAGE_SIZE + offset, size)
        self._charge_faults(counts.minor, counts.major)

    def _place_large(self, oid: int, size: int) -> None:
        if self._over_budget(size):
            self.collect(full=True)
            if self._over_budget(size):
                raise OutOfMemory(f"{self.name}: large allocation over budget")
        mapping = self.space.mmap(page_ceil(size), name="[go large]")
        counts = self.space.touch(mapping.start, size)
        self._charge_faults(counts.minor, counts.major)
        self._large[oid] = mapping

    def _supports_cohorts(self, unit: int) -> bool:
        cfg: GoConfig = self.config  # type: ignore[assignment]
        return unit < cfg.large_object_threshold

    def _alloc_cohort_fast(self, count: int, unit: int, scope: str) -> List[int]:
        """Segment-wise bulk placement; see the CPython twin for the
        scheme.  The difference is the trigger: Go's pacer compares
        ``heap_used + size`` against the GOGC target before every
        placement, and heap_used grows with each member, so the segment
        bound solves ``used + m * unit < next_gc`` instead of reading a
        since-last-GC counter."""
        cfg: GoConfig = self.config  # type: ignore[assignment]
        oids: List[int] = []
        placed = 0
        while placed < count:
            if self._heap_used() + unit >= self._next_gc or self._over_budget(unit):
                oids.append(self.alloc(unit, scope=scope))
                placed += 1
                continue
            members = min(
                count - placed,
                (self._next_gc - self._heap_used() - 1) // unit,
            )
            chunk = None
            for candidate in reversed(self._arenas.chunks):
                if candidate.fits(unit):
                    chunk = candidate
                    break
            if chunk is None:
                members = min(members, self._arenas.payload // unit)
                large = sum(m.length for m in self._large.values())
                if self._arenas.committed + self._arenas.chunk_size + large + unit > cfg.max_heap:
                    members = 1
            else:
                members = min(members, chunk.free // unit)
            oid = self.graph.new_cohort(members, unit)

            def place(oid: int = oid, members: int = members) -> None:
                chunk, offset, _new = self._arenas.allocate(oid, members * unit)
                addr = chunk.mapping.start + PAGE_SIZE + offset
                self._touch_cohort_segment(chunk.mapping, addr, unit, members)

            self._place_cohort_segment(oid, scope, place)
            oids.append(oid)
            placed += members
        return oids

    def _heap_used(self) -> int:
        return self._arenas.used + sum(m.length for m in self._large.values())

    def _over_budget(self, incoming: int) -> bool:
        cfg: GoConfig = self.config  # type: ignore[assignment]
        large = sum(m.length for m in self._large.values())
        return self._arenas.committed + large + incoming > cfg.max_heap

    # ------------------------------------------------------------------- GC

    def collect(self, full: bool = True, aggressive: bool = False) -> float:
        """GOGC-paced mark-sweep; swept arenas stay resident for reuse."""
        self._check_booted()
        cfg: GoConfig = self.config  # type: ignore[assignment]
        live = self.graph.reachable(include_weak=not aggressive)
        _count, collected = self.graph.sweep(live)
        live_sizes = {oid: obj.size for oid, obj in self.graph.objects.items()}
        self._arenas.sweep(live_sizes)  # keeps emptied arenas mapped
        for oid in [o for o in self._large if o not in self.graph.objects]:
            mapping = self._large.pop(oid)
            self.space.munmap(mapping.start, mapping.length)
        live_bytes = sum(live_sizes.values())
        self._next_gc = max(
            cfg.min_trigger, int(live_bytes * (1 + cfg.gogc / 100.0))
        )
        seconds = self._parallel_pause(
            costs.trace_cost(live_bytes) + costs.sweep_cost(self._arenas.committed)
        )
        self.gc_count += 1
        self._record_gc("full", seconds, collected, live_bytes)
        return seconds

    def scavenge(self, idle_seconds: float) -> int:
        """The background scavenger: release free pages only after the
        retention period -- i.e. effectively never for a frozen instance.
        Returns pages released."""
        cfg: GoConfig = self.config  # type: ignore[assignment]
        if idle_seconds < cfg.scavenger_retention_seconds:
            return 0
        self._memo_materialize()
        live_sizes = {oid: obj.size for oid, obj in self.graph.objects.items()}
        return self._arenas.release_free_pages(live_sizes)

    # -------------------------------------------------------------- reclaim

    def reclaim(self, aggressive: bool = False) -> ReclaimOutcome:
        """§7: collect, then do the scavenger's job immediately -- release
        every free arena page back to the OS."""
        uss_before = self.uss()
        gc_seconds = self.collect(full=True, aggressive=aggressive)
        live_sizes = {oid: obj.size for oid, obj in self.graph.objects.items()}
        released_pages = self._arenas.release_free_pages(live_sizes)
        discarded = released_pages * PAGE_SIZE
        uss_after = self.uss()
        return ReclaimOutcome(
            live_bytes=self.last_gc_live_bytes,
            released_bytes=max(discarded, uss_before - uss_after),
            cpu_seconds=gc_seconds + costs.release_cost(discarded),
            uss_before=uss_before,
            uss_after=uss_after,
            aggressive=aggressive,
        )

    # -------------------------------------------------------------- metrics

    def heap_stats(self) -> HeapStats:
        """Committed/used/live-estimate snapshot."""
        self._memo_materialize()
        large = sum(m.length for m in self._large.values())
        return HeapStats(
            committed=self._arenas.committed + large,
            used=self._arenas.used + large,
            live_estimate=self.last_gc_live_bytes,
        )

    def _touch_live_heap(self) -> float:
        spans = []
        for chunk in self._arenas.chunks:
            base = chunk.mapping.start + PAGE_SIZE
            for oid, offset in chunk.objects:
                obj = self.graph.objects.get(oid)
                if obj is not None:
                    spans.append((base + offset, obj.size))
        for mapping in self._large.values():
            spans.append((mapping.start, mapping.length))
        return self._touch_object_spans(spans)

    def _heap_mappings(self) -> List[Mapping]:
        result = [chunk.mapping for chunk in self._arenas.chunks]
        result.extend(self._large.values())
        return result
