"""V8's chunked old space.

Spaces are built from discontiguous 256 KiB chunks (Figure 3b).  Each chunk
donates its first 4 KiB page to self-describing metadata, which can never be
released (§4.4 -- unmapping the rest still frees 98.4% of the chunk).  The
old space is swept, not compacted, so after a collection live objects keep
their offsets and the free memory is *fragmented*: only pages not covered by
any live object can be returned to the OS, which the paper cites as the
remaining gap between Desiccant and the ideal for JavaScript.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mem.layout import CHUNK_SIZE, PAGE_SIZE
from repro.mem.vmm import Mapping, VirtualAddressSpace

#: Bytes of a chunk usable for objects (everything after the metadata page).
CHUNK_PAYLOAD = CHUNK_SIZE - PAGE_SIZE


@dataclass
class Chunk:
    """One chunk: a mapping plus bump state and object offsets."""

    mapping: Mapping
    top: int = 0  # bytes of payload bump-allocated
    #: (oid, payload offset) pairs for resident objects, address order.
    objects: List[Tuple[int, int]] = field(default_factory=list)
    #: Usable bytes (mapping size minus the metadata page).
    payload: int = CHUNK_PAYLOAD

    @property
    def free(self) -> int:
        """Unallocated payload bytes."""
        return self.payload - self.top

    def fits(self, size: int) -> bool:
        """Whether ``size`` bytes still fit in this chunk."""
        return size <= self.free

    def bump(self, oid: int, size: int) -> int:
        """Place ``oid`` at the current top; returns its payload offset."""
        if not self.fits(size):
            raise AssertionError(f"chunk bump of {size} exceeds free {self.free}")
        offset = self.top
        self.objects.append((oid, offset))
        self.top += size
        return offset

    def __getstate__(self) -> Tuple[object, ...]:
        """Compact pickle state (a flat tuple, no keyed ``__dict__``):
        chunks dominate the V8 portion of memo effect payloads and epoch
        checkpoints, and the flat form dumps faster at fewer bytes."""
        return (self.mapping, self.top, self.objects, self.payload)

    def __setstate__(self, state: Tuple[object, ...]) -> None:
        self.mapping, self.top, self.objects, self.payload = state

    def live_page_mask(self, sizes: Dict[int, int]) -> List[bool]:
        """Which payload pages hold live data (index 0 == page after metadata).

        ``sizes`` maps oid -> object size for the objects still alive.
        """
        n_pages = self.payload // PAGE_SIZE
        mask = [False] * n_pages
        for oid, offset in self.objects:
            size = sizes.get(oid)
            if size is None:
                continue
            first = offset // PAGE_SIZE
            last = (offset + size - 1) // PAGE_SIZE
            for page in range(first, min(last + 1, n_pages)):
                mask[page] = True
        return mask


class ChunkedSpace:
    """A growable set of chunks with bump allocation into the freshest one.

    Parameterized so it also models allocators with the same shape at other
    granularities: CPython's 256 KiB arenas and Go's heap arenas (§7).
    ``unmap_empty_on_sweep=False`` keeps emptied chunks resident for reuse
    -- Go's behaviour, where only the (paused-while-frozen) background
    scavenger ever returns memory.
    """

    def __init__(
        self,
        name: str,
        space: VirtualAddressSpace,
        chunk_size: int = CHUNK_SIZE,
        unmap_empty_on_sweep: bool = True,
    ) -> None:
        if chunk_size % PAGE_SIZE or chunk_size <= PAGE_SIZE:
            raise ValueError("chunk size must be several whole pages")
        self.name = name
        self.space = space
        self.chunk_size = chunk_size
        self.payload = chunk_size - PAGE_SIZE
        self.unmap_empty_on_sweep = unmap_empty_on_sweep
        self.chunks: List[Chunk] = []
        self.total_chunks_allocated = 0

    @property
    def committed(self) -> int:
        return len(self.chunks) * self.chunk_size

    @property
    def used(self) -> int:
        return sum(c.top for c in self.chunks)

    def allocate(self, oid: int, size: int) -> Tuple[Chunk, int, bool]:
        """Place an object, returning ``(chunk, offset, chunk_was_new)``."""
        if size > self.payload:
            raise ValueError(
                f"{size}-byte object exceeds chunk payload; use large-object space"
            )
        for chunk in reversed(self.chunks):
            if chunk.fits(size):
                return chunk, chunk.bump(oid, size), False
        chunk = self._new_chunk()
        return chunk, chunk.bump(oid, size), True

    def _new_chunk(self) -> Chunk:
        mapping = self.space.mmap(self.chunk_size, name=f"[{self.name} chunk]")
        # The metadata page is written immediately on chunk creation.
        self.space.touch(mapping.start, PAGE_SIZE)
        chunk = Chunk(mapping, payload=self.payload)
        self.chunks.append(chunk)
        self.total_chunks_allocated += 1
        return chunk

    def sweep(self, live_sizes: Dict[int, int]) -> int:
        """Drop dead objects; handle chunks that became empty.

        Returns the number of chunks unmapped.  Live objects keep their
        offsets (no compaction), and a chunk's ``top`` only retreats when the
        dead objects formed its tail -- the fragmentation the paper notes.
        With ``unmap_empty_on_sweep=False`` an emptied chunk is reset for
        reuse but its dirty pages stay resident (frozen garbage).
        """
        freed = 0
        remaining: List[Chunk] = []
        for chunk in self.chunks:
            chunk.objects = [
                (oid, off) for oid, off in chunk.objects if oid in live_sizes
            ]
            if not chunk.objects:
                if self.unmap_empty_on_sweep:
                    self.space.munmap(chunk.mapping.start, chunk.mapping.length)
                    freed += 1
                    continue
                chunk.top = 0
                remaining.append(chunk)
                continue
            last_oid, last_off = chunk.objects[-1]
            chunk.top = min(chunk.top, last_off + live_sizes[last_oid])
            remaining.append(chunk)
        self.chunks = remaining
        return freed

    def release_free_pages(self, live_sizes: Dict[int, int]) -> int:
        """Discard payload pages not covered by live objects.

        The metadata page always stays.  Returns pages released.
        """
        released = 0
        for chunk in self.chunks:
            mask = chunk.live_page_mask(live_sizes)
            base = chunk.mapping.start + PAGE_SIZE  # skip metadata
            run_start: Optional[int] = None
            for index, live in enumerate(mask + [True]):  # sentinel ends runs
                if not live and run_start is None:
                    run_start = index
                elif live and run_start is not None:
                    released += self.space.discard(
                        base + run_start * PAGE_SIZE,
                        (index - run_start) * PAGE_SIZE,
                    )
                    run_start = None
        return released
