"""V8's young-generation resize policy (§3.2.2).

The two halves the paper dissects:

* **Expanding happens before GC.**  When the live bytes found by scavenges
  since the last expansion accumulate past the current young size, the
  generation doubles.  Under FaaS's bursty execution this fires repeatedly
  -- fft's young generation reaches the 32 MiB cap on a 256 MiB heap and
  128 MiB on 1 GiB (Figure 12d).
* **Shrinking happens after (full) GC, but only when the allocation rate is
  low.**  A freshly-exited function has just allocated heavily, so eager
  ``global.gc`` never shrinks -- the young generation stays inflated into
  the freeze, which is exactly why eager GC fails for fft (Figure 2b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.layout import KIB, MIB, page_ceil


@dataclass(frozen=True)
class V8YoungPolicy:
    """Tunables for the semispace sizing decisions."""

    #: Smallest semispace (V8's kMinSemiSpaceSize ballpark).
    semi_min: int = 512 * KIB
    #: Allocation-rate threshold below which shrinking is allowed, expressed
    #: as young-space bytes allocated since the last full collection.
    shrink_rate_threshold: int = 1 * MIB

    def semi_max(self, max_heap: int) -> int:
        """Semispace cap: young generation may reach ``max_heap / 8``
        (two semispaces), i.e. 32 MiB of young space on a 256 MiB heap."""
        return page_ceil(max(self.semi_min, max_heap // 16))

    def should_expand(self, survived_since_expand: int, semi_committed: int) -> bool:
        """Pre-GC doubling check."""
        return survived_since_expand > semi_committed

    def expanded(self, semi_committed: int, max_heap: int) -> int:
        """The doubled (capped) semispace size."""
        return min(semi_committed * 2, self.semi_max(max_heap))

    def should_shrink(self, allocated_since_full_gc: int) -> bool:
        """Post-GC shrink gate: only when the mutator has gone quiet."""
        return allocated_since_full_gc < self.shrink_rate_threshold

    def shrunk(self, live_young: int) -> int:
        """Shrink target: twice the live byte size (page aligned)."""
        return page_ceil(max(2 * live_young, self.semi_min))
