"""V8 simulator (the §3.2.2 runtime): scavenger + mark-sweep over chunks."""

from repro.runtime.v8.runtime import V8Config, V8Runtime
from repro.runtime.v8.chunks import Chunk, ChunkedSpace
from repro.runtime.v8.policy import V8YoungPolicy

__all__ = ["V8Config", "V8Runtime", "Chunk", "ChunkedSpace", "V8YoungPolicy"]
