"""The V8 runtime simulator.

Layout: two reserved semispace mappings (``from`` serves allocation, per the
paper's footnote), an old space of 256 KiB chunks, and a large-object space
of dedicated mappings.  Scavenges copy survivors between semispaces and
promote twice-surviving objects to old chunks; full collections mark-sweep
the old space without compaction and evacuate the young generation.

The §3.2.2 behaviours the characterization depends on live in
:class:`V8YoungPolicy` (doubling before GC, rate-gated shrinking after GC)
and :class:`ChunkedSpace` (unreleasable metadata pages, fragmentation).
JIT code units are weak-rooted heap objects, so aggressive collections
deoptimize (§4.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.mem.layout import KIB, MIB, PAGE_SIZE, Protection, page_ceil
from repro.mem.vmm import Mapping
from repro.runtime import costs
from repro.runtime.base import (
    HeapStats,
    LibrarySpec,
    ManagedRuntime,
    OutOfMemory,
    ReclaimOutcome,
    RuntimeConfig,
)
from repro.runtime.hotspot.spaces import ContiguousSpace
from repro.runtime.jit import CodeCache
from repro.runtime.v8.chunks import CHUNK_PAYLOAD, ChunkedSpace
from repro.runtime.v8.policy import V8YoungPolicy


@dataclass
class V8Config(RuntimeConfig):
    """V8-specific knobs on top of the common runtime config."""

    young_policy: V8YoungPolicy = field(default_factory=V8YoungPolicy)
    #: Scavenges survived before promotion (V8 promotes on the second copy).
    tenure_threshold: int = 2
    #: Objects at or above this size go to the large-object space.
    large_object_threshold: int = 128 * KIB
    #: §5.2's noted improvement: compact the old space during reclaim
    #: (via the free list) so fragmented chunk pages can be released too.
    compact_on_reclaim: bool = False
    boot_seconds: float = 0.15
    native_boot_bytes: int = 8 * MIB
    native_init_bytes: int = 4 * MIB


class V8Runtime(ManagedRuntime):
    """Semispace scavenger + chunked mark-sweep old space."""

    language = "javascript"
    default_libraries = (
        LibrarySpec("/usr/bin/node", 74 * MIB, touched_fraction=0.28),
        LibrarySpec("/usr/lib/node-deps.so", 9 * MIB, touched_fraction=0.5),
    )

    def __init__(self, name, config: V8Config | None = None, **kwargs) -> None:
        super().__init__(name, config or V8Config(), **kwargs)
        self.jit = CodeCache(self, in_heap=True)
        self._from: ContiguousSpace | None = None
        self._to: ContiguousSpace | None = None
        self._semi_maps: Dict[str, Mapping] = {}
        self._old: ChunkedSpace | None = None
        self._large: Dict[int, Mapping] = {}
        self._young_alloc_since_full_gc = 0
        self._survived_since_expand = 0
        self._in_gc = False
        #: Old-space growth limit: a mark-sweep runs when the old space
        #: outgrows it (V8's heap-growing policy).  Reset after each full
        #: collection to a multiple of the live size.
        self._old_limit = 16 * MIB
        #: Cumulative bytes faulted in by old-space placement (promotion
        #: data pages); reclaim takes a delta across its GC to report how
        #: much of any USS growth is evacuation, not a leak.
        self._evac_fault_bytes = 0
        self.scavenge_count = 0
        self.full_gc_count = 0

    # ------------------------------------------------------------------ heap

    def _setup_heap(self) -> float:
        cfg: V8Config = self.config  # type: ignore[assignment]
        semi_max = cfg.young_policy.semi_max(cfg.max_heap)
        for label in ("semi-a", "semi-b"):
            self._semi_maps[label] = self.space.mmap(
                semi_max, prot=Protection.NONE, name=f"[v8 {label}]"
            )
        self._from = ContiguousSpace("semi-a", 0, semi_max)
        self._to = ContiguousSpace("semi-b", 0, semi_max)
        initial = min(page_ceil(2 * cfg.young_policy.semi_min), semi_max)
        for semi in (self._from, self._to):
            self._set_semi_committed(semi, initial)
        self._old = ChunkedSpace("old", self.space)
        return 0.0

    def _semi_base(self, semi: ContiguousSpace) -> int:
        return self._semi_maps[semi.name].start

    def _set_semi_committed(self, semi: ContiguousSpace, target: int) -> None:
        target = page_ceil(min(max(target, semi.top), semi.reserved))
        if target == semi.committed:
            return
        base = self._semi_base(semi)
        if target > semi.committed:
            self.space.commit(base + semi.committed, target - semi.committed)
        else:
            self.space.uncommit(base + target, semi.committed - target)
            semi.touched = min(semi.touched, target)
        semi.committed = target

    def _materialize_semi(self, semi: ContiguousSpace) -> None:
        if semi.top <= semi.touched:
            return
        counts = self.space.touch(
            self._semi_base(semi) + semi.touched, semi.top - semi.touched
        )
        self._charge_faults(counts.minor, counts.major)
        semi.touched = page_ceil(semi.top)

    # ------------------------------------------------------------ placement

    def _place(self, oid: int) -> None:
        cfg: V8Config = self.config  # type: ignore[assignment]
        size = self.graph.objects[oid].size
        if size >= cfg.large_object_threshold:
            self._place_large(oid, size)
            return
        if not self._from.fits(size):
            self.collect(full=False)
        while not self._from.fits(size) and self._from.committed < self._from.reserved:
            self._set_semi_committed(
                self._from,
                cfg.young_policy.expanded(self._from.committed, cfg.max_heap),
            )
            self._set_semi_committed(self._to, self._from.committed)
        if not self._from.fits(size):
            self._place_old(oid, size)
            return
        self._from.bump(oid, size)
        self._materialize_semi(self._from)
        self._young_alloc_since_full_gc += size

    def _place_old(self, oid: int, size: int) -> None:
        # Promotions during a collection must not re-enter the collector.
        if not self._in_gc and self._heap_over_budget(size):
            self.collect(full=True)
            if self._heap_over_budget(size):
                raise OutOfMemory(f"{self.name}: old space over heap budget")
        chunk, offset, _new = self._old.allocate(oid, size)
        counts = self.space.touch(chunk.mapping.start + PAGE_SIZE + offset, size)
        self._evac_fault_bytes += (counts.minor + counts.major) * PAGE_SIZE
        self._charge_faults(counts.minor, counts.major)

    def _place_large(self, oid: int, size: int) -> None:
        if self._heap_over_budget(size):
            self.collect(full=True)
            if self._heap_over_budget(size):
                raise OutOfMemory(f"{self.name}: large-object space over budget")
        mapping = self.space.mmap(page_ceil(size), name="[v8 large]")
        counts = self.space.touch(mapping.start, size)
        self._charge_faults(counts.minor, counts.major)
        self._large[oid] = mapping

    def _heap_over_budget(self, incoming: int) -> bool:
        cfg: V8Config = self.config  # type: ignore[assignment]
        return self._committed_heap() + incoming > cfg.max_heap

    def _committed_heap(self) -> int:
        large = sum(m.length for m in self._large.values())
        return self._from.committed + self._to.committed + self._old.committed + large

    # ------------------------------------------------------------------- GC

    def collect(self, full: bool, aggressive: bool = False) -> float:
        """Scavenge (``full=False``) or mark-sweep the whole heap."""
        self._check_booted()
        if full:
            return self._full_gc(aggressive)
        return self._scavenge()

    def _scavenge(self) -> float:
        cfg: V8Config = self.config  # type: ignore[assignment]
        policy = cfg.young_policy
        self._in_gc = True
        # Pre-GC expansion (§3.2.2): survived bytes accumulated past the
        # current semispace size double the young generation.
        if policy.should_expand(self._survived_since_expand, self._from.committed):
            target = policy.expanded(self._from.committed, cfg.max_heap)
            self._set_semi_committed(self._from, target)
            self._set_semi_committed(self._to, target)
            self._survived_since_expand = 0

        live = self.graph.reachable(include_weak=True)
        young = list(self._from.objects)
        self._to.reset()
        copied = 0
        promoted = 0
        collected = 0
        for oid in young:
            if oid not in live:
                collected += self.graph.objects[oid].size
                del self.graph.objects[oid]
                continue
            obj = self.graph.objects[oid]
            obj.age += 1
            if obj.age >= cfg.tenure_threshold or not self._to.fits(obj.size):
                self._place_old(oid, obj.size)
                promoted += obj.size
            else:
                self._to.bump(oid, obj.size)
                copied += obj.size
        self._materialize_semi(self._to)
        self._from.reset()
        self._from, self._to = self._to, self._from
        self._survived_since_expand += copied + promoted

        total_live = sum(
            self.graph.objects[oid].size for oid in live if oid in self.graph.objects
        )
        seconds = self._parallel_pause(
            costs.trace_cost(copied + promoted) + costs.copy_cost(copied + promoted)
        )
        self._in_gc = False
        self.scavenge_count += 1
        self._record_gc("young", seconds, collected, total_live)
        # Heap-growing policy: promotions that push the old space past its
        # limit schedule a mark-sweep.
        old_footprint = self._old.committed + sum(
            m.length for m in self._large.values()
        )
        if old_footprint > self._old_limit:
            seconds += self._full_gc(aggressive=False)
        return seconds

    def _full_gc(self, aggressive: bool) -> float:
        cfg: V8Config = self.config  # type: ignore[assignment]
        self._in_gc = True
        live = self.graph.reachable(include_weak=not aggressive)
        _count, collected = self.graph.sweep(live)

        # Evacuate the young generation: survivors promote to old chunks.
        promoted = 0
        for oid in list(self._from.objects) + list(self._to.objects):
            if oid in self.graph.objects:
                self._place_old(oid, self.graph.objects[oid].size)
                promoted += self.graph.objects[oid].size
        self._from.reset()
        self._to.reset()

        # Sweep the old space (frees empty chunks) and the large objects.
        live_sizes = {oid: obj.size for oid, obj in self.graph.objects.items()}
        self._old.sweep(live_sizes)
        for oid in [o for o in self._large if o not in self.graph.objects]:
            mapping = self._large.pop(oid)
            self.space.munmap(mapping.start, mapping.length)

        live_bytes = sum(live_sizes.values())
        seconds = self._parallel_pause(
            costs.trace_cost(live_bytes)
            + costs.sweep_cost(self._old.committed)
            + costs.copy_cost(promoted)
        )

        # Post-GC resize: shrink only when the allocation rate is low.
        if cfg.young_policy.should_shrink(self._young_alloc_since_full_gc):
            target = cfg.young_policy.shrunk(promoted)
            self._set_semi_committed(self._from, target)
            self._set_semi_committed(self._to, target)
            # V8 releases the from-space free region on shrink (§4.4 notes
            # from space and old generation release automatically).
            free_begin = page_ceil(self._from.top)
            if self._from.committed > free_begin:
                self.space.discard(
                    self._semi_base(self._from) + free_begin,
                    self._from.committed - free_begin,
                )
                self._from.touched = min(self._from.touched, free_begin)
        self._young_alloc_since_full_gc = 0
        self._old_limit = max(16 * MIB, int(1.7 * live_bytes))

        self._in_gc = False
        self.full_gc_count += 1
        self._record_gc("full", seconds, collected, live_bytes)
        return seconds

    # -------------------------------------------------------------- reclaim

    def reclaim(self, aggressive: bool = False) -> ReclaimOutcome:
        """``global.reclaim`` (§4.4): GC, let the resize policy shrink (the
        instance is frozen, so the allocation rate is zero), then release
        the remaining free pages -- the to space, and free pages inside
        partially-occupied old chunks."""
        cfg: V8Config = self.config  # type: ignore[assignment]
        uss_before = self.uss()
        self._young_alloc_since_full_gc = 0  # frozen: no recent allocation
        evac_base = self._evac_fault_bytes
        chunks_base = self._old.total_chunks_allocated
        gc_seconds = self._full_gc(aggressive)
        if cfg.compact_on_reclaim:
            gc_seconds += self._compact_old()
        # Evacuating young survivors into the old space materializes fresh
        # pages (the promoted data plus each new chunk's metadata page)
        # while the vacated semispace pages are released below -- so the
        # reclaim can legitimately end slightly above its starting USS.
        evacuated_bytes = (
            self._evac_fault_bytes
            - evac_base
            + (self._old.total_chunks_allocated - chunks_base) * PAGE_SIZE
        )

        released_pages = 0
        # The to space is unused until the next scavenge: release it all.
        if self._to.committed > 0:
            released_pages += self.space.discard(
                self._semi_base(self._to), self._to.committed
            )
            self._to.touched = 0
        # From-space free region (beyond any survivors).
        free_begin = page_ceil(self._from.top)
        if self._from.committed > free_begin:
            released_pages += self.space.discard(
                self._semi_base(self._from) + free_begin,
                self._from.committed - free_begin,
            )
            self._from.touched = min(self._from.touched, free_begin)
        # Fragmented free pages inside live old chunks (metadata pages stay).
        live_sizes = {oid: obj.size for oid, obj in self.graph.objects.items()}
        released_pages += self._old.release_free_pages(live_sizes)

        discarded = released_pages * PAGE_SIZE
        seconds = gc_seconds + costs.release_cost(discarded)
        uss_after = self.uss()
        return ReclaimOutcome(
            live_bytes=self.last_gc_live_bytes,
            # Most of V8's release happens through the shrink's uncommit
            # and freed chunks' munmap, not the explicit discards, so
            # report the end-to-end delta.
            released_bytes=max(discarded, uss_before - uss_after),
            cpu_seconds=seconds,
            uss_before=uss_before,
            uss_after=uss_after,
            aggressive=aggressive,
            evacuated_bytes=evacuated_bytes,
        )

    def _compact_old(self) -> float:
        """Repack old-space survivors densely into fresh chunks.

        The paper notes Desiccant's JS gap to the ideal comes from
        fragmented free memory the mark-sweep leaves inside chunks, and
        that integrating with V8's free list would eliminate it; this is
        that integration, modelled as a relocating pass.
        """
        movers = [
            (oid, self.graph.objects[oid].size)
            for chunk in self._old.chunks
            for oid, _off in chunk.objects
            if oid in self.graph.objects
        ]
        for chunk in list(self._old.chunks):
            self.space.munmap(chunk.mapping.start, chunk.mapping.length)
        self._old.chunks.clear()
        moved = 0
        for oid, size in movers:
            chunk, offset, _new = self._old.allocate(oid, size)
            counts = self.space.touch(
                chunk.mapping.start + PAGE_SIZE + offset, size
            )
            self._evac_fault_bytes += (counts.minor + counts.major) * PAGE_SIZE
            self._charge_faults(counts.minor, counts.major)
            moved += size
        return costs.copy_cost(moved)

    # -------------------------------------------------------------- metrics

    def heap_stats(self) -> HeapStats:
        """Committed/used/live-estimate snapshot."""
        self._memo_materialize()
        used = (
            self._from.top
            + self._old.used
            + sum(m.length for m in self._large.values())
        )
        return HeapStats(
            committed=self._committed_heap(),
            used=used,
            live_estimate=self.last_gc_live_bytes,
        )

    def _touch_live_heap(self) -> float:
        seconds = 0.0
        if self._from.top > 0:
            counts = self.space.touch(self._semi_base(self._from), self._from.top)
            seconds += self._charge_faults(counts.minor, counts.major)
        # Span per-object, not per-chunk: a freshly-reclaimed chunk has
        # released holes between live objects that the mutator never reads.
        spans = []
        for chunk in self._old.chunks:
            base = chunk.mapping.start + PAGE_SIZE
            for oid, offset in chunk.objects:
                obj = self.graph.objects.get(oid)
                if obj is not None:
                    spans.append((base + offset, obj.size))
        for mapping in self._large.values():
            spans.append((mapping.start, mapping.length))
        return seconds + self._touch_object_spans(spans)

    def _heap_mappings(self) -> List[Mapping]:
        result: List[Mapping] = []
        for semi_map in self._semi_maps.values():
            start, end = semi_map.start, semi_map.start + self._from.reserved
            result.extend(
                m for m in self.space.mappings() if m.start < end and m.end > start
            )
        for chunk in self._old.chunks:
            result.append(chunk.mapping)
        result.extend(self._large.values())
        return result
