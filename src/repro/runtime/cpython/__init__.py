"""CPython arena-allocator simulator (the §7 generalization)."""

from repro.runtime.cpython.runtime import CPythonConfig, CPythonRuntime

__all__ = ["CPythonConfig", "CPythonRuntime"]
