"""The CPython runtime simulator, per the paper's §7 discussion.

CPython's obmalloc manages memory in 256 KiB *arenas* and only returns an
arena to the OS when it becomes completely empty, so fragmentation strands
free memory inside arenas across a freeze -- the same frozen-garbage shape
as the other runtimes, without generations.  The §7 recipe for applying
Desiccant: use the mark-sweep collector plus the allocator's internal
structures to find free regions, then release them with ``mmap``; that is
exactly what :meth:`CPythonRuntime.reclaim` does.

The arena machinery reuses :class:`ChunkedSpace` (same 256 KiB granularity;
the reserved first page stands in for pool headers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mem.layout import KIB, MIB, PAGE_SIZE, page_ceil
from repro.mem.vmm import Mapping
from repro.runtime import costs
from repro.runtime.base import (
    HeapStats,
    LibrarySpec,
    ManagedRuntime,
    OutOfMemory,
    ReclaimOutcome,
    RuntimeConfig,
)
from repro.runtime.v8.chunks import CHUNK_PAYLOAD, ChunkedSpace


@dataclass
class CPythonConfig(RuntimeConfig):
    """CPython-specific knobs."""

    #: Allocations at or above this size bypass arenas (obmalloc's 512-byte
    #: cutoff routes to malloc; our coarser objects use a larger bound).
    large_object_threshold: int = 128 * KIB
    #: Collect when dead bytes might exceed this (stand-in for the
    #: generation-count thresholds of CPython's cyclic GC).
    gc_threshold_bytes: int = 8 * MIB
    boot_seconds: float = 0.08
    native_boot_bytes: int = 5 * MIB
    native_init_bytes: int = 2 * MIB


class CPythonRuntime(ManagedRuntime):
    """Arena allocator plus a mark-sweep cycle collector."""

    language = "python"
    default_libraries = (
        LibrarySpec("/usr/lib/libpython3.so", 6 * MIB, touched_fraction=0.65),
        LibrarySpec("/usr/lib/python-stdlib.so", 12 * MIB, touched_fraction=0.3),
    )

    def __init__(self, name, config: CPythonConfig | None = None, **kwargs) -> None:
        super().__init__(name, config or CPythonConfig(), **kwargs)
        self._arenas: ChunkedSpace | None = None
        self._large: Dict[int, Mapping] = {}
        self._allocated_since_gc = 0
        self.gc_count = 0

    def _setup_heap(self) -> float:
        self._arenas = ChunkedSpace("arena", self.space)
        return 0.0

    # ------------------------------------------------------------ placement

    def _place(self, oid: int) -> None:
        cfg: CPythonConfig = self.config  # type: ignore[assignment]
        size = self.graph.objects[oid].size
        if self._allocated_since_gc >= cfg.gc_threshold_bytes:
            self.collect(full=True)
        if size >= cfg.large_object_threshold:
            self._place_large(oid, size)
            return
        if self._over_budget(size):
            self.collect(full=True)
            if self._over_budget(size):
                raise OutOfMemory(f"{self.name}: arenas over heap budget")
        chunk, offset, _new = self._arenas.allocate(oid, size)
        counts = self.space.touch(chunk.mapping.start + PAGE_SIZE + offset, size)
        self._charge_faults(counts.minor, counts.major)
        self._allocated_since_gc += size

    def _place_large(self, oid: int, size: int) -> None:
        if self._over_budget(size):
            self.collect(full=True)
            if self._over_budget(size):
                raise OutOfMemory(f"{self.name}: large allocation over budget")
        mapping = self.space.mmap(page_ceil(size), name="[malloc big]")
        counts = self.space.touch(mapping.start, size)
        self._charge_faults(counts.minor, counts.major)
        self._large[oid] = mapping
        self._allocated_since_gc += size

    def _supports_cohorts(self, unit: int) -> bool:
        cfg: CPythonConfig = self.config  # type: ignore[assignment]
        return unit < cfg.large_object_threshold

    def _alloc_cohort_fast(self, count: int, unit: int, scope: str) -> List[int]:
        """Place a run of small objects segment by segment.

        Each segment is the longest prefix that the scalar path would
        place with no intervening event: it must fit the chunk the bump
        allocator would pick, stay under the GC byte threshold, and not
        flip the budget check.  A member that *would* trigger one of
        those goes through :meth:`~ManagedRuntime.alloc` unbatched, so
        the collection it causes sees exactly the scalar path's graph
        (the triggering object allocated and rooted, earlier segments
        dead or live per their scope).
        """
        cfg: CPythonConfig = self.config  # type: ignore[assignment]
        oids: List[int] = []
        placed = 0
        while placed < count:
            if self._allocated_since_gc >= cfg.gc_threshold_bytes or self._over_budget(unit):
                oids.append(self.alloc(unit, scope=scope))
                placed += 1
                continue
            # Longest run before the next member would trip the GC-bytes
            # threshold check (member j's check reads allocated + j*unit).
            members = min(
                count - placed,
                1 + (cfg.gc_threshold_bytes - self._allocated_since_gc - 1) // unit,
            )
            chunk = None
            for candidate in reversed(self._arenas.chunks):
                if candidate.fits(unit):
                    chunk = candidate
                    break
            if chunk is None:
                members = min(members, self._arenas.payload // unit)
                large = sum(m.length for m in self._large.values())
                if self._arenas.committed + self._arenas.chunk_size + large + unit > cfg.max_heap:
                    # Opening the chunk flips the budget check; only the
                    # opener goes in before the scalar flow re-collects.
                    members = 1
            else:
                members = min(members, chunk.free // unit)
            oid = self.graph.new_cohort(members, unit)

            def place(oid: int = oid, members: int = members) -> None:
                chunk, offset, _new = self._arenas.allocate(oid, members * unit)
                addr = chunk.mapping.start + PAGE_SIZE + offset
                self._touch_cohort_segment(chunk.mapping, addr, unit, members)
                self._allocated_since_gc += members * unit

            self._place_cohort_segment(oid, scope, place)
            oids.append(oid)
            placed += members
        return oids

    def _over_budget(self, incoming: int) -> bool:
        cfg: CPythonConfig = self.config  # type: ignore[assignment]
        large = sum(m.length for m in self._large.values())
        return self._arenas.committed + large + incoming > cfg.max_heap

    # ------------------------------------------------------------------- GC

    def collect(self, full: bool = True, aggressive: bool = False) -> float:
        """Mark-sweep (CPython has no young generation worth modelling here)."""
        self._check_booted()
        live = self.graph.reachable(include_weak=not aggressive)
        _count, collected = self.graph.sweep(live)
        live_sizes = {oid: obj.size for oid, obj in self.graph.objects.items()}
        self._arenas.sweep(live_sizes)
        for oid in [o for o in self._large if o not in self.graph.objects]:
            mapping = self._large.pop(oid)
            self.space.munmap(mapping.start, mapping.length)
        live_bytes = sum(live_sizes.values())
        seconds = self._parallel_pause(
            costs.trace_cost(live_bytes) + costs.sweep_cost(self._arenas.committed)
        )
        self._allocated_since_gc = 0
        self.gc_count += 1
        self._record_gc("full", seconds, collected, live_bytes)
        return seconds

    # -------------------------------------------------------------- reclaim

    def reclaim(self, aggressive: bool = False) -> ReclaimOutcome:
        """§7: collect, then release free pages inside live arenas."""
        uss_before = self.uss()
        gc_seconds = self.collect(full=True, aggressive=aggressive)
        live_sizes = {oid: obj.size for oid, obj in self.graph.objects.items()}
        released_pages = self._arenas.release_free_pages(live_sizes)
        discarded = released_pages * PAGE_SIZE
        uss_after = self.uss()
        return ReclaimOutcome(
            live_bytes=self.last_gc_live_bytes,
            released_bytes=max(discarded, uss_before - uss_after),
            cpu_seconds=gc_seconds + costs.release_cost(discarded),
            uss_before=uss_before,
            uss_after=uss_after,
            aggressive=aggressive,
        )

    # -------------------------------------------------------------- metrics

    def heap_stats(self) -> HeapStats:
        self._memo_materialize()
        large = sum(m.length for m in self._large.values())
        return HeapStats(
            committed=self._arenas.committed + large,
            used=self._arenas.used + large,
            live_estimate=self.last_gc_live_bytes,
        )

    def _touch_live_heap(self) -> float:
        # Span per-object so reclaimed holes between live objects stay cold;
        # the base class coalesces the spans into bulk page-range touches.
        spans = []
        for chunk in self._arenas.chunks:
            base = chunk.mapping.start + PAGE_SIZE
            for oid, offset in chunk.objects:
                obj = self.graph.objects.get(oid)
                if obj is not None:
                    spans.append((base + offset, obj.size))
        for mapping in self._large.values():
            spans.append((mapping.start, mapping.length))
        return self._touch_object_spans(spans)

    def _heap_mappings(self) -> List[Mapping]:
        result = [chunk.mapping for chunk in self._arenas.chunks]
        result.extend(self._large.values())
        return result
