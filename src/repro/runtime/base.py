"""Common interface and shared machinery for the runtime simulators.

A :class:`ManagedRuntime` owns one :class:`VirtualAddressSpace` (the FaaS
instance's container process) and exposes:

* the **mutator API** used by workload models (``begin_invocation`` /
  ``alloc`` / ``end_invocation``),
* the **GC entry points** (``collect`` and the ``System.gc()``-style
  ``full_gc``),
* the **reclaim interface** Desiccant adds (§4.4): GC, then resize, then
  release every free page back to the OS.

Time is explicit: every operation returns or accumulates CPU seconds so the
FaaS simulator can charge latency and cgroup CPU time.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import fastpath
from repro.mem.accounting import measure, measure_mapping
from repro.mem.layout import (
    MIB,
    PAGE_SHIFT,
    PROT_RX,
    Protection,
    page_ceil,
    page_floor,
)
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import Mapping, PageState, VirtualAddressSpace
from repro.memo import digest as memo_digest
from repro.memo import effects as memo_effects
from repro.memo import toggle as memo_toggle
from repro.runtime import costs
from repro.runtime.object_model import ObjectGraph


class OutOfMemory(Exception):
    """The heap cannot satisfy an allocation even after collection."""


@dataclass(frozen=True)
class LibrarySpec:
    """A shared library the runtime maps at boot (e.g. ``libjvm.so``).

    ``touched_fraction`` is how much of the file the runtime actually pages
    in; the rest never costs physical memory.
    """

    path: str
    size: int
    touched_fraction: float = 0.8


@dataclass
class RuntimeConfig:
    """Knobs common to every runtime simulator."""

    #: Instance memory budget (the paper's default is 256 MiB).
    memory_budget: int = 256 * MIB
    #: Fraction of the budget handed to the managed heap (Lambda-style).
    heap_fraction: float = 0.8
    #: Private native memory the runtime dirties at boot (malloc, stacks...).
    native_boot_bytes: int = 6 * MIB
    #: Extra native memory dirtied during the first invocation (class
    #: loading, JIT) -- the paper notes Java's first run inflates the heap.
    native_init_bytes: int = 4 * MIB
    #: Libraries mapped at boot; ``None`` uses the runtime's defaults.
    libraries: Optional[Sequence[LibrarySpec]] = None
    #: Process boot latency before the runtime is usable (cold-boot cost).
    boot_seconds: float = 0.2
    #: GC worker threads (§5.4: platforms should configure parallel
    #: collection for instances with abundant CPU).  Pauses shrink almost
    #: linearly; total CPU work stays the same plus a small coordination
    #: overhead.
    gc_threads: int = 1

    @property
    def max_heap(self) -> int:
        """Managed-heap ceiling derived from the instance budget."""
        return int(self.memory_budget * self.heap_fraction)


@dataclass
class HeapStats:
    """A snapshot of heap occupancy, in bytes."""

    committed: int
    used: int
    live_estimate: int


@dataclass
class ReclaimOutcome:
    """What one §4.4 reclamation achieved (becomes the memory profile)."""

    live_bytes: int
    released_bytes: int
    cpu_seconds: float
    uss_before: int
    uss_after: int
    aggressive: bool = False
    #: Bytes of fresh pages the reclaim's GC faulted in while evacuating
    #: survivors (promotions into newly materialized old-space pages,
    #: including unreleasable chunk/region header pages).  The vacated
    #: young pages are released separately, so a reclaim may end up to
    #: this much *above* its starting USS without having leaked anything.
    evacuated_bytes: int = 0


@dataclass
class GCEvent:
    """One collection, for tests and traces."""

    kind: str  # "young" | "full"
    seconds: float
    collected_bytes: int
    live_bytes: int


class ManagedRuntime(abc.ABC):
    """Base class wiring the object graph, libraries, and native memory."""

    #: Subclasses set these.
    language: str = "?"
    default_libraries: Sequence[LibrarySpec] = ()

    def __init__(
        self,
        name: str,
        config: RuntimeConfig,
        physical: Optional[PhysicalMemory] = None,
        shared_files: Optional[Dict[str, MappedFile]] = None,
    ) -> None:
        """``shared_files`` maps library paths to machine-wide MappedFiles;
        when provided, instances share page cache (OpenWhisk).  When absent,
        each instance gets private copies (Lambda, Figure 11)."""
        from repro.runtime.jit import CodeCache  # local import: avoids cycle

        self.name = name
        self.config = config
        self.space = VirtualAddressSpace(name, physical)
        self.graph = ObjectGraph()
        #: JIT code cache; subclasses with in-heap code (V8) override.
        self.jit = CodeCache(self, in_heap=False)
        self._shared_files = shared_files
        self._lib_mappings: List[Mapping] = []
        self._mapped_specs: List[LibrarySpec] = []
        self._native: Optional[Mapping] = None
        self._native_touched = 0
        self.booted = False
        self.invocations = 0
        self.gc_events: List[GCEvent] = []
        self.total_gc_seconds = 0.0
        self.invocation_gc_seconds = 0.0
        self.invocation_fault_seconds = 0.0
        self.last_gc_live_bytes = 0
        #: ``space.release_epoch`` as of the last full :meth:`touch_live_data`
        #: walk; ``None`` until the first walk completes.
        self._live_touch_epoch: Optional[int] = None
        #: Fast-path snapshot (never flips mid-run) plus the measurement
        #: caches it gates: ``(key, value)`` pairs keyed on the space's
        #: change counters, so repeated USS reads between mutations are
        #: O(1) instead of O(mappings).
        self._fastpath = fastpath.enabled()
        self._uss_cache: Optional[Tuple[Tuple[int, int], int]] = None
        self._hrb_cache: Optional[Tuple[int, int]] = None
        #: REPRO_MEMO construction snapshot (``None`` = memo off): an
        #: FNV-1a fold seeded from (class, config, fastpath flavor) that
        #: accumulates the externally driven mutations the space digest
        #: cannot see (``full_gc``/``free_persistent``/``reclaim``) plus
        #: one marker per completed invocation, so the interleaving of
        #: invocations and external operations addresses the effect cache.
        if memo_toggle.enabled():
            token = zlib.crc32(
                f"{type(self).__name__}|{config!r}|{int(self._fastpath)}".encode()
            )
            self._memo_sig: Optional[int] = memo_digest.fold(
                memo_digest.FNV_OFFSET, token
            )
        else:
            self._memo_sig = None
        #: Lazily deferred structural restore from the last memo hit:
        #: ``(entry, [gc_event suffixes])`` or ``None``.  Materialized by
        #: ``_memo_materialize`` before anything reads structural state.
        self._memo_pending: Optional[tuple] = None

    # ------------------------------------------------------------------ boot

    def boot(self) -> float:
        """Map libraries, dirty boot-time native memory, set up the heap.

        Returns the CPU seconds the boot consumed.
        """
        if self.booted:
            raise RuntimeError(f"{self.name}: already booted")
        seconds = self.config.boot_seconds
        libs = self.config.libraries
        if libs is None:
            libs = self.default_libraries
        for spec in libs:
            seconds += self._map_library(spec)
        native_reserve = max(self.config.memory_budget // 2, 16 * MIB)
        self._native = self.space.mmap(native_reserve, name="[native]")
        seconds += self._grow_native(self.config.native_boot_bytes)
        seconds += self._setup_heap()
        self.booted = True
        return seconds

    def _map_library(self, spec: LibrarySpec) -> float:
        if self._shared_files is not None:
            file = self._shared_files.get(spec.path)
            if file is None:
                file = MappedFile(spec.path, spec.size)
                self._shared_files[spec.path] = file
        else:
            # Private copy: a distinct file object per instance, so no
            # cross-instance page-cache sharing happens (the Lambda case).
            file = MappedFile(f"{spec.path}#{self.name}", spec.size)
        mapping = self.space.mmap(
            spec.size, prot=PROT_RX, file=file, name=spec.path
        )
        self._lib_mappings.append(mapping)
        self._mapped_specs.append(spec)
        touched = int(spec.size * spec.touched_fraction)
        counts = self.space.touch(mapping.start, touched, write=False)
        return costs.fault_cost(counts.minor, counts.major)

    def _grow_native(self, extra: int) -> float:
        assert self._native is not None
        start = self._native.start + self._native_touched
        extra = min(extra, self._native.length - self._native_touched)
        if extra <= 0:
            return 0.0
        counts = self.space.touch(start, extra)
        self._native_touched += extra
        return costs.fault_cost(counts.minor, counts.major)

    @abc.abstractmethod
    def _setup_heap(self) -> float:
        """Reserve and commit the initial heap; returns CPU seconds."""

    # ------------------------------------------------------------- mutators

    def begin_invocation(self) -> None:
        """Open an invocation frame; resets the per-invocation meters."""
        self._check_booted()
        self.graph.push_frame()
        self.invocation_gc_seconds = 0.0
        self.invocation_fault_seconds = 0.0
        if self.invocations == 0:
            self.invocation_fault_seconds += self._grow_native(
                self.config.native_init_bytes
            )

    def end_invocation(self) -> None:
        """Close the frame: its temporaries become (frozen) garbage."""
        self.graph.pop_frame()
        self.invocations += 1

    def alloc(
        self,
        size: int,
        refs: Iterable[int] = (),
        scope: str = "frame",
    ) -> int:
        """Allocate an object and root it per ``scope``.

        * ``"ephemeral"``  -- unrooted; dead at the next collection.
        * ``"frame"``      -- lives until the invocation ends (the default).
        * ``"persistent"`` -- cached state, lives across invocations.
        * ``"weak"``       -- held only by a weak root (JIT artifacts).
        """
        self._check_booted()
        oid = self.graph.new_object(size, refs)
        if scope == "frame":
            self.graph.root_in_frame(oid)
        elif scope == "persistent":
            self.graph.root_persistent(oid)
        elif scope == "weak":
            self.graph.root_weak(oid)
        elif scope != "ephemeral":
            raise ValueError(f"unknown scope {scope!r}")
        if scope == "ephemeral":
            # The allocation site references the object until placement
            # finishes, so a collection triggered by this very allocation
            # must not sweep it out from under the allocator.
            self.graph.root_persistent(oid)
            try:
                self._place(oid)
            finally:
                self.graph.unroot_persistent(oid)
        else:
            self._place(oid)
        return oid

    def alloc_cohort(
        self, count: int, unit: int, scope: str = "frame"
    ) -> List[int]:
        """Allocate ``count`` objects of ``unit`` bytes, rooted per ``scope``.

        Semantically identical to calling :meth:`alloc` ``count`` times --
        and that is literally what happens off the fast path or when the
        runtime cannot batch this unit size.  On the fast path the run is
        folded into :class:`~repro.runtime.object_model.CohortObject`
        segments placed with one graph node and one bulk page touch per
        segment, while GC trigger points, collected volumes, and the
        per-member fault-cost accumulation order are preserved exactly:
        both paths produce byte-identical event traces.

        Returns the allocated object ids (segment ids on the fast path).
        """
        self._check_booted()
        if count <= 0:
            return []
        if count == 1 or not (self._fastpath and self._supports_cohorts(unit)):
            return [self.alloc(unit, scope=scope) for _ in range(count)]
        return self._alloc_cohort_fast(count, unit, scope)

    def _supports_cohorts(self, unit: int) -> bool:
        """Whether this runtime can bulk-place ``unit``-byte cohorts."""
        return False

    def _alloc_cohort_fast(self, count: int, unit: int, scope: str) -> List[int]:
        raise NotImplementedError  # pragma: no cover - guarded by the gate

    def _place_cohort_segment(self, oid: int, scope: str, place) -> None:
        """Root one segment cohort per ``scope`` and run its placement.

        Mirrors :meth:`alloc`'s routing, including the placement-guard
        rooting for ephemerals (the site references the run until its
        placement finishes).
        """
        if scope == "frame":
            self.graph.root_in_frame(oid)
        elif scope == "persistent":
            self.graph.root_persistent(oid)
        elif scope == "weak":
            self.graph.root_weak(oid)
        elif scope != "ephemeral":
            raise ValueError(f"unknown scope {scope!r}")
        if scope == "ephemeral":
            self.graph.root_persistent(oid)
            try:
                place()
            finally:
                self.graph.unroot_persistent(oid)
        else:
            place()

    def _touch_cohort_segment(
        self, mapping: Mapping, addr: int, unit: int, members: int
    ) -> None:
        """One bulk touch for a contiguous run, charged per member.

        Fault *costs* accumulate in float arithmetic, so the charging
        order must match the scalar path: each faulting page is billed to
        the first member whose page-aligned span covers it (exactly which
        member would have faulted it in the one-touch-per-object flow),
        and :meth:`_charge_faults` runs once per member, in order.  The
        page states are read before the touch; the touch itself is a
        single VMM splice for the whole run.
        """
        start = mapping.start
        lo = (page_floor(addr) - start) >> PAGE_SHIFT
        hi = (page_ceil(addr + members * unit) - start) >> PAGE_SHIFT
        # Prefix-sum the pending faults over the run's page window.
        minor_at = [0] * (hi - lo + 1)
        major_at = [0] * (hi - lo + 1)
        for s, e, state in mapping.segments(lo, hi):
            if state is PageState.NOT_PRESENT or state is PageState.FILE_CLEAN:
                for page in range(s, e):
                    minor_at[page - lo + 1] = 1
            elif state is PageState.SWAPPED:
                for page in range(s, e):
                    major_at[page - lo + 1] = 1
        for i in range(1, len(minor_at)):
            minor_at[i] += minor_at[i - 1]
            major_at[i] += major_at[i - 1]
        self.space.touch(addr, members * unit)
        next_page = lo
        for j in range(members):
            a = addr + j * unit
            m_lo = max((page_floor(a) - start) >> PAGE_SHIFT, next_page)
            m_hi = (page_ceil(a + unit) - start) >> PAGE_SHIFT
            next_page = m_hi
            self._charge_faults(
                minor_at[m_hi - lo] - minor_at[m_lo - lo],
                major_at[m_hi - lo] - major_at[m_lo - lo],
            )

    def free_persistent(self, oid: int) -> None:
        """Drop a persistent root (cached state handed off / invalidated)."""
        self._memo_materialize()
        self.memo_note(memo_digest.OP_FREE_PERSISTENT, oid)
        self.graph.unroot_persistent(oid)

    @abc.abstractmethod
    def _place(self, oid: int) -> None:
        """Assign the object a heap address, collecting/expanding as needed."""

    # ------------------------------------------------------------------- GC

    @abc.abstractmethod
    def collect(self, full: bool, aggressive: bool = False) -> float:
        """Run one collection cycle; returns its CPU seconds."""

    def full_gc(self, aggressive: bool = True) -> float:
        """The application-facing ``System.gc()`` / ``global.gc`` (eager
        baseline).  Aggressive by default, per §4.7."""
        self.memo_note(memo_digest.OP_FULL_GC, int(aggressive))
        return self.collect(full=True, aggressive=aggressive)

    @abc.abstractmethod
    def reclaim(self, aggressive: bool = False) -> ReclaimOutcome:
        """Desiccant's interface: GC + resize + release free pages (§4.4)."""

    @abc.abstractmethod
    def heap_stats(self) -> HeapStats:
        """Committed/used/live-estimate snapshot."""

    # ------------------------------------------------------------- metrics

    def uss(self) -> int:
        """The instance's unique set size (the paper's headline metric).

        Cached on ``(space.version, space.external_version)``: the first
        covers every operation on this space, the second covers shared
        file pages whose last co-sharer appeared or vanished from another
        space (the only remote influence on USS).
        """
        if not self._fastpath:
            return measure(self.space).uss
        key = (self.space.version, self.space.external_version)
        cached = self._uss_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        value = measure(self.space).uss
        self._uss_cache = (key, value)
        return value

    def heap_resident_bytes(self) -> int:
        """Resident bytes inside the heap range (what ``pmap`` reports for
        the address range the instance registered, §4.5.2).

        RSS counts resident pages regardless of sharing, so remote
        sharer transitions cannot move it: caching on ``space.version``
        alone is exact.
        """
        if self._fastpath:
            cached = self._hrb_cache
            if cached is not None and cached[0] == self.space.version:
                return cached[1]
        self._memo_materialize()
        total = 0
        for mapping in self._heap_mappings():
            total += measure_mapping(mapping).rss
        if self._fastpath:
            self._hrb_cache = (self.space.version, total)
        return total

    @abc.abstractmethod
    def _heap_mappings(self) -> List[Mapping]:
        """All mappings that make up the managed heap."""

    def touch_live_data(self) -> float:
        """Fault in everything an invocation actually reads: cached heap
        state, the runtime's native memory, and library code.

        On a healthy instance this is free (everything is resident).  After
        Desiccant's reclaim only discarded *free* pages and unmapped
        libraries refault (cheap minor faults, Figure 13); after the swap
        baseline, the *live* pages come back through major faults -- the
        §5.6 reason swapping is 2.4x worse.
        """
        # Fast path: if nothing has been released since the last full
        # touch, every page this would visit is still resident.
        if self._live_touch_epoch == self.space.release_epoch:
            return 0.0
        self._memo_materialize()
        seconds = self._touch_live_heap()
        if self._native is not None and self._native_touched > 0:
            counts = self.space.touch(self._native.start, self._native_touched)
            seconds += self._charge_faults(counts.minor, counts.major)
        for mapping, spec in zip(self._lib_mappings, self._mapped_specs):
            hot = int(spec.size * spec.touched_fraction)
            if hot > 0:
                counts = self.space.touch(mapping.start, hot, write=False)
                seconds += self._charge_faults(counts.minor, counts.major)
        self._live_touch_epoch = self.space.release_epoch
        return seconds

    @abc.abstractmethod
    def _touch_live_heap(self) -> float:
        """Fault in the heap regions that hold live data."""

    def _touch_object_spans(
        self, spans: Iterable[Tuple[int, int]], write: bool = True
    ) -> float:
        """Touch a batch of ``(addr, length)`` spans with range coalescing.

        Each span is page-aligned exactly as a per-span ``space.touch`` call
        would align it, then overlapping/adjacent page ranges are merged, so
        the set of pages visited is identical to touching every span
        individually -- but densely-packed live objects collapse into a few
        bulk touches instead of one VMM call each.
        """
        ranges = sorted(
            (page_floor(addr), page_ceil(addr + length)) for addr, length in spans
        )
        seconds = 0.0
        pos = 0  # ranges are half-open [lo, hi); merge while they overlap
        n = len(ranges)
        while pos < n:
            lo, hi = ranges[pos]
            pos += 1
            while pos < n and ranges[pos][0] <= hi:
                if ranges[pos][1] > hi:
                    hi = ranges[pos][1]
                pos += 1
            if hi <= lo:
                continue
            counts = self.space.touch(lo, hi - lo, write=write)
            seconds += self._charge_faults(counts.minor, counts.major)
        return seconds

    def live_bytes(self) -> int:
        """Exact live bytes (the runtime's query interface, §4.5.2)."""
        self._memo_materialize()
        return self.graph.live_bytes(include_weak=True)

    def ideal_uss(self) -> int:
        """The §3.1 *ideal* consumption: live objects plus the private
        native memory the runtime genuinely uses (its "useful contents")."""
        return self.live_bytes() + self._native_touched

    def destroy(self) -> None:
        """Tear the instance down (eviction).

        A deferred memo restore is dropped, not materialized: teardown
        only closes the address space (a live object), so the structural
        state the restore would rebuild is about to be garbage anyway.
        """
        self._memo_pending = None
        self.space.close()

    # ------------------------------------------------------------ internals

    def _record_gc(self, kind: str, seconds: float, collected: int, live: int) -> None:
        self.gc_events.append(GCEvent(kind, seconds, collected, live))
        self.total_gc_seconds += seconds
        self.invocation_gc_seconds += seconds
        self.last_gc_live_bytes = live

    def _parallel_pause(self, cpu_work_seconds: float) -> float:
        """Wall-clock pause for ``cpu_work_seconds`` of collection work
        spread over the configured GC threads (with 5% coordination
        overhead per extra thread)."""
        threads = max(1, self.config.gc_threads)
        if threads == 1:
            return cpu_work_seconds
        return cpu_work_seconds * (1 + 0.05 * (threads - 1)) / threads

    def _charge_faults(self, minor: int, major: int = 0) -> float:
        seconds = costs.fault_cost(minor, major)
        self.invocation_fault_seconds += seconds
        return seconds

    def _check_booted(self) -> None:
        # Every mutator and GC entry point passes through here, which
        # makes it the one choke point for deferred memo restores.
        if self._memo_pending is not None:
            self._memo_materialize()
        if not self.booted:
            raise RuntimeError(f"{self.name}: not booted")

    # ---------------------------------------------------------------- memo

    def memo_note(self, *values: int) -> None:
        """Fold an externally driven mutation into the memo digest."""
        if self._memo_sig is not None:
            self._memo_sig = memo_digest.fold(self._memo_sig, *values)

    def _memo_materialize(self) -> None:
        """Apply the structural half of the last memo hit, if deferred."""
        pending = self._memo_pending
        if pending is not None:
            self._memo_pending = None
            memo_effects.materialize(self, pending)
