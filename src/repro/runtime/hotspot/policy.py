"""HotSpot's free-ratio heap resize policy (§3.2.1).

After an old (full) collection the JVM resizes both generations:

* the **old generation** keeps its free ratio -- free bytes over committed
  bytes -- inside ``[MinHeapFreeRatio, MaxHeapFreeRatio]`` (40% / 70% for the
  serial collector),
* the **young generation** is sized from the old generation's committed
  size (``NewRatio``), split eden : from : to = 8 : 1 : 1
  (``SurvivorRatio=8``).

The policy only computes target committed sizes; the runtime applies them
via commit/uncommit.  Crucially -- the paper's observation -- *shrinking*
releases pages above the committed boundary, but free pages *below* it are
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.layout import MIB, page_ceil


@dataclass(frozen=True)
class ResizePolicy:
    """Tunables mirroring the serial collector's defaults."""

    min_heap_free_ratio: float = 0.40
    max_heap_free_ratio: float = 0.70
    new_ratio: int = 2  # old : young committed ratio
    survivor_ratio: int = 8  # eden : survivor
    min_old_committed: int = 4 * MIB
    min_young_committed: int = 2 * MIB

    def target_old_committed(self, old_used: int, current: int, reserved: int) -> int:
        """New committed size for the old generation after a full GC."""
        if current <= 0:
            return min(self.min_old_committed, reserved)
        free_ratio = (current - old_used) / current
        target = current
        if free_ratio < self.min_heap_free_ratio:
            # Expand so the free ratio recovers to the minimum.
            target = int(old_used / (1.0 - self.min_heap_free_ratio))
        elif free_ratio > self.max_heap_free_ratio:
            # Shrink so the free ratio drops to the maximum.
            target = int(old_used / (1.0 - self.max_heap_free_ratio))
        target = max(target, old_used, self.min_old_committed)
        target = min(target, reserved)
        return page_ceil(target)

    def target_young_committed(self, old_committed: int, reserved: int) -> int:
        """Young generation committed size derived from the old one."""
        target = max(old_committed // self.new_ratio, self.min_young_committed)
        return page_ceil(min(target, reserved))

    def split_young(self, young_committed: int) -> tuple[int, int]:
        """Split a young budget into ``(eden, survivor)`` sizes.

        ``eden = young * ratio / (ratio + 2)`` and each survivor gets one
        share, mirroring ``SurvivorRatio``.
        """
        survivor = page_ceil(young_committed // (self.survivor_ratio + 2))
        eden = young_committed - 2 * survivor
        return eden, survivor
