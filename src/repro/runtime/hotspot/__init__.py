"""HotSpot serial-GC simulator (the §3.2.1 runtime)."""

from repro.runtime.hotspot.runtime import HotSpotConfig, HotSpotRuntime
from repro.runtime.hotspot.spaces import ContiguousSpace
from repro.runtime.hotspot.policy import ResizePolicy

__all__ = ["HotSpotConfig", "HotSpotRuntime", "ContiguousSpace", "ResizePolicy"]
