"""The HotSpot serial-GC runtime simulator.

Layout: one reserved mapping holds ``[ old | eden | from | to ]``.  The
young generation is collected by a copying scavenge with age-based
promotion; full collections mark-sweep-compact everything into the bottom
of the old generation (so ``[top, end)`` of every space is free afterwards,
exactly the region Algorithm 1 releases).

The §3.2.1 behaviours the characterization depends on:

* expanding/shrinking happen via commit/uncommit on the reserved mapping
  (``mmap``-based, so *shrinking* does release physical memory), but
* free pages **below** the committed boundary are never returned to the OS
  -- eden's dirty pages after a scavenge, the idle survivor space, the old
  generation's tail -- which is precisely the frozen garbage, and
* ``System.gc()`` forces a full collection *and* a resize, which is why the
  eager baseline does shrink the heap (Figure 2a) yet still strands free
  pages that only Desiccant's ``reclaim`` releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.mem.layout import MIB, Protection, page_ceil
from repro.mem.vmm import Mapping
from repro.runtime import costs
from repro.runtime.base import (
    HeapStats,
    LibrarySpec,
    ManagedRuntime,
    OutOfMemory,
    ReclaimOutcome,
    RuntimeConfig,
)
from repro.runtime.hotspot.policy import ResizePolicy
from repro.runtime.hotspot.spaces import ContiguousSpace


@dataclass
class HotSpotConfig(RuntimeConfig):
    """HotSpot-specific knobs on top of the common runtime config."""

    policy: ResizePolicy = field(default_factory=ResizePolicy)
    #: Scavenges an object must survive before promotion
    #: (MaxTenuringThreshold; promotion still happens on survivor overflow).
    tenure_threshold: int = 15
    #: Initial committed heap = max_heap / divisor (clamped to >= 8 MiB);
    #: HotSpot's InitialHeapSize default is 1/64 of physical memory, which
    #: keeps the initial footprint budget-independent (Figure 4a is flat).
    initial_heap_divisor: int = 64
    boot_seconds: float = 0.45  # JVM cold boot is the expensive one
    native_boot_bytes: int = 5 * MIB
    native_init_bytes: int = 3 * MIB


class HotSpotRuntime(ManagedRuntime):
    """Generational serial collector over a contiguous reserved heap."""

    language = "java"
    default_libraries = (
        LibrarySpec("/usr/lib/jvm/libjvm.so", 18 * MIB, touched_fraction=0.55),
        LibrarySpec("/usr/lib/jvm/lib-java-base.so", 7 * MIB, touched_fraction=0.6),
    )

    def __init__(self, name, config: HotSpotConfig | None = None, **kwargs) -> None:
        super().__init__(name, config or HotSpotConfig(), **kwargs)
        self._heap: Mapping | None = None
        self._old: ContiguousSpace | None = None
        self._eden: ContiguousSpace | None = None
        self._from: ContiguousSpace | None = None
        self._to: ContiguousSpace | None = None
        self._where: Dict[int, ContiguousSpace] = {}
        self.young_gc_count = 0
        self.full_gc_count = 0

    # ------------------------------------------------------------------ heap

    def _setup_heap(self) -> float:
        cfg: HotSpotConfig = self.config  # type: ignore[assignment]
        policy = cfg.policy
        max_heap = page_ceil(cfg.max_heap)
        young_reserved = page_ceil(max_heap // (policy.new_ratio + 1))
        old_reserved = max_heap - young_reserved
        eden_reserved, survivor_reserved = policy.split_young(young_reserved)

        self._heap = self.space.mmap(
            max_heap, prot=Protection.NONE, name="[java heap]"
        )
        offset = 0
        self._old = ContiguousSpace("old", offset, old_reserved)
        offset += old_reserved
        self._eden = ContiguousSpace("eden", offset, eden_reserved)
        offset += eden_reserved
        self._from = ContiguousSpace("from", offset, survivor_reserved)
        offset += survivor_reserved
        self._to = ContiguousSpace("to", offset, survivor_reserved)

        initial = max(8 * MIB, max_heap // cfg.initial_heap_divisor)
        initial = min(initial, max_heap)
        old_initial = policy.target_old_committed(0, 0, old_reserved)
        old_initial = max(old_initial, page_ceil(initial * 2 // 3))
        self._set_committed(self._old, min(old_initial, old_reserved))
        young_initial = policy.target_young_committed(
            self._old.committed, young_reserved
        )
        self._apply_young_committed(young_initial)
        return 0.0

    def _spaces(self) -> List[ContiguousSpace]:
        return [self._old, self._eden, self._from, self._to]

    def _set_committed(self, space: ContiguousSpace, target: int) -> None:
        target = page_ceil(min(max(target, space.top), space.reserved))
        if target == space.committed:
            return
        base = self._heap.start + space.offset
        if target > space.committed:
            self.space.commit(base + space.committed, target - space.committed)
        else:
            self.space.uncommit(base + target, space.committed - target)
            space.touched = min(space.touched, target)
        space.committed = target

    def _materialize(self, space: ContiguousSpace) -> None:
        """Dirty the pages behind newly-bumped bytes (demand paging)."""
        if space.top <= space.touched:
            return
        base = self._heap.start + space.offset
        counts = self.space.touch(base + space.touched, space.top - space.touched)
        self._charge_faults(counts.minor, counts.major)
        space.touched = page_ceil(space.top)

    # ------------------------------------------------------------ placement

    def _place(self, oid: int) -> None:
        size = self.graph.objects[oid].size
        if size > self._eden.reserved:
            self._place_old_direct(oid, size)
            return
        if not self._eden.fits(size):
            self.collect(full=False)
            if not self._eden.fits(size):
                # Eden is committed too small for this allocation burst.
                needed = page_ceil(self._eden.top + size)
                if needed <= self._eden.reserved:
                    self._set_committed(self._eden, needed)
                else:
                    self._place_old_direct(oid, size)
                    return
        self._eden.bump(oid, size)
        self._where[oid] = self._eden
        self._materialize(self._eden)

    def _place_old_direct(self, oid: int, size: int) -> None:
        if not self._old.fits(size):
            self._ensure_old_capacity(size)
        if not self._old.fits(size):
            raise OutOfMemory(
                f"{self.name}: {size} bytes exceed old generation "
                f"({self._old.free} free of {self._old.reserved} reserved)"
            )
        self._old.bump(oid, size)
        self._where[oid] = self._old
        self._materialize(self._old)

    def _ensure_old_capacity(self, size: int) -> None:
        needed = page_ceil(self._old.top + size)
        if needed <= self._old.reserved:
            grown = max(needed, int(self._old.committed * 1.25))
            self._set_committed(self._old, min(page_ceil(grown), self._old.reserved))
        if not self._old.fits(size):
            self.collect(full=True)
        if not self._old.fits(size):
            self._set_committed(self._old, self._old.reserved)

    # ------------------------------------------------------------------- GC

    def collect(self, full: bool, aggressive: bool = False) -> float:
        self._check_booted()
        if full:
            return self._full_gc(aggressive)
        return self._young_gc()

    def _young_gc(self) -> float:
        live = self.graph.reachable(include_weak=True)
        young = self._eden.objects + self._from.objects
        survivors = [oid for oid in young if oid in live]
        dead = [oid for oid in young if oid not in live]
        cfg: HotSpotConfig = self.config  # type: ignore[assignment]

        # Reserve promotion room up front (worst case: every survivor
        # promotes).  If the old generation cannot hold them even fully
        # expanded, a full collection replaces the scavenge -- decided
        # *before* any evacuation so the spaces stay consistent.
        worst_case = sum(self.graph.objects[oid].size for oid in survivors)
        if self._old.free < worst_case:
            target = page_ceil(self._old.top + worst_case)
            if target > self._old.reserved:
                return self._full_gc(aggressive=False)
            self._set_committed(self._old, max(target, self._old.committed))

        copied = 0
        promoted = 0
        self._to.reset()
        for oid in survivors:
            obj = self.graph.objects[oid]
            obj.age += 1
            if obj.age >= cfg.tenure_threshold or not self._to.fits(obj.size):
                self._old.bump(oid, obj.size)
                self._where[oid] = self._old
                promoted += obj.size
            else:
                self._to.bump(oid, obj.size)
                self._where[oid] = self._to
                copied += obj.size
        self._materialize(self._to)
        self._materialize(self._old)

        collected = 0
        for oid in dead:
            collected += self.graph.objects[oid].size
            del self.graph.objects[oid]
            self._where.pop(oid, None)

        self._eden.reset()
        self._from.reset()
        self._from, self._to = self._to, self._from

        # HotSpot also grows the young generation as the old one grows
        # (§3.2.1: young size is determined by the old generation size).
        # Grow eden and the survivors independently -- an eden inflated by
        # a large allocation must not starve the survivor spaces, or every
        # scavenge drips overflow promotions into the old generation.
        # Young shrinking only happens in the post-full-GC resize.
        young_reserved = (
            self._eden.reserved + self._from.reserved + self._to.reserved
        )
        target_young = cfg.policy.target_young_committed(
            self._old.committed, young_reserved
        )
        eden_target, survivor_target = cfg.policy.split_young(target_young)
        if eden_target > self._eden.committed:
            self._set_committed(self._eden, min(eden_target, self._eden.reserved))
        for survivor in (self._from, self._to):
            if survivor_target > survivor.committed:
                self._set_committed(
                    survivor, min(survivor_target, survivor.reserved)
                )

        live_young = copied + promoted
        total_live = sum(
            self.graph.objects[oid].size for oid in live if oid in self.graph.objects
        )
        seconds = self._parallel_pause(
            costs.trace_cost(live_young) + costs.copy_cost(copied + promoted)
        )
        self.young_gc_count += 1
        self._record_gc("young", seconds, collected, total_live)
        return seconds

    def _full_gc(self, aggressive: bool) -> float:
        live = self.graph.reachable(include_weak=not aggressive)
        _count, collected = self.graph.sweep(live)
        for oid in list(self._where):
            if oid not in self.graph.objects:
                del self._where[oid]

        # Mark-sweep-compact: slide every live object to the bottom of the
        # old generation, preserving address order (old first, then young).
        ordered: List[int] = []
        seen = set()
        for space in (self._old, self._eden, self._from, self._to):
            for oid in space.objects:
                if oid in self.graph.objects and oid not in seen:
                    seen.add(oid)
                    ordered.append(oid)
            space.reset()
        live_bytes = sum(self.graph.objects[oid].size for oid in ordered)
        if live_bytes > self._old.reserved:
            raise OutOfMemory(
                f"{self.name}: {live_bytes} live bytes exceed old reserve"
            )
        self._set_committed(self._old, max(self._old.committed, page_ceil(live_bytes)))
        for oid in ordered:
            self._old.bump(oid, self.graph.objects[oid].size)
            self._where[oid] = self._old
        self._materialize(self._old)

        seconds = self._parallel_pause(
            costs.trace_cost(live_bytes) + costs.copy_cost(live_bytes)
        )
        self._resize_after_full_gc()
        self.full_gc_count += 1
        self._record_gc("full", seconds, collected, live_bytes)
        return seconds

    def _resize_after_full_gc(self) -> None:
        cfg: HotSpotConfig = self.config  # type: ignore[assignment]
        policy = cfg.policy
        old_target = policy.target_old_committed(
            self._old.top, self._old.committed, self._old.reserved
        )
        self._set_committed(self._old, old_target)
        young_reserved = (
            self._eden.reserved + self._from.reserved + self._to.reserved
        )
        self._apply_young_committed(
            policy.target_young_committed(self._old.committed, young_reserved)
        )

    def _apply_young_committed(self, young_committed: int) -> None:
        cfg: HotSpotConfig = self.config  # type: ignore[assignment]
        eden_target, survivor_target = cfg.policy.split_young(young_committed)
        self._set_committed(self._eden, min(eden_target, self._eden.reserved))
        for surv in (self._from, self._to):
            self._set_committed(surv, min(survivor_target, surv.reserved))

    # -------------------------------------------------------------- reclaim

    def reclaim(self, aggressive: bool = False) -> ReclaimOutcome:
        """Algorithm 1: collect all generations, resize, release free pages."""
        uss_before = self.uss()
        gc_seconds = self._full_gc(aggressive)
        released_pages = 0
        for space in self._spaces():
            begin, end = space.release_range()
            if end > begin:
                released_pages += self.space.discard(
                    self._heap.start + begin, end - begin
                )
            space.touched = min(space.touched, page_ceil(space.top))
        discarded = released_pages * 4096
        seconds = gc_seconds + costs.release_cost(discarded)
        uss_after = self.uss()
        return ReclaimOutcome(
            live_bytes=self.last_gc_live_bytes,
            # Report everything returned to the OS: discarded free pages
            # plus whatever the GC's own resize uncommitted.
            released_bytes=max(discarded, uss_before - uss_after),
            cpu_seconds=seconds,
            uss_before=uss_before,
            uss_after=uss_after,
            aggressive=aggressive,
        )

    # -------------------------------------------------------------- metrics

    def heap_stats(self) -> HeapStats:
        self._memo_materialize()
        return HeapStats(
            committed=sum(s.committed for s in self._spaces()),
            used=sum(s.top for s in self._spaces()),
            live_estimate=self.last_gc_live_bytes,
        )

    def _touch_live_heap(self) -> float:
        seconds = 0.0
        for space in (self._old, self._from):
            if space.top > 0:
                counts = self.space.touch(
                    self._heap.start + space.offset, space.top
                )
                seconds += self._charge_faults(counts.minor, counts.major)
        return seconds

    def _heap_mappings(self) -> List[Mapping]:
        start, end = self._heap.start, self._heap.start + self._reserved_bytes()
        return [
            m for m in self.space.mappings() if m.start < end and m.end > start
        ]

    def _reserved_bytes(self) -> int:
        return sum(s.reserved for s in self._spaces())
