"""Contiguous heap spaces (eden / from / to / old) for the serial collector.

A space is a window into the heap's single reserved mapping.  It tracks

* ``committed`` -- bytes usable by the mutator (grown/shrunk by the resize
  policy via commit/uncommit on the mapping),
* ``top``       -- the bump-allocation pointer,
* ``touched``   -- the high-water mark of pages ever dirtied.  This is the
  quantity the paper's characterization turns on: after GC resets ``top``,
  the dirty pages up to ``touched`` remain resident, and HotSpot never
  returns them to the OS while they sit below ``committed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.mem.layout import page_ceil, page_floor


@dataclass
class ContiguousSpace:
    """One bump-allocated region inside the reserved heap."""

    name: str
    offset: int  # byte offset of the space within the heap mapping
    reserved: int  # maximum size the space may commit
    committed: int = 0
    top: int = 0
    touched: int = 0
    #: Objects resident in this space, in address order; the object at
    #: list index i starts at the sum of the sizes of its predecessors.
    objects: List[int] = field(default_factory=list)

    def __getstate__(self) -> tuple:
        """Compact pickle state (a flat tuple, no keyed ``__dict__``):
        heap spaces recur in every memo effect payload and epoch
        checkpoint, and the flat form dumps faster at fewer bytes."""
        return (
            self.name,
            self.offset,
            self.reserved,
            self.committed,
            self.top,
            self.touched,
            self.objects,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.name,
            self.offset,
            self.reserved,
            self.committed,
            self.top,
            self.touched,
            self.objects,
        ) = state

    @property
    def free(self) -> int:
        """Bytes between the allocation pointer and the committed end."""
        return self.committed - self.top

    def fits(self, size: int) -> bool:
        return size <= self.free

    def bump(self, oid: int, size: int) -> None:
        """Place ``oid`` at ``top`` (caller checked :meth:`fits`)."""
        if not self.fits(size):
            raise AssertionError(
                f"{self.name}: bump of {size} exceeds free {self.free}"
            )
        self.objects.append(oid)
        self.top += size

    def reset(self) -> None:
        """Empty the space (after evacuation); dirty pages remain touched."""
        self.objects.clear()
        self.top = 0

    def release_range(self) -> tuple[int, int]:
        """The page-aligned free range ``[begin, end)`` within the heap
        mapping that Algorithm 1 releases: from above ``top`` to the end of
        the committed region.  Returns offsets relative to the mapping."""
        begin = page_ceil(self.offset + self.top)
        end = page_floor(self.offset + self.committed)
        return begin, max(begin, end)
