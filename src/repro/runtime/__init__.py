"""Managed-runtime simulators (HotSpot serial GC, V8, CPython arenas).

Each runtime allocates objects from a :class:`repro.mem.VirtualAddressSpace`
through its own heap organization and collection algorithm, reproducing the
memory-management policies §3.2 of the paper dissects:

* ``hotspot`` -- generational serial GC with contiguous spaces, free-ratio
  resizing, and the commit-but-never-release behaviour that strands free
  pages inside the heap.
* ``v8``      -- semispace scavenger + mark-sweep over 256 KiB chunks, with
  the allocation-rate doubling policy that never shrinks under intermittent
  execution, weak-ref'd JIT code, and per-chunk metadata pages.
* ``cpython`` -- the §7 generalization: 256 KiB arenas freed only when empty.
"""

from repro.runtime.base import (
    HeapStats,
    ManagedRuntime,
    OutOfMemory,
    ReclaimOutcome,
    RuntimeConfig,
)
from repro.runtime.object_model import HeapObject, ObjectGraph
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime
from repro.runtime.cpython import CPythonRuntime
from repro.runtime.golang import GoRuntime
from repro.runtime.g1 import G1Runtime

__all__ = [
    "HeapStats",
    "ManagedRuntime",
    "OutOfMemory",
    "ReclaimOutcome",
    "RuntimeConfig",
    "HeapObject",
    "ObjectGraph",
    "HotSpotRuntime",
    "V8Runtime",
    "CPythonRuntime",
    "GoRuntime",
    "G1Runtime",
]
