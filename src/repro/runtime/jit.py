"""JIT code-cache model shared by the runtime simulators.

The §4.7 mechanism: V8 keeps optimized code reachable only through weak
references, so an *aggressive* collection (``global.gc``) throws the code
away and later invocations pay deoptimization/recompilation until the
function re-warms.  Desiccant's non-aggressive reclaim keeps the weak roots,
avoiding the 2.14x / 1.74x slowdowns Figure 13 reports for data-analysis
and unionfind.

HotSpot stores JIT code in the native code cache, outside the managed heap,
so its code survives any collection -- modelled by ``in_heap=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Compile cost per unit of code produced (seconds per byte).
COMPILE_SECONDS_PER_BYTE = 3.0e-8


@dataclass
class JitStep:
    """The outcome of one invocation's JIT bookkeeping."""

    multiplier: float  # execution-time factor (1.0 == fully warm)
    compile_seconds: float


class CodeCache:
    """Tracks compiled-code units per function.

    ``in_heap=True`` allocates units as weak-rooted heap objects (V8): any
    aggressive collection sweeps them.  ``in_heap=False`` keeps units in a
    plain counter (HotSpot's native code cache): immune to GC.
    """

    def __init__(self, runtime, in_heap: bool) -> None:
        self._runtime = runtime
        self.in_heap = in_heap
        self._units: Dict[str, List[int]] = {}
        self._native_units: Dict[str, int] = {}

    def warm_fraction(self, key: str, warm_units: int) -> float:
        """How compiled the function currently is, in [0, 1]."""
        if warm_units <= 0:
            return 1.0
        return min(1.0, self._surviving(key) / warm_units)

    def invoke(
        self,
        key: str,
        code_size: int,
        warm_units: int,
        interp_penalty: float,
    ) -> JitStep:
        """Account one invocation: maybe compile a unit, return the slowdown.

        ``interp_penalty`` is the cold execution-time factor; the multiplier
        interpolates linearly to 1.0 as units accumulate.
        """
        if warm_units <= 0 or interp_penalty <= 1.0:
            return JitStep(multiplier=1.0, compile_seconds=0.0)
        surviving = self._surviving(key)
        fraction = min(1.0, surviving / warm_units)
        multiplier = interp_penalty - (interp_penalty - 1.0) * fraction
        compile_seconds = 0.0
        if surviving < warm_units:
            unit_size = max(4096, code_size // warm_units)
            compile_seconds = unit_size * COMPILE_SECONDS_PER_BYTE
            if self.in_heap:
                oid = self._runtime.alloc(unit_size, scope="weak")
                self._units.setdefault(key, []).append(oid)
            else:
                self._native_units[key] = self._native_units.get(key, 0) + 1
        return JitStep(multiplier=multiplier, compile_seconds=compile_seconds)

    def _surviving(self, key: str) -> int:
        if not self.in_heap:
            return self._native_units.get(key, 0)
        oids = self._units.get(key)
        if not oids:
            return 0
        alive = [oid for oid in oids if oid in self._runtime.graph.objects]
        self._units[key] = alive
        return len(alive)
