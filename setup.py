"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so pip's
PEP 660 editable path (which shells out to ``bdist_wheel``) cannot run.  With
this shim, ``pip install -e . --no-build-isolation`` falls back to
``setup.py develop``, which needs only setuptools.  All real metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
