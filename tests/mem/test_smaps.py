"""Unit tests for smaps reports and the §4.6 unmap predicate."""

import pytest

from repro.mem.layout import PAGE_SIZE, Protection
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.smaps import find_unmappable_library_ranges, smaps_report
from repro.mem.vmm import VirtualAddressSpace


@pytest.fixture
def phys():
    return PhysicalMemory()


def test_report_covers_all_mappings(phys):
    space = VirtualAddressSpace("p", phys)
    space.mmap(PAGE_SIZE, name="[heap]")
    space.mmap(PAGE_SIZE, name="[stack]")
    entries = smaps_report(space)
    assert [e.name for e in entries] == ["[heap]", "[stack]"]
    assert all(e.size == PAGE_SIZE for e in entries)


def test_solo_library_is_unmappable(phys):
    lib = MappedFile("/lib/libjvm.so", PAGE_SIZE * 4)
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib, name="libjvm")
    space.touch(m.start, PAGE_SIZE * 4, write=False)
    eligible = find_unmappable_library_ranges(space)
    assert len(eligible) == 1
    assert eligible[0].path == "/lib/libjvm.so"


def test_shared_library_not_unmappable(phys):
    lib = MappedFile("/lib/libjvm.so", PAGE_SIZE * 4)
    s1 = VirtualAddressSpace("a", phys)
    s2 = VirtualAddressSpace("b", phys)
    for s in (s1, s2):
        m = s.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib)
        s.touch(m.start, PAGE_SIZE * 4, write=False)
    # pages cost nothing privately, so there is nothing to reclaim
    assert find_unmappable_library_ranges(s1) == []


def test_modified_file_mapping_not_unmappable(phys):
    lib = MappedFile("/lib/data", PAGE_SIZE * 2)
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 2, file=lib)
    space.touch(m.start, PAGE_SIZE, write=True)  # COW -> private_dirty
    assert find_unmappable_library_ranges(space) == []


def test_anonymous_mapping_not_unmappable(phys):
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 2)
    space.touch(m.start, PAGE_SIZE * 2)
    assert find_unmappable_library_ranges(space) == []


def test_untouched_library_not_listed(phys):
    lib = MappedFile("/lib/x", PAGE_SIZE * 2)
    space = VirtualAddressSpace("p", phys)
    space.mmap(PAGE_SIZE * 2, prot=Protection.READ, file=lib)
    assert find_unmappable_library_ranges(space) == []
