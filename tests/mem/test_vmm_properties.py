"""Property-based tests for the VMM: accounting invariants hold under any
interleaving of map / touch / discard / swap / unmap operations."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.mem.accounting import measure, measure_many
from repro.mem.layout import PAGE_SIZE, Protection
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import VirtualAddressSpace

N_PAGES = 16


class VMMachine(RuleBasedStateMachine):
    """Two processes sharing one library, driven by random memory ops."""

    @initialize()
    def setup(self):
        self.phys = PhysicalMemory()
        self.lib = MappedFile("/lib/shared.so", PAGE_SIZE * N_PAGES)
        self.spaces = []
        self.anon = []
        self.libmaps = []
        for name in ("a", "b"):
            s = VirtualAddressSpace(name, self.phys)
            self.spaces.append(s)
            self.anon.append(s.mmap(PAGE_SIZE * N_PAGES, name="[heap]"))
            self.libmaps.append(
                s.mmap(PAGE_SIZE * N_PAGES, prot=Protection.READ, file=self.lib)
            )

    @rule(
        who=st.integers(0, 1),
        page=st.integers(0, N_PAGES - 1),
        count=st.integers(1, 4),
    )
    def touch_anon(self, who, page, count):
        m = self.anon[who]
        length = min(count, N_PAGES - page) * PAGE_SIZE
        self.spaces[who].touch(m.start + page * PAGE_SIZE, length)

    @rule(who=st.integers(0, 1), page=st.integers(0, N_PAGES - 1))
    def touch_lib(self, who, page):
        m = self.libmaps[who]
        self.spaces[who].touch(m.start + page * PAGE_SIZE, PAGE_SIZE, write=False)

    @rule(
        who=st.integers(0, 1),
        page=st.integers(0, N_PAGES - 1),
        count=st.integers(1, 8),
    )
    def discard_anon(self, who, page, count):
        m = self.anon[who]
        length = min(count, N_PAGES - page) * PAGE_SIZE
        self.spaces[who].discard(m.start + page * PAGE_SIZE, length)

    @rule(who=st.integers(0, 1), page=st.integers(0, N_PAGES - 1))
    def swap_anon(self, who, page):
        m = self.anon[who]
        self.spaces[who].swap_out_range(m.start + page * PAGE_SIZE, PAGE_SIZE)

    @rule(who=st.integers(0, 1))
    def drop_lib(self, who):
        m = self.libmaps[who]
        self.spaces[who].discard(m.start, m.length)

    @invariant()
    def uss_le_pss_le_rss(self):
        for s in self.spaces:
            r = measure(s)
            assert r.uss <= r.pss + 1e-6
            assert r.pss <= r.rss + 1e-6

    @invariant()
    def pss_sums_to_physical(self):
        total = measure_many(self.spaces)
        assert abs(total.pss - self.phys.used_bytes) < 1e-6

    @invariant()
    def rss_never_negative_or_excessive(self):
        for s in self.spaces:
            r = measure(s)
            assert 0 <= r.rss <= 2 * N_PAGES * PAGE_SIZE

    @invariant()
    def swap_consistent(self):
        total = measure_many(self.spaces)
        assert total.swap == self.phys.swap.bytes


TestVMMProperties = VMMachine.TestCase
TestVMMProperties.settings = settings(max_examples=30, stateful_step_count=30)


@given(
    lengths=st.lists(st.integers(1, PAGE_SIZE * 8), min_size=1, max_size=10),
)
def test_mmap_touch_munmap_conserves_frames(lengths):
    """After unmapping everything, no physical memory remains allocated."""
    phys = PhysicalMemory()
    space = VirtualAddressSpace("p", phys)
    maps = []
    for length in lengths:
        m = space.mmap(length)
        space.touch(m.start, m.length)
        maps.append(m)
    for m in maps:
        space.munmap(m.start, m.length)
    assert phys.used_bytes == 0


@given(
    touched=st.integers(1, 32),
    discard_from=st.integers(0, 31),
)
def test_discard_releases_exactly_resident_overlap(touched, discard_from):
    phys = PhysicalMemory()
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 32)
    space.touch(m.start, PAGE_SIZE * touched)
    released = space.discard(m.start + discard_from * PAGE_SIZE, PAGE_SIZE * 32)
    assert released == max(0, touched - discard_from)
    assert phys.anon_bytes == min(touched, discard_from) * PAGE_SIZE
