"""Unit tests for the virtual memory manager."""

import pytest

from repro.mem.layout import PAGE_SIZE, PROT_RW, Protection
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import (
    MappingConflict,
    MemoryError_,
    PageState,
    SegmentationFault,
    VirtualAddressSpace,
)


@pytest.fixture
def phys():
    return PhysicalMemory()


@pytest.fixture
def space(phys):
    return VirtualAddressSpace("proc", phys)


class TestMmap:
    def test_anonymous_mapping_starts_non_resident(self, space, phys):
        m = space.mmap(PAGE_SIZE * 4)
        assert m.num_pages == 4
        assert phys.anon_bytes == 0

    def test_length_rounded_to_pages(self, space):
        m = space.mmap(1)
        assert m.length == PAGE_SIZE

    def test_fixed_address_honored(self, space):
        m = space.mmap(PAGE_SIZE, addr=0x10000)
        assert m.start == 0x10000

    def test_fixed_overlap_rejected(self, space):
        space.mmap(PAGE_SIZE * 2, addr=0x10000)
        with pytest.raises(MappingConflict):
            space.mmap(PAGE_SIZE, addr=0x10000 + PAGE_SIZE)

    def test_unaligned_fixed_address_rejected(self, space):
        with pytest.raises(ValueError):
            space.mmap(PAGE_SIZE, addr=123)

    def test_bump_allocations_never_overlap(self, space):
        a = space.mmap(PAGE_SIZE * 3)
        b = space.mmap(PAGE_SIZE * 5)
        assert a.end <= b.start or b.end <= a.start

    def test_shared_requires_file(self, space):
        with pytest.raises(ValueError):
            space.mmap(PAGE_SIZE, shared=True)


class TestTouch:
    def test_write_touch_allocates_anon_frames(self, space, phys):
        m = space.mmap(PAGE_SIZE * 4)
        counts = space.touch(m.start, PAGE_SIZE * 2)
        assert counts.minor == 2
        assert counts.major == 0
        assert phys.anon_bytes == 2 * PAGE_SIZE

    def test_second_touch_is_free(self, space):
        m = space.mmap(PAGE_SIZE)
        space.touch(m.start, PAGE_SIZE)
        counts = space.touch(m.start, PAGE_SIZE)
        assert counts.total == 0

    def test_touch_unmapped_segfaults(self, space):
        with pytest.raises(SegmentationFault):
            space.touch(0xDEAD000, PAGE_SIZE)

    def test_touch_prot_none_segfaults(self, space):
        m = space.mmap(PAGE_SIZE, prot=Protection.NONE)
        with pytest.raises(SegmentationFault):
            space.touch(m.start, PAGE_SIZE)

    def test_write_to_readonly_segfaults(self, space):
        m = space.mmap(PAGE_SIZE, prot=Protection.READ)
        with pytest.raises(SegmentationFault):
            space.touch(m.start, PAGE_SIZE, write=True)
        # but reads are fine
        space.touch(m.start, PAGE_SIZE, write=False)

    def test_touch_spanning_two_mappings(self, space):
        a = space.mmap(PAGE_SIZE, addr=0x20000)
        space.mmap(PAGE_SIZE, addr=0x20000 + PAGE_SIZE)
        counts = space.touch(a.start, PAGE_SIZE * 2)
        assert counts.minor == 2

    def test_fault_counters_accumulate_on_space(self, space):
        m = space.mmap(PAGE_SIZE * 3)
        space.touch(m.start, PAGE_SIZE * 3)
        assert space.faults.minor == 3


class TestFileMappings:
    def test_read_touch_uses_page_cache(self, space, phys):
        lib = MappedFile("/lib/libjvm.so", PAGE_SIZE * 8)
        m = space.mmap(PAGE_SIZE * 8, prot=Protection.READ, file=lib)
        space.touch(m.start, PAGE_SIZE * 4, write=False)
        assert phys.file_cache_bytes == 4 * PAGE_SIZE
        assert phys.anon_bytes == 0
        assert lib.sharers(0) == 1

    def test_cache_shared_between_spaces(self, phys):
        lib = MappedFile("/lib/libjvm.so", PAGE_SIZE * 4)
        s1 = VirtualAddressSpace("a", phys)
        s2 = VirtualAddressSpace("b", phys)
        m1 = s1.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib)
        m2 = s2.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib)
        s1.touch(m1.start, PAGE_SIZE * 4, write=False)
        s2.touch(m2.start, PAGE_SIZE * 4, write=False)
        # one copy in the cache despite two mappers
        assert phys.file_cache_bytes == 4 * PAGE_SIZE
        assert lib.sharers(0) == 2

    def test_private_write_cows_to_anon(self, space, phys):
        lib = MappedFile("/lib/data", PAGE_SIZE * 2)
        m = space.mmap(PAGE_SIZE * 2, file=lib)
        space.touch(m.start, PAGE_SIZE, write=False)
        assert phys.file_cache_bytes == PAGE_SIZE
        space.touch(m.start, PAGE_SIZE, write=True)
        assert phys.file_cache_bytes == 0
        assert phys.anon_bytes == PAGE_SIZE
        assert m.pages[0] is PageState.ANON_DIRTY

    def test_shared_write_stays_in_cache(self, space, phys):
        f = MappedFile("/shm/seg", PAGE_SIZE)
        m = space.mmap(PAGE_SIZE, file=f, shared=True)
        space.touch(m.start, PAGE_SIZE, write=True)
        assert phys.file_cache_bytes == PAGE_SIZE
        assert phys.anon_bytes == 0

    def test_file_offset_maps_correct_pages(self, space):
        lib = MappedFile("/lib/x", PAGE_SIZE * 8)
        m = space.mmap(
            PAGE_SIZE * 2, prot=Protection.READ, file=lib, file_offset=PAGE_SIZE * 4
        )
        space.touch(m.start, PAGE_SIZE, write=False)
        assert lib.sharers(4) == 1
        assert lib.sharers(0) == 0


class TestMunmapAndSplits:
    def test_munmap_frees_frames(self, space, phys):
        m = space.mmap(PAGE_SIZE * 4)
        space.touch(m.start, PAGE_SIZE * 4)
        space.munmap(m.start, PAGE_SIZE * 4)
        assert phys.anon_bytes == 0
        assert space.find_mapping(m.start) is None

    def test_partial_munmap_splits(self, space, phys):
        m = space.mmap(PAGE_SIZE * 4, addr=0x40000)
        space.touch(m.start, PAGE_SIZE * 4)
        space.munmap(m.start + PAGE_SIZE, PAGE_SIZE * 2)
        assert phys.anon_bytes == 2 * PAGE_SIZE
        assert space.find_mapping(0x40000) is not None
        assert space.find_mapping(0x40000 + PAGE_SIZE) is None
        assert space.find_mapping(0x40000 + 3 * PAGE_SIZE) is not None

    def test_munmap_releases_file_cache_refs(self, space, phys):
        lib = MappedFile("/lib/x", PAGE_SIZE * 2)
        m = space.mmap(PAGE_SIZE * 2, prot=Protection.READ, file=lib)
        space.touch(m.start, PAGE_SIZE * 2, write=False)
        space.munmap(m.start, PAGE_SIZE * 2)
        assert phys.file_cache_bytes == 0
        assert lib.resident_pages() == 0

    def test_split_preserves_file_offsets(self, space):
        lib = MappedFile("/lib/x", PAGE_SIZE * 4)
        m = space.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib, addr=0x50000)
        space.touch(m.start + PAGE_SIZE * 3, PAGE_SIZE, write=False)
        space.munmap(m.start, PAGE_SIZE)  # drop first page only
        tail = space.find_mapping(0x50000 + PAGE_SIZE * 3)
        assert tail is not None
        space.touch(0x50000 + PAGE_SIZE * 3, PAGE_SIZE, write=False)
        assert lib.sharers(3) == 1


class TestProtectCommitUncommit:
    def test_mprotect_does_not_free_frames(self, space, phys):
        m = space.mmap(PAGE_SIZE * 2)
        space.touch(m.start, PAGE_SIZE * 2)
        space.mprotect(m.start, PAGE_SIZE * 2, Protection.NONE)
        assert phys.anon_bytes == 2 * PAGE_SIZE  # the Linux mprotect gotcha

    def test_uncommit_frees_and_blocks(self, space, phys):
        m = space.mmap(PAGE_SIZE * 4)
        space.touch(m.start, PAGE_SIZE * 4)
        space.uncommit(m.start, PAGE_SIZE * 2)
        assert phys.anon_bytes == 2 * PAGE_SIZE
        with pytest.raises(SegmentationFault):
            space.touch(m.start, PAGE_SIZE)

    def test_commit_reopens_range(self, space):
        m = space.mmap(PAGE_SIZE * 2, prot=Protection.NONE)
        space.commit(m.start, PAGE_SIZE * 2)
        counts = space.touch(m.start, PAGE_SIZE * 2)
        assert counts.minor == 2

    def test_mprotect_hole_rejected(self, space):
        space.mmap(PAGE_SIZE, addr=0x60000)
        space.mmap(PAGE_SIZE, addr=0x60000 + PAGE_SIZE * 2)
        with pytest.raises(SegmentationFault):
            space.mprotect(0x60000, PAGE_SIZE * 3, Protection.READ)


class TestDiscardAndSwap:
    def test_discard_releases_then_refaults(self, space, phys):
        m = space.mmap(PAGE_SIZE * 4)
        space.touch(m.start, PAGE_SIZE * 4)
        released = space.discard(m.start, PAGE_SIZE * 4)
        assert released == 4
        assert phys.anon_bytes == 0
        counts = space.touch(m.start, PAGE_SIZE)
        assert counts.minor == 1

    def test_discard_partial_range(self, space, phys):
        m = space.mmap(PAGE_SIZE * 4)
        space.touch(m.start, PAGE_SIZE * 4)
        space.discard(m.start + PAGE_SIZE, PAGE_SIZE * 2)
        assert phys.anon_bytes == 2 * PAGE_SIZE

    def test_discard_of_non_resident_is_zero(self, space):
        m = space.mmap(PAGE_SIZE * 4)
        assert space.discard(m.start, PAGE_SIZE * 4) == 0

    def test_swap_out_then_touch_is_major_fault(self, space, phys):
        m = space.mmap(PAGE_SIZE * 2)
        space.touch(m.start, PAGE_SIZE * 2)
        moved = space.swap_out_range(m.start, PAGE_SIZE * 2)
        assert moved.swapped == 2
        assert moved.dropped == 0
        assert moved.total == 2
        assert phys.anon_bytes == 0
        assert phys.swap.pages == 2
        counts = space.touch(m.start, PAGE_SIZE)
        assert counts.major == 1
        assert phys.swap.pages == 1
        assert phys.anon_bytes == PAGE_SIZE

    def test_swap_out_drops_file_clean_pages(self, space, phys):
        lib = MappedFile("/lib/x", PAGE_SIZE)
        m = space.mmap(PAGE_SIZE, prot=Protection.READ, file=lib)
        space.touch(m.start, PAGE_SIZE, write=False)
        moved = space.swap_out_range(m.start, PAGE_SIZE)
        assert moved.swapped == 0
        assert moved.dropped == 1
        assert phys.file_cache_bytes == 0
        assert phys.swap.pages == 0  # clean file pages are dropped, not swapped


class TestClose:
    def test_close_releases_everything(self, space, phys):
        lib = MappedFile("/lib/x", PAGE_SIZE)
        m1 = space.mmap(PAGE_SIZE * 2)
        m2 = space.mmap(PAGE_SIZE, prot=Protection.READ, file=lib)
        space.touch(m1.start, PAGE_SIZE * 2)
        space.touch(m2.start, PAGE_SIZE, write=False)
        space.close()
        assert phys.anon_bytes == 0
        assert phys.file_cache_bytes == 0
        assert space.closed

    def test_operations_after_close_raise(self, space):
        space.close()
        with pytest.raises(MemoryError_):
            space.mmap(PAGE_SIZE)

    def test_double_close_is_noop(self, space):
        space.close()
        space.close()
