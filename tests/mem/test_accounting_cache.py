"""Incremental accounting must match a brute-force page walk.

The VMM maintains per-mapping residency counters and per-mapping
proportional shares incrementally; these properties drive random
cross-process sharing changes and compare :func:`measure` against a
from-first-principles recomputation over the raw page tables.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.mem.accounting import MemoryReport, measure
from repro.mem.layout import PAGE_SIZE, Protection
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import PageState, VirtualAddressSpace

N_PAGES = 12


def uncached_measure(space) -> MemoryReport:
    """Ground truth: walk every page table entry and sharer set."""
    total = MemoryReport()
    for mapping in space.mappings():
        for rel, state in mapping.page_states():
            if state is PageState.ANON_DIRTY:
                total.private_dirty += PAGE_SIZE
                total.pss += PAGE_SIZE
            elif state is PageState.FILE_CLEAN:
                sharers = max(1, mapping.file.sharers(mapping.file_page_of(rel)))
                if sharers == 1:
                    total.private_clean += PAGE_SIZE
                else:
                    total.shared_clean += PAGE_SIZE
                total.pss += PAGE_SIZE / sharers
            elif state is PageState.SWAPPED:
                total.swap += PAGE_SIZE
    return total


def reports_equal(a: MemoryReport, b: MemoryReport) -> bool:
    return (
        a.private_dirty == b.private_dirty
        and a.private_clean == b.private_clean
        and a.shared_clean == b.shared_clean
        and a.shared_dirty == b.shared_dirty
        and abs(a.pss - b.pss) < 1e-6
        and a.swap == b.swap
    )


class CacheCoherence(RuleBasedStateMachine):
    """Three processes share one library; ops change sharing willy-nilly."""

    @initialize()
    def setup(self):
        self.phys = PhysicalMemory()
        self.lib = MappedFile("/lib/x.so", PAGE_SIZE * N_PAGES)
        self.spaces = []
        self.libmaps = []
        self.anons = []
        for name in ("a", "b", "c"):
            space = VirtualAddressSpace(name, self.phys)
            self.spaces.append(space)
            self.libmaps.append(
                space.mmap(PAGE_SIZE * N_PAGES, prot=Protection.READ, file=self.lib)
            )
            self.anons.append(space.mmap(PAGE_SIZE * N_PAGES))

    @rule(who=st.integers(0, 2), page=st.integers(0, N_PAGES - 1))
    def read_lib(self, who, page):
        m = self.libmaps[who]
        self.spaces[who].touch(m.start + page * PAGE_SIZE, PAGE_SIZE, write=False)

    @rule(who=st.integers(0, 2), page=st.integers(0, N_PAGES - 1))
    def drop_lib_page(self, who, page):
        m = self.libmaps[who]
        self.spaces[who].discard(m.start + page * PAGE_SIZE, PAGE_SIZE)

    @rule(who=st.integers(0, 2), page=st.integers(0, N_PAGES - 1))
    def dirty_anon(self, who, page):
        m = self.anons[who]
        self.spaces[who].touch(m.start + page * PAGE_SIZE, PAGE_SIZE)

    @rule(who=st.integers(0, 2), page=st.integers(0, N_PAGES - 1))
    def swap_anon(self, who, page):
        m = self.anons[who]
        self.spaces[who].swap_out_range(m.start + page * PAGE_SIZE, PAGE_SIZE)

    @rule(who=st.integers(0, 2))
    def warm_cache(self, who):
        # Populate the cache so later invariants exercise the cached path.
        measure(self.spaces[who])

    @invariant()
    def cached_equals_uncached(self):
        for space in self.spaces:
            assert reports_equal(measure(space), uncached_measure(space))


TestCacheCoherence = CacheCoherence.TestCase
TestCacheCoherence.settings = settings(max_examples=25, stateful_step_count=25)


@given(readers=st.integers(1, 4), dropper=st.integers(0, 3))
@settings(deadline=None)
def test_sharer_transitions_invalidate_other_spaces(readers, dropper):
    """When process B drops the last co-mapping of a page, process A's
    cached private_clean/shared_clean split must update."""
    phys = PhysicalMemory()
    lib = MappedFile("/lib/x.so", PAGE_SIZE)
    spaces = [VirtualAddressSpace(str(i), phys) for i in range(readers + 1)]
    maps = [
        s.mmap(PAGE_SIZE, prot=Protection.READ, file=lib) for s in spaces
    ]
    for s, m in zip(spaces, maps):
        s.touch(m.start, PAGE_SIZE, write=False)
    first = measure(spaces[0])
    if readers >= 1:
        assert first.shared_clean == PAGE_SIZE
    # Everyone else drops the page.
    for s, m in list(zip(spaces, maps))[1:]:
        s.discard(m.start, PAGE_SIZE)
    after = measure(spaces[0])
    assert after.private_clean == PAGE_SIZE
    assert after.shared_clean == 0
    assert reports_equal(after, uncached_measure(spaces[0]))
