"""Unit tests for page constants and address arithmetic."""

import pytest

from repro.mem.layout import (
    PAGE_SIZE,
    Protection,
    fmt_bytes,
    page_ceil,
    page_floor,
    page_span,
    pages_in,
)


def test_page_floor_aligned_address_unchanged():
    assert page_floor(PAGE_SIZE * 3) == PAGE_SIZE * 3


def test_page_floor_rounds_down():
    assert page_floor(PAGE_SIZE * 3 + 1) == PAGE_SIZE * 3
    assert page_floor(PAGE_SIZE * 4 - 1) == PAGE_SIZE * 3


def test_page_ceil_aligned_address_unchanged():
    assert page_ceil(PAGE_SIZE * 5) == PAGE_SIZE * 5


def test_page_ceil_rounds_up():
    assert page_ceil(1) == PAGE_SIZE
    assert page_ceil(PAGE_SIZE + 1) == PAGE_SIZE * 2


def test_page_span_single_byte():
    span = page_span(PAGE_SIZE * 2, 1)
    assert list(span) == [2]


def test_page_span_straddles_boundary():
    span = page_span(PAGE_SIZE - 1, 2)
    assert list(span) == [0, 1]


def test_page_span_empty_for_zero_length():
    assert list(page_span(0, 0)) == []
    assert list(page_span(123, -5)) == []


def test_pages_in_exact_and_partial():
    assert pages_in(PAGE_SIZE) == 1
    assert pages_in(PAGE_SIZE + 1) == 2
    assert pages_in(1) == 1
    assert pages_in(0) == 0


def test_protection_flags_compose():
    rw = Protection.READ | Protection.WRITE
    assert rw & Protection.READ
    assert rw & Protection.WRITE
    assert not rw & Protection.EXEC
    assert Protection.NONE == 0


@pytest.mark.parametrize(
    "value,expected",
    [
        (512, "512B"),
        (2048, "2.00KiB"),
        (int(7.88 * 1024 * 1024), "7.88MiB"),
        (3 * 1024**3, "3.00GiB"),
    ],
)
def test_fmt_bytes(value, expected):
    assert fmt_bytes(value) == expected
