"""Unit tests for USS/RSS/PSS accounting."""

import pytest

from repro.mem.accounting import measure, measure_many
from repro.mem.layout import PAGE_SIZE, Protection
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.vmm import VirtualAddressSpace


@pytest.fixture
def phys():
    return PhysicalMemory()


def test_empty_space_measures_zero(phys):
    report = measure(VirtualAddressSpace("p", phys))
    assert report.uss == report.rss == report.pss == 0


def test_anonymous_pages_are_private_dirty(phys):
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 3)
    space.touch(m.start, PAGE_SIZE * 2)
    report = measure(space)
    assert report.private_dirty == 2 * PAGE_SIZE
    assert report.uss == report.rss == int(report.pss) == 2 * PAGE_SIZE


def test_solo_file_pages_are_private_clean(phys):
    lib = MappedFile("/lib/x", PAGE_SIZE * 4)
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib)
    space.touch(m.start, PAGE_SIZE * 4, write=False)
    report = measure(space)
    assert report.private_clean == 4 * PAGE_SIZE
    assert report.uss == 4 * PAGE_SIZE  # unshared libraries count in USS


def test_shared_file_pages_leave_uss(phys):
    lib = MappedFile("/lib/x", PAGE_SIZE * 4)
    s1 = VirtualAddressSpace("a", phys)
    s2 = VirtualAddressSpace("b", phys)
    for s in (s1, s2):
        m = s.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib)
        s.touch(m.start, PAGE_SIZE * 4, write=False)
    r1 = measure(s1)
    assert r1.uss == 0
    assert r1.shared_clean == 4 * PAGE_SIZE
    assert r1.rss == 4 * PAGE_SIZE
    assert r1.pss == pytest.approx(2 * PAGE_SIZE)


def test_uss_le_pss_le_rss(phys):
    lib = MappedFile("/lib/x", PAGE_SIZE * 8)
    spaces = []
    for name in ("a", "b", "c"):
        s = VirtualAddressSpace(name, phys)
        lm = s.mmap(PAGE_SIZE * 8, prot=Protection.READ, file=lib)
        s.touch(lm.start, PAGE_SIZE * 8, write=False)
        am = s.mmap(PAGE_SIZE * 4)
        s.touch(am.start, PAGE_SIZE * 4)
        spaces.append(s)
    for s in spaces:
        r = measure(s)
        assert r.uss <= r.pss <= r.rss


def test_summed_pss_equals_physical_usage(phys):
    """PSS is the physically meaningful total across processes."""
    lib = MappedFile("/lib/x", PAGE_SIZE * 4)
    spaces = []
    for name in ("a", "b"):
        s = VirtualAddressSpace(name, phys)
        lm = s.mmap(PAGE_SIZE * 4, prot=Protection.READ, file=lib)
        s.touch(lm.start, PAGE_SIZE * 4, write=False)
        am = s.mmap(PAGE_SIZE * 2)
        s.touch(am.start, PAGE_SIZE * 2)
        spaces.append(s)
    total = measure_many(spaces)
    assert total.pss == pytest.approx(phys.used_bytes)


def test_swapped_pages_counted_in_swap_not_rss(phys):
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 2)
    space.touch(m.start, PAGE_SIZE * 2)
    space.swap_out_range(m.start, PAGE_SIZE * 2)
    report = measure(space)
    assert report.rss == 0
    assert report.swap == 2 * PAGE_SIZE


def test_discard_reduces_uss(phys):
    space = VirtualAddressSpace("p", phys)
    m = space.mmap(PAGE_SIZE * 8)
    space.touch(m.start, PAGE_SIZE * 8)
    before = measure(space).uss
    space.discard(m.start, PAGE_SIZE * 5)
    after = measure(space).uss
    assert before - after == 5 * PAGE_SIZE
